//! `scg-serve` — the routing daemon, runnable from the command line.
//!
//! ```text
//! scg-serve [<socket-path>] [--tcp] [--shards N]
//! ```
//!
//! Listens on a Unix-domain socket (default `/tmp/scg-serve.sock`) and,
//! with `--tcp`, additionally on an ephemeral `127.0.0.1` TCP port. The
//! binary protocol is documented in `supercayley::serve::wire`; pointing
//! `curl` at the listener scrapes `/metrics` via the HTTP fallback.
//! Runs until `SIGINT`/`SIGTERM`, then drains, joins every shard, and
//! unlinks the socket.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use supercayley::serve::{spawn, Config};

/// Set by the signal handler; polled by the main loop.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // ord: SeqCst — a lone flag, contention-free; strongest order costs
    // nothing and reads clearly.
    STOP.store(true, Ordering::SeqCst);
}

// Minimal libc surface for signal installation (the daemon itself is
// socket-only; see `supercayley::serve::epoll` for the event-loop FFI).
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn usage() -> String {
    "usage: scg-serve [<socket-path>] [--tcp] [--shards N]\n  \
     <socket-path>  Unix-domain listener (default /tmp/scg-serve.sock)\n  \
     --tcp          also listen on an ephemeral 127.0.0.1 TCP port\n  \
     --shards N     event-loop threads (default: one per core)"
        .to_string()
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config::new("/tmp/scg-serve.sock");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => config.tcp = true,
            "--shards" => {
                let n = args
                    .next()
                    .ok_or_else(|| format!("--shards needs a count\n{}", usage()))?;
                config.shards = n
                    .parse()
                    .map_err(|_| format!("bad shard count `{n}`\n{}", usage()))?;
            }
            "--help" | "-h" => return Err(usage()),
            path if !path.starts_with('-') => config.uds_path = path.into(),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(config)
}

fn run() -> Result<(), String> {
    let config = parse_args()?;
    let server = spawn(config).map_err(|e| format!("failed to start: {e}"))?;
    println!(
        "scg-serve: {} shard(s), uds {}",
        server.shards(),
        server.uds_path().display()
    );
    if let Some(addr) = server.tcp_addr() {
        println!("scg-serve: tcp {addr}");
    }
    // SAFETY: `on_signal` only touches an atomic, which is
    // async-signal-safe; the handler address stays valid for the
    // process lifetime.
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("scg-serve: shutting down");
    server.shutdown();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
