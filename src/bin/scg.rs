//! `scg` — command-line explorer for super Cayley graph networks.
//!
//! ```text
//! scg classes                               list the ten network classes
//! scg report   <class> <l> <n>              size/degree/diameter/Moore bound
//! scg route    <class> <l> <n> "<from>" "<to>"   emulation route between labels
//! scg solve    <class> <l> <n> "<config>"   solve a ball-arrangement game
//! scg schedule <class> <l> <n>              Figure-1 style all-port schedule
//! scg mnb      <class> <l> <n>              all-port multinode broadcast time
//! scg te       <class> <l> <n>              all-port total exchange time
//! scg apply    <class> <l> <n> "<config>" "<moves>"   replay a move sequence
//! ```
//!
//! `<class>` is one of `ms rs crs mr rr crr is mis ris cris star`. For
//! `is`/`star`, `<l> <n>` still define `k = l·n + 1`. Labels are quoted
//! space-separated symbol sequences such as `"3 1 2 4 5"`.

use std::process::ExitCode;

use supercayley::bag::{BagConfig, BagGame};
use supercayley::comm::{mnb_all_port, te_all_port};
use supercayley::core::{apply_path, scg_route, NetworkReport, ScgClass, SuperCayleyGraph};
use supercayley::emu::AllPortSchedule;
use supercayley::perm::Perm;

const CAP: u64 = 1_000_000;

fn usage() -> String {
    "usage:\n  scg classes\n  scg report   <class> <l> <n>\n  scg route    <class> <l> <n> \"<from>\" \"<to>\"\n  scg solve    <class> <l> <n> \"<config>\"\n  scg schedule <class> <l> <n>\n  scg mnb      <class> <l> <n>\n  scg te       <class> <l> <n>\n  scg apply    <class> <l> <n> \"<config>\" \"<moves>\"\nclasses: ms rs crs mr rr crr is mis ris cris"
        .to_string()
}

fn parse_host(class: &str, l: usize, n: usize) -> Result<SuperCayleyGraph, String> {
    let class = match class {
        "ms" => ScgClass::MacroStar,
        "rs" => ScgClass::RotationStar,
        "crs" => ScgClass::CompleteRotationStar,
        "mr" => ScgClass::MacroRotator,
        "rr" => ScgClass::RotationRotator,
        "crr" => ScgClass::CompleteRotationRotator,
        "is" => return SuperCayleyGraph::insertion_selection(l * n + 1).map_err(|e| e.to_string()),
        "mis" => ScgClass::MacroIs,
        "ris" => ScgClass::RotationIs,
        "cris" => ScgClass::CompleteRotationIs,
        other => return Err(format!("unknown class `{other}`\n{}", usage())),
    };
    SuperCayleyGraph::new(class, l, n).map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "classes" => {
            for c in ScgClass::ALL {
                println!(
                    "{:<14} nucleus {:?}, super {:?}",
                    c.abbrev(),
                    c.nucleus(),
                    c.super_kind()
                );
            }
            Ok(())
        }
        "report" | "route" | "solve" | "schedule" | "mnb" | "te" | "apply" => {
            if args.len() < 4 {
                return Err(usage());
            }
            let l: usize = args[2].parse().map_err(|_| usage())?;
            let n: usize = args[3].parse().map_err(|_| usage())?;
            let host = parse_host(&args[1], l, n)?;
            match cmd {
                "report" => {
                    let r = NetworkReport::measure(&host, CAP).map_err(|e| e.to_string())?;
                    println!("{r}");
                }
                "route" => {
                    if args.len() < 6 {
                        return Err(usage());
                    }
                    let from: Perm = args[4].parse().map_err(|e| format!("bad <from>: {e}"))?;
                    let to: Perm = args[5].parse().map_err(|e| format!("bad <to>: {e}"))?;
                    let path = scg_route(&host, &from, &to).map_err(|e| e.to_string())?;
                    println!("{} hops:", path.len());
                    let mut cur = from;
                    for g in &path {
                        cur = g.apply(&cur).map_err(|e| e.to_string())?;
                        println!("  {g:<4} -> {cur}");
                    }
                    debug_assert_eq!(apply_path(&from, &path).map_err(|e| e.to_string())?, to);
                }
                "solve" => {
                    if args.len() < 5 {
                        return Err(usage());
                    }
                    let config: BagConfig =
                        args[4].parse().map_err(|e| format!("bad <config>: {e}"))?;
                    let game = BagGame::new(host);
                    let bn = game.network().box_size();
                    println!("start : {}", config.render(bn));
                    let moves = game.solve(&config).map_err(|e| e.to_string())?;
                    let mut cur = config;
                    for (i, mv) in moves.iter().enumerate() {
                        cur = game.apply(&cur, *mv).map_err(|e| e.to_string())?;
                        println!("{:>3}. {:<4} {}", i + 1, mv.to_string(), cur.render(bn));
                    }
                    println!("solved in {} moves", moves.len());
                }
                "schedule" => {
                    let s = AllPortSchedule::build(&host).map_err(|e| e.to_string())?;
                    print!("{}", s.render());
                    println!("theorem bound: {:?}", s.theoretical_bound());
                }
                "mnb" => {
                    let r = mnb_all_port(&host, CAP).map_err(|e| e.to_string())?;
                    println!(
                        "{}: MNB in {} steps (lower bound {}, ratio {:.3})",
                        r.network,
                        r.steps,
                        r.lower_bound,
                        r.optimality_ratio()
                    );
                }
                "apply" => {
                    if args.len() < 6 {
                        return Err(usage());
                    }
                    let config: BagConfig =
                        args[4].parse().map_err(|e| format!("bad <config>: {e}"))?;
                    let game = BagGame::new(host);
                    let bn = game.network().box_size();
                    let moves = supercayley::core::Generator::parse_sequence(&args[5], bn)?;
                    let mut cur = config;
                    println!("start : {}", cur.render(bn));
                    for mv in &moves {
                        cur = game.apply(&cur, *mv).map_err(|e| e.to_string())?;
                        println!("{:<4} -> {}", mv.to_string(), cur.render(bn));
                    }
                    println!("solved: {}", cur.is_solved());
                }
                "te" => {
                    let r = te_all_port(&host, 10_000, 100_000_000).map_err(|e| e.to_string())?;
                    println!(
                        "{}: TE in {} steps (volume bound {}, ratio {:.3}); traffic {}",
                        r.network,
                        r.steps,
                        r.lower_bound,
                        r.optimality_ratio(),
                        r.traffic.expect("all-port TE records traffic")
                    );
                }
                _ => unreachable!(),
            }
            Ok(())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
