//! **supercayley** — a reproduction of *Routing and Embeddings in Super
//! Cayley Graphs* (Chi-Hsiang Yeh, Emmanouel A. Varvarigos, Hua Lee;
//! PaCT 1999, LNCS 1662, pp. 151–166) as a Rust library suite.
//!
//! Super Cayley graphs are communication-efficient interconnection networks
//! derived from the *ball-arrangement game*: `l` boxes of `n` balls plus
//! one outside ball, rearranged by *nucleus* moves (the leftmost box + the
//! outside ball) and *super* moves (whole boxes). The game's
//! state-transition graph is a Cayley graph over `S_{nl+1}`, and different
//! move sets yield the ten network classes of the paper: macro-star,
//! rotation-star, complete-rotation-star, macro-rotator, rotation-rotator,
//! complete-rotation-rotator, insertion-selection, macro-IS, rotation-IS
//! and complete-rotation-IS networks.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`perm`] | `scg-perm` | permutations, ranking, enumeration |
//! | [`graph`] | `scg-graph` | CSR graphs, BFS metrics, Moore bounds, subgraph search |
//! | [`bag`] | `scg-bag` | the ball-arrangement game itself |
//! | [`core`] | `scg-core` | generator algebra, the ten classes, routing (Thms 1–3, 6–7 expansions) |
//! | [`embed`] | `scg-embed` | validated embeddings: stars, TNs, trees, hypercubes, meshes (§5) |
//! | [`emu`] | `scg-emu` | SDC/all-port emulation, Figure 1 schedules (Thms 4–5), simulator |
//! | [`comm`] | `scg-comm` | multinode broadcast and total exchange (Corollaries 2–3) |
//! | [`obs`] | `scg-obs` | zero-dependency metrics registry, snapshots, event tracing |
//! | [`serve`] | `scg-serve` | epoll routing daemon: binary wire protocol, sharded caches, SLOs |
//!
//! # Quickstart
//!
//! ```
//! use supercayley::core::{apply_path, scg_route, CayleyNetwork, SuperCayleyGraph};
//! use supercayley::perm::Perm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a macro-star network MS(3,2): 3 boxes of 2 balls, 7! nodes.
//! let ms = SuperCayleyGraph::macro_star(3, 2)?;
//! assert_eq!(ms.num_nodes(), 5040);
//!
//! // Route between two nodes by emulating the optimal star-graph route;
//! // Theorem 1 bounds the cost at 3x the star distance.
//! let from: Perm = "7 6 5 4 3 2 1".parse()?;
//! let to = Perm::identity(7);
//! let path = scg_route(&ms, &from, &to)?;
//! assert_eq!(apply_path(&from, &path)?, to);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

/// Permutation substrate (`scg-perm`).
pub mod perm {
    pub use scg_perm::*;
}

/// Graph substrate (`scg-graph`).
pub mod graph {
    pub use scg_graph::*;
}

/// The ball-arrangement game (`scg-bag`).
pub mod bag {
    pub use scg_bag::*;
}

/// Networks, generators, and routing (`scg-core`).
pub mod core {
    pub use scg_core::*;
}

/// Embeddings (`scg-embed`).
pub mod embed {
    pub use scg_embed::*;
}

/// Emulation and simulation (`scg-emu`).
pub mod emu {
    pub use scg_emu::*;
}

/// Communication tasks (`scg-comm`).
pub mod comm {
    pub use scg_comm::*;
}

/// Metrics and event tracing (`scg-obs`).
///
/// Always available as a library; the workspace's *instrumentation hooks*
/// (cache, routing, simulator, and fault-audit metrics feeding
/// [`obs::Registry::global`]) are additionally compiled in when the
/// `obs` cargo feature is enabled.
pub mod obs {
    pub use scg_obs::*;
}

/// The routing daemon (`scg-serve`): a zero-dependency epoll event loop
/// serving routes over a length-prefixed binary protocol on Unix-domain
/// and TCP sockets, with per-shard topology caches, live fault
/// ingestion, and latency SLOs (the `scg-serve` binary starts one).
pub mod serve {
    pub use scg_serve::*;
}
