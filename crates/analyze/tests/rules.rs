//! Seeded-violation fixtures: one deliberately bad source file that trips
//! every rule, with the exact `file:line:col` spans asserted — if a rule
//! stops firing (or fires somewhere else), this is the test that catches
//! it. The rendered diagnostics are also pinned to a golden file with the
//! same `UPDATE_GOLDEN=1` convention as `tests/observability.rs`.

use scg_analyze::driver::{analyze_source, Analysis, Diagnostic};
use scg_analyze::report::{render_text, validate_report};
use scg_analyze::rules::{FileInfo, RuleId};

/// A fixture that seeds every rule exactly where the line numbers say.
const FIXTURE: &str = r#"//! Fixture.

pub fn one(v: Vec<u32>) -> u32 {
    let first = v.first().unwrap();
    if *first > 9 {
        panic!("nine");
    }
    *first
}

pub fn two(net: &Net) -> Graph {
    net.to_graph()
}

pub fn three(x: usize) -> u8 {
    x as u8
}

pub fn four(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

pub fn five() {
    let _ = std::fs::remove_file("x");
}

pub fn allowed(x: usize) -> u8 {
    x as u8 // scg-allow(SCG003): fixture-checked narrowing
}

pub fn empty_reason(x: usize) -> u8 {
    x as u8 // scg-allow(SCG003):
}

pub fn unused() {
    // scg-allow(SCG001): nothing here panics
    let y = 1 + 1;
    assert_eq!(y, 2);
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_anything_goes() {
        let v: Vec<u32> = vec![1];
        let _ = v.first().unwrap();
        panic!("fine in tests");
    }
}
"#;

fn analyze_fixture() -> Analysis {
    let info = FileInfo {
        rel_path: "crates/perm/src/fixture.rs".to_string(),
        crate_name: "perm".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source(FIXTURE, &info, &mut analysis);
    analysis
}

fn spans_of(analysis: &Analysis, rule: RuleId) -> Vec<(u32, u32, bool)> {
    analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.col, d.suppressed.is_some()))
        .collect()
}

#[test]
fn every_rule_fires_at_the_seeded_span() {
    let analysis = analyze_fixture();
    // SCG001: `unwrap()` on line 4, `panic!` on line 6 — and *not* the
    // unwrap/panic inside `#[cfg(test)] mod tests` (lines 41+).
    assert_eq!(
        spans_of(&analysis, RuleId::Scg001),
        vec![(4, 27, false), (6, 9, false)]
    );
    // SCG002: the `.to_graph()` cache bypass on line 12.
    assert_eq!(spans_of(&analysis, RuleId::Scg002), vec![(12, 9, false)]);
    // SCG003 in a perm-crate path: the bare cast (line 16), the justified
    // suppression (line 28, suppressed), and the empty-reason one (line 32,
    // NOT suppressed — an empty reason does not count).
    assert_eq!(
        spans_of(&analysis, RuleId::Scg003),
        vec![(16, 7, false), (28, 7, true), (32, 7, false)]
    );
    // SCG004: Relaxed load with no `// ord:` justification, line 20.
    assert_eq!(spans_of(&analysis, RuleId::Scg004), vec![(20, 25, false)]);
    // SCG005: the `let _ =` discard on line 24.
    assert_eq!(spans_of(&analysis, RuleId::Scg005), vec![(24, 5, false)]);
    // SCG000 hygiene: the reasonless allow on line 32 and the unused allow
    // on line 36.
    assert_eq!(
        spans_of(&analysis, RuleId::Scg000),
        vec![(32, 13, false), (36, 5, false)]
    );
    // Nothing fires past the `#[cfg(test)]` module boundary.
    assert!(analysis.diagnostics.iter().all(|d| d.line < 40));
}

#[test]
fn active_count_excludes_only_justified_suppressions() {
    let analysis = analyze_fixture();
    let active: Vec<&Diagnostic> = analysis.active().collect();
    // 10 findings total, exactly 1 justified suppression.
    assert_eq!(analysis.diagnostics.len(), 10);
    assert_eq!(active.len(), 9);
    assert!(active.iter().all(|d| d.suppressed.is_none()));
}

#[test]
fn scg003_is_scoped_to_perm_core_graph() {
    // The same cast in a comm-crate path must not trip SCG003.
    let info = FileInfo {
        rel_path: "crates/comm/src/fixture.rs".to_string(),
        crate_name: "comm".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source("pub fn f(x: usize) -> u8 { x as u8 }", &info, &mut analysis);
    assert_eq!(analysis.count(RuleId::Scg003), 0);
}

#[test]
fn scg002_exempts_the_blessed_topology_files() {
    let src = "pub fn f(net: &Net) -> Graph { net.to_graph() }";
    for (path, expected) in [
        ("crates/core/src/topology.rs", 0),
        ("crates/core/src/routing/plan.rs", 0),
        ("crates/comm/src/pairing.rs", 1),
    ] {
        let info = FileInfo {
            rel_path: path.to_string(),
            crate_name: "core".to_string(),
        };
        let mut analysis = Analysis::default();
        analyze_source(src, &info, &mut analysis);
        assert_eq!(analysis.count(RuleId::Scg002), expected, "{path}");
    }
}

#[test]
fn scg004_accepts_an_adjacent_ord_justification() {
    let src = "pub fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed) // ord: Relaxed — snapshot only\n}\n";
    let info = FileInfo {
        rel_path: "crates/obs/src/m.rs".to_string(),
        crate_name: "obs".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source(src, &info, &mut analysis);
    assert_eq!(analysis.count(RuleId::Scg004), 0);
}

/// The rendered diagnostics for both fixtures, byte-for-byte. Any change
/// to rule messages, span formatting, or ordering shows up as a golden
/// diff.
#[test]
fn fixture_diagnostics_match_golden() {
    let actual = format!(
        "{}----\n{}",
        render_text(&analyze_fixture(), true),
        render_text(&analyze_serve_fixture(), true)
    );
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/diagnostics.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &actual).expect("golden path writable");
    }
    let golden = include_str!("golden/diagnostics.txt");
    assert_eq!(
        actual, golden,
        "rerun with UPDATE_GOLDEN=1 if the change is intended"
    );
}

/// The JSON report for the fixture passes the same validator CI runs on
/// the workspace report.
#[test]
fn fixture_json_report_validates() {
    let analysis = analyze_fixture();
    let text = scg_analyze::report::to_json(&analysis).encode();
    validate_report(&text).expect("fixture report validates");
}

/// A serve-crate fixture seeding the flow rules: unsafe blocks without
/// `// SAFETY:` (SCG006), discarded extern results (SCG007), a panic
/// reachable from a wire-decode entry (SCG008), a blocking call under a
/// live lock guard (SCG009), and a never-read `_`-binding (SCG005).
const SERVE_FIXTURE: &str = r#"//! Serve-side fixture.

extern "C" {
    fn ffi_close(fd: i32) -> i32;
}

pub fn decode_request(buf: &[u8]) -> u32 {
    frame_len(buf)
}

fn frame_len(buf: &[u8]) -> u32 {
    assert!(buf.len() >= 4, "short frame");
    u32::from(buf[0])
}

pub fn discards(fd: i32) {
    let _poll_result = unsafe { ffi_close(fd) };
    unsafe { ffi_close(fd) };
}

pub fn checked(fd: i32) -> i32 {
    // SAFETY: fd is owned by the caller.
    let r = unsafe { ffi_close(fd) };
    r
}

pub fn blocking(m: &std::sync::Mutex<u32>, d: std::time::Duration) -> u32 {
    // scg-allow(SCG001): fixture lock can only be poisoned by a test panic
    let guard = m.lock().expect("lock");
    std::thread::sleep(d);
    let v = *guard;
    drop(guard);
    std::thread::sleep(d);
    v
}
"#;

fn analyze_serve_fixture() -> Analysis {
    let info = FileInfo {
        rel_path: "crates/serve/src/wire.rs".to_string(),
        crate_name: "serve".to_string(),
    };
    scg_analyze::driver::analyze_sources(&[(info, SERVE_FIXTURE)])
}

#[test]
fn scg005_flags_never_read_underscore_bindings() {
    let analysis = analyze_serve_fixture();
    // `_poll_result` on line 17 is bound and never read again (the span
    // anchors at the `let`).
    assert_eq!(spans_of(&analysis, RuleId::Scg005), vec![(17, 5, false)]);
}

#[test]
fn scg005_spares_bindings_that_are_read() {
    let src = "pub fn f() -> u32 {\n    let _kept = 1;\n    _kept + 1\n}\n";
    let info = FileInfo {
        rel_path: "crates/perm/src/x.rs".to_string(),
        crate_name: "perm".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source(src, &info, &mut analysis);
    assert_eq!(analysis.count(RuleId::Scg005), 0);
}

#[test]
fn scg006_fires_on_unsafe_without_adjacent_safety_comment() {
    let analysis = analyze_serve_fixture();
    // Line 17 (`let _poll_result = unsafe { .. }`) and line 18 (the
    // statement-position block) both lack a `// SAFETY:`; line 23 has one
    // on the contiguous comment line above and stays clean.
    assert_eq!(
        spans_of(&analysis, RuleId::Scg006),
        vec![(17, 24, false), (18, 5, false)]
    );
}

#[test]
fn scg006_accepts_same_line_safety_comment() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller contract\n}\n";
    let info = FileInfo {
        rel_path: "crates/perm/src/x.rs".to_string(),
        crate_name: "perm".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source(src, &info, &mut analysis);
    assert_eq!(analysis.count(RuleId::Scg006), 0);
}

#[test]
fn scg007_fires_only_on_discarded_extern_results() {
    let analysis = analyze_serve_fixture();
    // Line 18 discards `ffi_close`'s return; lines 17 and 23 bind it.
    assert_eq!(spans_of(&analysis, RuleId::Scg007), vec![(18, 14, false)]);
}

#[test]
fn scg008_reports_the_panic_chain_from_the_entry() {
    let analysis = analyze_serve_fixture();
    // The finding anchors at the entry fn, with the call chain and the
    // panic site spelled out in the message.
    assert_eq!(spans_of(&analysis, RuleId::Scg008), vec![(7, 8, false)]);
    let d = analysis
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::Scg008)
        .expect("SCG008 diagnostic");
    assert_eq!(
        d.message,
        "panic reachable from entry `decode_request`: decode_request → frame_len — \
         assert! at crates/serve/src/wire.rs:12"
    );
}

#[test]
fn scg008_audit_mark_silences_the_chain_and_counts_as_used() {
    let audited = SERVE_FIXTURE.replace(
        "    assert!(buf.len() >= 4, \"short frame\");",
        "    // scg-allow(SCG008): length is pre-checked by peek_frame\n    \
         assert!(buf.len() >= 4, \"short frame\");",
    );
    let info = FileInfo {
        rel_path: "crates/serve/src/wire.rs".to_string(),
        crate_name: "serve".to_string(),
    };
    let analysis = scg_analyze::driver::analyze_sources(&[(info, &audited)]);
    assert_eq!(analysis.count(RuleId::Scg008), 0);
    // The audit mark was consumed by the panic site — no SCG000 hygiene
    // finding for an unused allow.
    assert_eq!(analysis.count(RuleId::Scg000), 0);
}

#[test]
fn scg009_fires_between_guard_acquisition_and_drop() {
    let analysis = analyze_serve_fixture();
    // Line 30 sleeps while `guard` (line 29) is live; line 33, after
    // `drop(guard)`, is clean.
    assert_eq!(spans_of(&analysis, RuleId::Scg009), vec![(30, 18, false)]);
    let d = analysis
        .diagnostics
        .iter()
        .find(|d| d.rule == RuleId::Scg009)
        .expect("SCG009 diagnostic");
    assert!(d
        .message
        .contains("`sleep()` while lock guard `guard` is live"));
}

#[test]
fn scg009_is_scoped_to_the_serve_crate() {
    let src = "pub fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    \
               // scg-allow(SCG001): fixture\n    \
               let g = m.lock().expect(\"l\");\n    \
               std::thread::sleep(std::time::Duration::from_millis(1));\n    *g\n}\n";
    let info = FileInfo {
        rel_path: "crates/graph/src/x.rs".to_string(),
        crate_name: "graph".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source(src, &info, &mut analysis);
    assert_eq!(analysis.count(RuleId::Scg009), 0);
}
