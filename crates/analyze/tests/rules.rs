//! Seeded-violation fixtures: one deliberately bad source file that trips
//! every rule, with the exact `file:line:col` spans asserted — if a rule
//! stops firing (or fires somewhere else), this is the test that catches
//! it. The rendered diagnostics are also pinned to a golden file with the
//! same `UPDATE_GOLDEN=1` convention as `tests/observability.rs`.

use scg_analyze::driver::{analyze_source, Analysis, Diagnostic};
use scg_analyze::report::{render_text, validate_report};
use scg_analyze::rules::{FileInfo, RuleId};

/// A fixture that seeds every rule exactly where the line numbers say.
const FIXTURE: &str = r#"//! Fixture.

pub fn one(v: Vec<u32>) -> u32 {
    let first = v.first().unwrap();
    if *first > 9 {
        panic!("nine");
    }
    *first
}

pub fn two(net: &Net) -> Graph {
    net.to_graph()
}

pub fn three(x: usize) -> u8 {
    x as u8
}

pub fn four(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

pub fn five() {
    let _ = std::fs::remove_file("x");
}

pub fn allowed(x: usize) -> u8 {
    x as u8 // scg-allow(SCG003): fixture-checked narrowing
}

pub fn empty_reason(x: usize) -> u8 {
    x as u8 // scg-allow(SCG003):
}

pub fn unused() {
    // scg-allow(SCG001): nothing here panics
    let y = 1 + 1;
    assert_eq!(y, 2);
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_anything_goes() {
        let v: Vec<u32> = vec![1];
        let _ = v.first().unwrap();
        panic!("fine in tests");
    }
}
"#;

fn analyze_fixture() -> Analysis {
    let info = FileInfo {
        rel_path: "crates/perm/src/fixture.rs".to_string(),
        crate_name: "perm".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source(FIXTURE, &info, &mut analysis);
    analysis
}

fn spans_of(analysis: &Analysis, rule: RuleId) -> Vec<(u32, u32, bool)> {
    analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.col, d.suppressed.is_some()))
        .collect()
}

#[test]
fn every_rule_fires_at_the_seeded_span() {
    let analysis = analyze_fixture();
    // SCG001: `unwrap()` on line 4, `panic!` on line 6 — and *not* the
    // unwrap/panic inside `#[cfg(test)] mod tests` (lines 41+).
    assert_eq!(
        spans_of(&analysis, RuleId::Scg001),
        vec![(4, 27, false), (6, 9, false)]
    );
    // SCG002: the `.to_graph()` cache bypass on line 12.
    assert_eq!(spans_of(&analysis, RuleId::Scg002), vec![(12, 9, false)]);
    // SCG003 in a perm-crate path: the bare cast (line 16), the justified
    // suppression (line 28, suppressed), and the empty-reason one (line 32,
    // NOT suppressed — an empty reason does not count).
    assert_eq!(
        spans_of(&analysis, RuleId::Scg003),
        vec![(16, 7, false), (28, 7, true), (32, 7, false)]
    );
    // SCG004: Relaxed load with no `// ord:` justification, line 20.
    assert_eq!(spans_of(&analysis, RuleId::Scg004), vec![(20, 25, false)]);
    // SCG005: the `let _ =` discard on line 24.
    assert_eq!(spans_of(&analysis, RuleId::Scg005), vec![(24, 5, false)]);
    // SCG000 hygiene: the reasonless allow on line 32 and the unused allow
    // on line 36.
    assert_eq!(
        spans_of(&analysis, RuleId::Scg000),
        vec![(32, 13, false), (36, 5, false)]
    );
    // Nothing fires past the `#[cfg(test)]` module boundary.
    assert!(analysis.diagnostics.iter().all(|d| d.line < 40));
}

#[test]
fn active_count_excludes_only_justified_suppressions() {
    let analysis = analyze_fixture();
    let active: Vec<&Diagnostic> = analysis.active().collect();
    // 10 findings total, exactly 1 justified suppression.
    assert_eq!(analysis.diagnostics.len(), 10);
    assert_eq!(active.len(), 9);
    assert!(active.iter().all(|d| d.suppressed.is_none()));
}

#[test]
fn scg003_is_scoped_to_perm_core_graph() {
    // The same cast in a comm-crate path must not trip SCG003.
    let info = FileInfo {
        rel_path: "crates/comm/src/fixture.rs".to_string(),
        crate_name: "comm".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source("pub fn f(x: usize) -> u8 { x as u8 }", &info, &mut analysis);
    assert_eq!(analysis.count(RuleId::Scg003), 0);
}

#[test]
fn scg002_exempts_the_blessed_topology_files() {
    let src = "pub fn f(net: &Net) -> Graph { net.to_graph() }";
    for (path, expected) in [
        ("crates/core/src/topology.rs", 0),
        ("crates/core/src/routing/plan.rs", 0),
        ("crates/comm/src/pairing.rs", 1),
    ] {
        let info = FileInfo {
            rel_path: path.to_string(),
            crate_name: "core".to_string(),
        };
        let mut analysis = Analysis::default();
        analyze_source(src, &info, &mut analysis);
        assert_eq!(analysis.count(RuleId::Scg002), expected, "{path}");
    }
}

#[test]
fn scg004_accepts_an_adjacent_ord_justification() {
    let src = "pub fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::Relaxed) // ord: Relaxed — snapshot only\n}\n";
    let info = FileInfo {
        rel_path: "crates/obs/src/m.rs".to_string(),
        crate_name: "obs".to_string(),
    };
    let mut analysis = Analysis::default();
    analyze_source(src, &info, &mut analysis);
    assert_eq!(analysis.count(RuleId::Scg004), 0);
}

/// The rendered diagnostics for the fixture, byte-for-byte. Any change to
/// rule messages, span formatting, or ordering shows up as a golden diff.
#[test]
fn fixture_diagnostics_match_golden() {
    let analysis = analyze_fixture();
    let actual = render_text(&analysis, true);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/diagnostics.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &actual).expect("golden path writable");
    }
    let golden = include_str!("golden/diagnostics.txt");
    assert_eq!(
        actual, golden,
        "rerun with UPDATE_GOLDEN=1 if the change is intended"
    );
}

/// The JSON report for the fixture passes the same validator CI runs on
/// the workspace report.
#[test]
fn fixture_json_report_validates() {
    let analysis = analyze_fixture();
    let text = scg_analyze::report::to_json(&analysis).encode();
    validate_report(&text).expect("fixture report validates");
}
