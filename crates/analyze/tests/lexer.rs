//! Corpus tests for the hand-rolled lexer: the tricky corners of Rust's
//! surface syntax that a naive scanner gets wrong — raw strings, nested
//! block comments, and char literals whose *contents* look like other
//! tokens (`'"'`, `'/'`).

use scg_analyze::lexer::{lex, Token, TokenKind};

/// Kinds-and-texts view of a lex, ignoring nothing — comments included.
fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
    lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
}

fn find(src: &str, kind: TokenKind) -> Vec<&str> {
    lex(src)
        .iter()
        .filter(|t| t.kind == kind)
        .map(|t| t.text(src))
        .collect()
}

#[test]
fn raw_strings_swallow_quotes_and_comment_markers() {
    // A `"` inside r#"..."# must not terminate the literal, and `//` inside
    // must not open a comment.
    let src = r####"let s = r#"quote " and // not a comment"#; let t = 1;"####;
    assert_eq!(
        find(src, TokenKind::RawStr),
        vec![r####"r#"quote " and // not a comment"#"####]
    );
    assert!(!lex(src).iter().any(|t| t.kind == TokenKind::LineComment));
    // The `let t = 1` after the literal still lexes.
    assert!(find(src, TokenKind::Ident).contains(&"t"));
}

#[test]
fn raw_string_hash_counts_must_match() {
    // r##"..."# does not close with a single hash; only "## ends it.
    let src = r#####"r##"inner "# still inside"## after"#####;
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::RawStr);
    assert_eq!(toks[0].text(src), r#####"r##"inner "# still inside"##"#####);
    assert_eq!(toks[1].text(src), "after");
}

#[test]
fn raw_identifiers_are_idents_not_raw_strings() {
    // `r#match` shares the `r#` prefix with raw strings but is an ident.
    let src = "let r#match = r#type;";
    assert_eq!(
        kinds(src),
        vec![
            (TokenKind::Ident, "let"),
            (TokenKind::Ident, "r#match"),
            (TokenKind::Punct, "="),
            (TokenKind::Ident, "r#type"),
            (TokenKind::Punct, ";"),
        ]
    );
}

#[test]
fn block_comments_nest() {
    let src = "a /* outer /* inner */ still outer */ b";
    assert_eq!(
        kinds(src),
        vec![
            (TokenKind::Ident, "a"),
            (
                TokenKind::BlockComment,
                "/* outer /* inner */ still outer */"
            ),
            (TokenKind::Ident, "b"),
        ]
    );
}

#[test]
fn block_comment_hides_string_and_panic_tokens() {
    // Nothing inside a comment may surface as a code token — this is what
    // keeps doc examples out of the lint rules.
    let src = "/* \"unterminated? no: comment\" .unwrap() panic! */ ok";
    let toks = lex(src);
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert_eq!((toks[1].kind, toks[1].text(src)), (TokenKind::Ident, "ok"));
}

#[test]
fn char_literal_containing_a_quote_does_not_open_a_string() {
    // '"' then a "real" string: a scanner that treats the first `"` as a
    // string opener would glue everything together.
    let src = r#"let q = '"'; let s = "x";"#;
    assert_eq!(find(src, TokenKind::Char), vec![r#"'"'"#]);
    assert_eq!(find(src, TokenKind::Str), vec![r#""x""#]);
}

#[test]
fn char_literal_containing_slash_does_not_open_a_comment() {
    // '/' followed by '/' as two char literals — naive scanners see `//`.
    let src = "let a = '/'; let b = '/'; let c = 1;";
    assert_eq!(find(src, TokenKind::Char), vec!["'/'", "'/'"]);
    assert!(!lex(src).iter().any(|t| t.kind == TokenKind::LineComment));
    assert!(find(src, TokenKind::Ident).contains(&"c"));
}

#[test]
fn escaped_quote_chars_and_byte_literals() {
    let src = r"let a = '\''; let b = '\\'; let c = b'x';";
    assert_eq!(find(src, TokenKind::Char), vec![r"'\''", r"'\\'", "b'x'"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
    assert_eq!(find(src, TokenKind::Lifetime), vec!["'a", "'a", "'a"]);
    assert!(find(src, TokenKind::Char).is_empty());
}

#[test]
fn string_escapes_do_not_terminate_early() {
    let src = r#"let s = "a \" b \\"; let t = 2;"#;
    assert_eq!(find(src, TokenKind::Str), vec![r#""a \" b \\""#]);
    assert!(find(src, TokenKind::Ident).contains(&"t"));
}

#[test]
fn spans_are_line_and_column_accurate() {
    let src = "let a = 1;\n  /* c */ let bb = 2;\nlet ccc = r\"raw\";\n";
    let toks = lex(src);
    let at = |text: &str| -> &Token {
        toks.iter()
            .find(|t| t.text(src) == text)
            .unwrap_or_else(|| panic!("token {text:?} not found"))
    };
    // Lines and columns are 1-based; the comment does not disturb them.
    assert_eq!((at("a").line, at("a").col), (1, 5));
    assert_eq!((at("/* c */").line, at("/* c */").col), (2, 3));
    assert_eq!((at("bb").line, at("bb").col), (2, 15));
    assert_eq!((at("r\"raw\"").line, at("r\"raw\"").col), (3, 11));
    // Byte offsets round-trip through `text`.
    for t in &toks {
        assert_eq!(&src[t.start..t.end], t.text(src));
    }
}

#[test]
fn multiline_tokens_advance_the_line_counter() {
    let src = "let s = \"line\nbreak\";\nlet r = r#\"a\nb\"#;\nlet done = 1;";
    let toks = lex(src);
    let done = toks
        .iter()
        .find(|t| t.text(src) == "done")
        .expect("token after multiline literals");
    assert_eq!(done.line, 5);
}

#[test]
fn unterminated_literals_do_not_panic() {
    // The lexer is tolerant: broken input (mid-edit files) must not crash
    // the analyzer, only end the token at EOF.
    for src in ["\"never closed", "r#\"never closed\"", "'x", "/* open"] {
        let toks = lex(src);
        assert!(!toks.is_empty(), "{src:?} lexed to nothing");
        assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
    }
}

#[test]
fn byte_strings_are_strings_not_idents() {
    // `b"..."` shares its first char with an identifier; a naive scanner
    // lexes `b` alone and then opens a plain string.
    let src = r#"let a = b"bytes \" esc"; let b = 1;"#;
    assert_eq!(find(src, TokenKind::Str), vec![r#"b"bytes \" esc""#]);
    assert!(find(src, TokenKind::Ident).contains(&"b"));
}

#[test]
fn raw_byte_strings_swallow_quotes_like_raw_strings() {
    let src = r####"let a = br#"quote " and \ backslash"#; let ok = 1;"####;
    assert_eq!(
        find(src, TokenKind::RawStr),
        vec![r####"br#"quote " and \ backslash"#"####]
    );
    assert!(find(src, TokenKind::Ident).contains(&"ok"));
}

#[test]
fn raw_byte_string_without_hashes() {
    let src = r#"let a = br"no hash"; let tail = 2;"#;
    assert_eq!(find(src, TokenKind::RawStr), vec![r#"br"no hash""#]);
    assert!(find(src, TokenKind::Ident).contains(&"tail"));
}

#[test]
fn shebang_line_lexes_as_a_comment() {
    // A `#!/usr/bin/env` line is not Rust punctuation — it must not leak
    // `#` / `!` / `/` tokens into the rule engine.
    let src = "#!/usr/bin/env run-cargo-script\nfn main() {}\n";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::LineComment);
    assert_eq!(toks[0].text(src), "#!/usr/bin/env run-cargo-script");
    assert_eq!(toks[1].text(src), "fn");
    assert_eq!(toks[1].line, 2);
}

#[test]
fn inner_attribute_is_not_a_shebang() {
    // `#![warn(missing_docs)]` starts with `#!` but is an attribute; the
    // shebang special case applies only when the third byte is not `[`.
    let src = "#![warn(missing_docs)]\nfn f() {}\n";
    let toks = lex(src);
    assert_eq!((toks[0].kind, toks[0].text(src)), (TokenKind::Punct, "#"));
    assert_eq!(toks[1].text(src), "!");
    assert!(!toks.iter().any(|t| t.kind == TokenKind::LineComment));
}

#[test]
fn hash_bang_mid_file_is_not_a_shebang() {
    // Only byte 0 can host a shebang; `#!` later is ordinary punctuation
    // (e.g. a module-level inner attribute after a comment).
    let src = "// header\n#![allow(dead_code)]\n";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokenKind::LineComment);
    assert_eq!(toks[0].text(src), "// header");
    assert_eq!((toks[1].kind, toks[1].text(src)), (TokenKind::Punct, "#"));
}

#[test]
fn doc_comment_edge_cases() {
    // `///`, `//!`, `////`, and a bare `//` at EOF are all line comments;
    // `/** .. */` and `/*! .. */` are block comments.
    let src = "/// outer doc\n//! inner doc\n//// rule\n/** block doc */ /*! inner block */ x\n//";
    let line: Vec<&str> = find(src, TokenKind::LineComment);
    assert_eq!(
        line,
        vec!["/// outer doc", "//! inner doc", "//// rule", "//"]
    );
    let block: Vec<&str> = find(src, TokenKind::BlockComment);
    assert_eq!(block, vec!["/** block doc */", "/*! inner block */"]);
    assert!(find(src, TokenKind::Ident).contains(&"x"));
}

#[test]
fn empty_block_comment_is_not_swallowed() {
    // `/**/` closes immediately; `/***/` is a doc block with one star.
    let src = "/**/ a /***/ b";
    assert_eq!(find(src, TokenKind::BlockComment), vec!["/**/", "/***/"]);
    assert_eq!(find(src, TokenKind::Ident), vec!["a", "b"]);
}
