//! The incremental analysis cache: per-file results keyed by content hash.
//!
//! The CI deny gate runs on every push; almost every push touches a
//! handful of files. The cache stores, per workspace-relative path, the
//! FNV-1a hash of the file's bytes plus everything the per-file pass
//! produced — resolved diagnostics and call-graph function summaries — so
//! an unchanged file costs one hash instead of a lex + tree + rules +
//! summary pass. The workspace-level SCG008 reachability is recomputed on
//! every run from the (cached or fresh) summaries: it is cross-file by
//! nature and cheap next to lexing.
//!
//! Serialization rides the shared [`scg_obs::json`] model — the same
//! hand-rolled parser the report and the bench artifacts use. A cache
//! whose schema tag does not match, or that fails to parse or decode in
//! any way, is silently discarded: a stale or corrupt cache must never be
//! able to change analyzer output, only its speed.

use std::collections::BTreeMap;
use std::path::Path;

use scg_obs::json::{parse, Json};

use crate::callgraph::{CallSite, Callee, FnSummary, PanicSite};
use crate::driver::Diagnostic;
use crate::rules::RuleId;

/// Schema tag; bump on any layout change so stale caches self-discard.
pub const CACHE_SCHEMA: &str = "scg-analyze-cache/v1";

/// Everything the per-file pass produced for one file.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// FNV-1a hash of the file's bytes.
    pub hash: u64,
    /// Resolved per-file diagnostics (suppression state included;
    /// SCG008 entries are workspace-level and never cached).
    pub diagnostics: Vec<Diagnostic>,
    /// Call-graph summaries of the file's functions.
    pub summaries: Vec<FnSummary>,
}

/// The cache: workspace-relative path → per-file entry.
#[derive(Debug, Default)]
pub struct Cache {
    /// See [`FileEntry`].
    pub entries: BTreeMap<String, FileEntry>,
}

/// 64-bit FNV-1a over the file's bytes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loads a cache file; any parse/schema/decoding problem yields `None`
/// (the analyzer then recomputes everything — correctness never depends
/// on the cache).
#[must_use]
pub fn load(path: &Path) -> Option<Cache> {
    let text = std::fs::read_to_string(path).ok()?;
    let top = parse(&text).ok()?;
    let obj = top.as_object(0).ok()?;
    if obj.get("schema")?.as_string(0).ok()? != CACHE_SCHEMA {
        return None;
    }
    let mut entries = BTreeMap::new();
    for (file, entry) in obj.get("files")?.as_object(0).ok()? {
        entries.insert(file.clone(), decode_entry(entry)?);
    }
    Some(Cache { entries })
}

/// Saves the cache.
///
/// # Errors
///
/// Returns a message when the file cannot be written.
pub fn save(path: &Path, cache: &Cache) -> Result<(), String> {
    let files: BTreeMap<String, Json> = cache
        .entries
        .iter()
        .map(|(file, e)| (file.clone(), encode_entry(e)))
        .collect();
    let top = Json::Object(BTreeMap::from([
        ("schema".to_string(), Json::String(CACHE_SCHEMA.to_string())),
        ("files".to_string(), Json::Object(files)),
    ]));
    std::fs::write(path, top.encode()).map_err(|e| format!("{}: {e}", path.display()))
}

fn s(v: &str) -> Json {
    Json::String(v.to_string())
}

fn n(v: u32) -> Json {
    Json::Int(i128::from(v))
}

fn encode_entry(e: &FileEntry) -> Json {
    Json::Object(BTreeMap::from([
        ("hash".to_string(), Json::Int(i128::from(e.hash))),
        (
            "diagnostics".to_string(),
            Json::Array(e.diagnostics.iter().map(encode_diag).collect()),
        ),
        (
            "summaries".to_string(),
            Json::Array(e.summaries.iter().map(encode_summary).collect()),
        ),
    ]))
}

fn decode_entry(v: &Json) -> Option<FileEntry> {
    let obj = v.as_object(0).ok()?;
    let hash = u64::try_from(match obj.get("hash")? {
        Json::Int(i) => *i,
        _ => return None,
    })
    .ok()?;
    let mut diagnostics = Vec::new();
    for d in obj.get("diagnostics")?.as_array(0).ok()? {
        diagnostics.push(decode_diag(d)?);
    }
    let mut summaries = Vec::new();
    for sm in obj.get("summaries")?.as_array(0).ok()? {
        summaries.push(decode_summary(sm)?);
    }
    Some(FileEntry {
        hash,
        diagnostics,
        summaries,
    })
}

fn encode_diag(d: &Diagnostic) -> Json {
    let mut obj = BTreeMap::from([
        ("rule".to_string(), s(d.rule.code())),
        ("file".to_string(), s(&d.file)),
        ("line".to_string(), n(d.line)),
        ("col".to_string(), n(d.col)),
        ("message".to_string(), s(&d.message)),
    ]);
    if let Some(reason) = &d.suppressed {
        obj.insert("suppressed".to_string(), s(reason));
    }
    Json::Object(obj)
}

fn decode_diag(v: &Json) -> Option<Diagnostic> {
    let obj = v.as_object(0).ok()?;
    Some(Diagnostic {
        rule: RuleId::from_code(obj.get("rule")?.as_string(0).ok()?)?,
        file: obj.get("file")?.as_string(0).ok()?.to_string(),
        line: u32::try_from(obj.get("line")?.as_u64(0).ok()?).ok()?,
        col: u32::try_from(obj.get("col")?.as_u64(0).ok()?).ok()?,
        message: obj.get("message")?.as_string(0).ok()?.to_string(),
        suppressed: match obj.get("suppressed") {
            Some(r) => Some(r.as_string(0).ok()?.to_string()),
            None => None,
        },
    })
}

fn encode_summary(f: &FnSummary) -> Json {
    let mut obj = BTreeMap::from([
        ("crate".to_string(), s(&f.krate)),
        ("file".to_string(), s(&f.file)),
        ("name".to_string(), s(&f.name)),
        ("line".to_string(), n(f.line)),
        ("col".to_string(), n(f.col)),
        (
            "panics".to_string(),
            Json::Array(f.panics.iter().map(encode_panic).collect()),
        ),
        (
            "calls".to_string(),
            Json::Array(f.calls.iter().map(encode_call).collect()),
        ),
    ]);
    if let Some(t) = &f.impl_type {
        obj.insert("impl".to_string(), s(t));
    }
    Json::Object(obj)
}

fn decode_summary(v: &Json) -> Option<FnSummary> {
    let obj = v.as_object(0).ok()?;
    let mut panics = Vec::new();
    for p in obj.get("panics")?.as_array(0).ok()? {
        panics.push(decode_panic(p)?);
    }
    let mut calls = Vec::new();
    for c in obj.get("calls")?.as_array(0).ok()? {
        calls.push(decode_call(c)?);
    }
    Some(FnSummary {
        krate: obj.get("crate")?.as_string(0).ok()?.to_string(),
        file: obj.get("file")?.as_string(0).ok()?.to_string(),
        name: obj.get("name")?.as_string(0).ok()?.to_string(),
        impl_type: match obj.get("impl") {
            Some(t) => Some(t.as_string(0).ok()?.to_string()),
            None => None,
        },
        line: u32::try_from(obj.get("line")?.as_u64(0).ok()?).ok()?,
        col: u32::try_from(obj.get("col")?.as_u64(0).ok()?).ok()?,
        panics,
        calls,
    })
}

fn encode_panic(p: &PanicSite) -> Json {
    Json::Object(BTreeMap::from([
        ("line".to_string(), n(p.line)),
        ("col".to_string(), n(p.col)),
        ("what".to_string(), s(&p.what)),
        (
            "audited".to_string(),
            Json::Int(i128::from(u8::from(p.audited))),
        ),
    ]))
}

fn decode_panic(v: &Json) -> Option<PanicSite> {
    let obj = v.as_object(0).ok()?;
    Some(PanicSite {
        line: u32::try_from(obj.get("line")?.as_u64(0).ok()?).ok()?,
        col: u32::try_from(obj.get("col")?.as_u64(0).ok()?).ok()?,
        what: obj.get("what")?.as_string(0).ok()?.to_string(),
        audited: obj.get("audited")?.as_u64(0).ok()? != 0,
    })
}

fn encode_call(c: &CallSite) -> Json {
    let mut obj = BTreeMap::new();
    match &c.callee {
        Callee::Bare(name) => {
            obj.insert("kind".to_string(), s("bare"));
            obj.insert("name".to_string(), s(name));
        }
        Callee::Typed(ty, name) => {
            obj.insert("kind".to_string(), s("typed"));
            obj.insert("type".to_string(), s(ty));
            obj.insert("name".to_string(), s(name));
        }
        Callee::Cratewide(k, ty, name) => {
            obj.insert("kind".to_string(), s("crate"));
            obj.insert("crate".to_string(), s(k));
            if let Some(t) = ty {
                obj.insert("type".to_string(), s(t));
            }
            obj.insert("name".to_string(), s(name));
        }
        Callee::Method(name) => {
            obj.insert("kind".to_string(), s("method"));
            obj.insert("name".to_string(), s(name));
        }
    }
    Json::Object(obj)
}

fn decode_call(v: &Json) -> Option<CallSite> {
    let obj = v.as_object(0).ok()?;
    let name = obj.get("name")?.as_string(0).ok()?.to_string();
    let ty = || -> Option<String> {
        obj.get("type")
            .and_then(|t| t.as_string(0).ok())
            .map(str::to_string)
    };
    let callee = match obj.get("kind")?.as_string(0).ok()? {
        "bare" => Callee::Bare(name),
        "typed" => Callee::Typed(ty()?, name),
        "crate" => Callee::Cratewide(obj.get("crate")?.as_string(0).ok()?.to_string(), ty(), name),
        "method" => Callee::Method(name),
        _ => return None,
    };
    Some(CallSite { callee })
}
