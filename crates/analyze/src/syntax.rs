//! The brace-matched item tree: a syntactic layer between the lexer and
//! the flow rules.
//!
//! The original driver located test code with line heuristics (attribute
//! scan + a one-shot brace match). The flow rules of the v2 analyzer need
//! real structure — which `fn` a token sits in, which `impl` a `fn` sits
//! in, where an `unsafe { .. }` block opens and closes, which foreign
//! functions an `extern "C"` block declares — so this module runs one
//! linear pass over the significant tokens with an explicit scope stack
//! and produces a [`SyntaxTree`]: every function item with its resolved
//! body span, every unsafe block, every extern declaration, and the exact
//! set of test-gated lines (`#[test]` / `#[cfg(test)]`, with
//! `not(test)` *keeping* an item in the lint set).
//!
//! It is still not a parser: expression grammar is opaque to it, struct
//! literals simply open anonymous scopes, and the only headers it
//! understands are the item kinds the rules consume. That is exactly as
//! much Rust as the invariants need, in the same spirit as the lexer.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};

/// A function item (including bodiless trait/extern signatures).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name, `r#` prefix stripped.
    pub name: String,
    /// The enclosing `impl` type, if any (`impl Foo` and
    /// `impl Trait for Foo` both yield `Foo`).
    pub impl_type: Option<String>,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Significant-token index range of the body, inclusive of both
    /// braces; `None` for signatures without a body.
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside test-gated code.
    pub is_test: bool,
}

/// An `unsafe { .. }` block expression (not an `unsafe fn` header).
#[derive(Debug, Clone)]
pub struct UnsafeBlock {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// 1-based column of the `unsafe` keyword.
    pub col: u32,
    /// Significant-token indices of the `{` and matching `}`.
    pub open: usize,
    /// See [`UnsafeBlock::open`].
    pub close: usize,
    /// Whether the block sits inside test-gated code.
    pub is_test: bool,
}

/// One foreign function declared inside an `extern "abi" { .. }` block.
#[derive(Debug, Clone)]
pub struct ExternDecl {
    /// The declared name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
}

/// The item tree of one file.
#[derive(Debug, Default)]
pub struct SyntaxTree {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `unsafe { .. }` block, in source order.
    pub unsafe_blocks: Vec<UnsafeBlock>,
    /// Every foreign function declared in this file.
    pub extern_decls: Vec<ExternDecl>,
    /// Indices (into the token slice) of non-comment tokens.
    pub sig: Vec<usize>,
    test_lines: BTreeSet<u32>,
}

impl SyntaxTree {
    /// Whether a 1-based line sits inside test-gated code.
    #[must_use]
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// The innermost function whose body covers significant index `i`.
    #[must_use]
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| o < i && i < c))
            .max_by_key(|f| f.body.map(|(o, _)| o))
    }
}

/// What one entry of the scope stack is.
enum ScopeKind {
    /// An anonymous `{ .. }`: block expression, struct literal, struct
    /// body, match body — anything the walker has no header for.
    Block,
    /// A `fn` body; the payload indexes [`SyntaxTree::fns`].
    Fn(usize),
    /// An `impl` body with the resolved type name.
    Impl(String),
    /// An `unsafe { .. }` block; the payload indexes
    /// [`SyntaxTree::unsafe_blocks`].
    Unsafe(usize),
    /// An `extern "abi" { .. }` foreign block.
    Extern,
}

struct Scope {
    kind: ScopeKind,
    start_line: u32,
    test: bool,
}

/// Builds the item tree for one lexed file.
#[must_use]
pub fn build(src: &str, tokens: &[Token]) -> SyntaxTree {
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut tree = SyntaxTree {
        sig,
        ..SyntaxTree::default()
    };
    Walker {
        src,
        tokens,
        tree: &mut tree,
        scopes: Vec::new(),
        pending_test: false,
        pending_start: None,
    }
    .walk();
    tree
}

struct Walker<'a> {
    src: &'a str,
    tokens: &'a [Token],
    tree: &'a mut SyntaxTree,
    scopes: Vec<Scope>,
    pending_test: bool,
    pending_start: Option<u32>,
}

impl Walker<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tree.sig.get(i).map(|&ix| &self.tokens[ix])
    }

    fn txt(&self, i: usize) -> &str {
        self.tok(i).map_or("", |t| t.text(self.src))
    }

    fn line(&self, i: usize) -> u32 {
        self.tok(i).map_or(0, |t| t.line)
    }

    fn in_test(&self) -> bool {
        self.scopes.last().is_some_and(|s| s.test)
    }

    /// Consumes the pending attribute state for an item opening at `line`.
    fn take_pending(&mut self, line: u32) -> (bool, u32) {
        let test = self.pending_test || self.in_test();
        let start = self.pending_start.unwrap_or(line);
        self.pending_test = false;
        self.pending_start = None;
        (test, start)
    }

    fn mark(&mut self, from: u32, to: u32) {
        for l in from..=to {
            self.tree.test_lines.insert(l);
        }
    }

    fn walk(&mut self) {
        let n = self.tree.sig.len();
        let mut i = 0usize;
        while i < n {
            match self.txt(i) {
                "#" if self.txt(i + 1) == "[" => {
                    let (is_test, after) = scan_attr(self.src, self.tokens, &self.tree.sig, i);
                    self.pending_start = Some(self.pending_start.unwrap_or(self.line(i)));
                    self.pending_test |= is_test;
                    i = after;
                }
                "#" if self.txt(i + 1) == "!" && self.txt(i + 2) == "[" => {
                    // Inner attribute `#![..]`: file-level, never a region.
                    let (_, after) = scan_attr(self.src, self.tokens, &self.tree.sig, i + 1);
                    i = after;
                }
                // The Ident guard keeps fn-pointer types (`fn(u8) -> u8`
                // in type position) from registering as items.
                "fn" if self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) => {
                    i = self.item_fn(i);
                }
                "impl" => i = self.item_impl(i),
                "unsafe" if self.txt(i + 1) == "{" => {
                    let (test, start) = {
                        let t = self.in_test();
                        (t, self.line(i))
                    };
                    let tok = self.tok(i).copied();
                    let ix = self.tree.unsafe_blocks.len();
                    self.tree.unsafe_blocks.push(UnsafeBlock {
                        line: tok.map_or(0, |t| t.line),
                        col: tok.map_or(0, |t| t.col),
                        open: i + 1,
                        close: i + 1,
                        is_test: test || self.pending_test,
                    });
                    self.scopes.push(Scope {
                        kind: ScopeKind::Unsafe(ix),
                        start_line: start,
                        test,
                    });
                    i += 2;
                }
                "extern" => i = self.item_extern(i),
                "{" => {
                    let line = self.line(i);
                    let (test, start) = self.take_pending(line);
                    self.scopes.push(Scope {
                        kind: ScopeKind::Block,
                        start_line: start,
                        test,
                    });
                    i += 1;
                }
                "}" => {
                    let line = self.line(i);
                    if let Some(scope) = self.scopes.pop() {
                        match scope.kind {
                            ScopeKind::Fn(ix) => {
                                if let Some((open, _)) = self.tree.fns[ix].body {
                                    self.tree.fns[ix].body = Some((open, i));
                                }
                            }
                            ScopeKind::Unsafe(ix) => self.tree.unsafe_blocks[ix].close = i,
                            _ => {}
                        }
                        if scope.test {
                            self.mark(scope.start_line, line);
                        }
                    }
                    i += 1;
                }
                ";" if self.pending_test => {
                    // An attributed item without a body (`#[cfg(test)]
                    // use ..;`, tuple struct, const): the region is the
                    // attribute through this terminator.
                    let line = self.line(i);
                    let (test, start) = self.take_pending(line);
                    if test {
                        self.mark(start, line);
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Handles `fn name .. ( { body } | ; )`; returns the resume index.
    fn item_fn(&mut self, i: usize) -> usize {
        let Some(name_tok) = self.tok(i + 1).copied() else {
            return i + 1;
        };
        let name = name_tok.text(self.src).trim_start_matches("r#").to_string();
        let (test, start) = self.take_pending(name_tok.line);
        let impl_type = self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(name) => Some(name.clone()),
            _ => None,
        });
        let in_extern = self
            .scopes
            .last()
            .is_some_and(|s| matches!(s.kind, ScopeKind::Extern));
        if in_extern {
            self.tree.extern_decls.push(ExternDecl {
                name: name.clone(),
                line: name_tok.line,
            });
        }
        // Scan the signature for the body `{` or the terminating `;`.
        // Neither appears inside parameter or return types in this
        // workspace (no const-generic brace expressions).
        let mut j = i + 2;
        loop {
            match self.txt(j) {
                "{" => break,
                ";" | "" => {
                    self.tree.fns.push(FnItem {
                        name,
                        impl_type,
                        line: name_tok.line,
                        col: name_tok.col,
                        body: None,
                        is_test: test,
                    });
                    if test {
                        self.mark(start, self.line(j.min(self.tree.sig.len() - 1)));
                    }
                    return j + 1;
                }
                _ => j += 1,
            }
        }
        let ix = self.tree.fns.len();
        self.tree.fns.push(FnItem {
            name,
            impl_type,
            line: name_tok.line,
            col: name_tok.col,
            body: Some((j, j)),
            is_test: test,
        });
        self.scopes.push(Scope {
            kind: ScopeKind::Fn(ix),
            start_line: start,
            test,
        });
        j + 1
    }

    /// Handles `impl<..> [Trait for] Type {`; returns the resume index
    /// (just past the body `{`).
    fn item_impl(&mut self, i: usize) -> usize {
        let (test, start) = self.take_pending(self.line(i));
        let mut j = i + 1;
        let mut name = String::new();
        let mut angle = 0usize;
        loop {
            let t = self.txt(j);
            match t {
                "" => return j,
                "{" if angle == 0 => break,
                "<" => angle += 1,
                // `->` inside `Fn()` bounds is an arrow, not a close.
                ">" if angle > 0 && self.txt(j - 1) != "-" => angle -= 1,
                "for" if angle == 0 => name.clear(),
                "where" if angle == 0 => {
                    // The type is fully named before the clause.
                    while !matches!(self.txt(j), "{" | "") {
                        j += 1;
                    }
                    break;
                }
                _ => {
                    if angle == 0 && self.tok(j).is_some_and(|t| t.kind == TokenKind::Ident) {
                        name = t.trim_start_matches("r#").to_string();
                    }
                }
            }
            j += 1;
        }
        self.scopes.push(Scope {
            kind: ScopeKind::Impl(name),
            start_line: start,
            test,
        });
        j + 1
    }

    /// Handles the three `extern` forms; returns the resume index.
    fn item_extern(&mut self, i: usize) -> usize {
        let abi = self.tok(i + 1).copied();
        match abi.map(|t| t.kind) {
            // `extern "C" { .. }` — a foreign block.
            Some(TokenKind::Str) if self.txt(i + 2) == "{" => {
                let (test, start) = self.take_pending(self.line(i));
                self.scopes.push(Scope {
                    kind: ScopeKind::Extern,
                    start_line: start,
                    test,
                });
                i + 3
            }
            // `extern "C" fn` — a qualifier; let `fn` handle the rest.
            Some(TokenKind::Str) => i + 2,
            // `extern crate ..;` or a bare `extern` qualifier.
            _ => i + 1,
        }
    }
}

/// Scans the attribute starting at significant index `i` (`#` `[` ..).
/// Returns whether it test-gates its item, and the index just past `]`.
pub(crate) fn scan_attr(src: &str, tokens: &[Token], sig: &[usize], i: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut j = i + 1; // at `[`
    let mut is_test = false;
    while j < sig.len() {
        let t = tokens[sig[j]].text(src);
        match t {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    return (is_test, j + 1);
                }
            }
            "test" => {
                // `not(test)` keeps the item in the lint set.
                let negated = j >= 2
                    && tokens[sig[j - 1]].text(src) == "("
                    && tokens[sig[j - 2]].text(src) == "not";
                if !negated {
                    is_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    (is_test, j)
}
