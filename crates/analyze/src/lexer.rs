//! A hand-rolled, span-accurate Rust lexer.
//!
//! The workspace builds offline, so the analyzer cannot lean on `syn` or
//! `proc-macro2` — in the same spirit as the vendored
//! [`XorShift64`](https://docs.rs/scg-perm) PRNG and the hand-rolled
//! [`scg_obs::json`] parser, this module lexes just enough Rust to make the
//! lint rules sound: it never mistakes the inside of a string, char
//! literal, raw string, or (nested) block comment for code, and every token
//! carries a 1-based `line:col` span so diagnostics point at the real
//! source location.
//!
//! The lexer is deliberately *not* a parser: rules pattern-match on token
//! sequences (see [`crate::rules`]), which is exactly as strong as the
//! invariants we enforce need (method/path call shapes, attribute shapes,
//! `let _ =` statements).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// An integer or float literal (lexed permissively).
    Number,
    /// A `// ...` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// A `/* ... */` comment, nesting-aware.
    BlockComment,
    /// A `"..."` or `b"..."` string literal, escape-aware.
    Str,
    /// A raw string literal `r"..."` / `r#"..."#` / `br#"..."#`.
    RawStr,
    /// A char or byte literal: `'a'`, `'\''`, `b'x'`.
    Char,
    /// A lifetime such as `'a` (disambiguated from char literals).
    Lifetime,
    /// Any single punctuation character.
    Punct,
}

/// One lexed token: kind plus byte span plus 1-based line/column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the same source passed to [`lex`]).
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

struct Cursor<'s> {
    src: &'s str,
    /// Byte position.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Whitespace is skipped; comments are
/// kept as tokens (rules need them for `// scg-allow` and `// ord:`
/// matching). Unterminated literals and comments are tolerated — the token
/// simply extends to end of input — so the analyzer degrades gracefully on
/// files that do not compile.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    // A shebang (`#!/usr/bin/env ...`) is only special on the very first
    // byte, and only when it is not an inner attribute `#![..]`.
    if src.starts_with("#!") && !src.starts_with("#![") {
        cur.eat_while(|c| c != '\n');
        out.push(Token {
            kind: TokenKind::LineComment,
            start: 0,
            end: cur.pos,
            line: 1,
            col: 1,
        });
    }
    while let Some(c) = cur.peek() {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = lex_one(&mut cur, c);
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    out
}

/// Lexes exactly one token whose first character is `c`; the cursor sits on
/// `c` at entry and one past the token at exit.
fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    match c {
        '/' if cur.peek2() == Some('/') => {
            cur.eat_while(|c| c != '\n');
            TokenKind::LineComment
        }
        '/' if cur.peek2() == Some('*') => {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(), cur.peek2()) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        }
        '"' => {
            lex_string(cur);
            TokenKind::Str
        }
        '\'' => lex_quote(cur),
        'r' if cur.peek2() == Some('"') => {
            cur.bump();
            lex_raw_string(cur);
            TokenKind::RawStr
        }
        'r' if cur.peek2() == Some('#') && cur.peek3().is_some_and(|c| c == '"' || c == '#') => {
            cur.bump();
            lex_raw_string(cur);
            TokenKind::RawStr
        }
        'r' if cur.peek2() == Some('#') => {
            // Raw identifier `r#ident`.
            cur.bump();
            cur.bump();
            cur.eat_while(is_ident_continue);
            TokenKind::Ident
        }
        'b' if cur.peek2() == Some('"') => {
            cur.bump();
            lex_string(cur);
            TokenKind::Str
        }
        'b' if cur.peek2() == Some('\'') => {
            cur.bump();
            cur.bump();
            lex_char_body(cur);
            TokenKind::Char
        }
        'b' if cur.peek2() == Some('r') && cur.peek3().is_some_and(|c| c == '"' || c == '#') => {
            cur.bump();
            cur.bump();
            lex_raw_string(cur);
            TokenKind::RawStr
        }
        c if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            TokenKind::Ident
        }
        c if c.is_ascii_digit() => {
            cur.eat_while(|c| c.is_alphanumeric() || c == '_');
            TokenKind::Number
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// Cursor on the opening `"`; consumes through the closing quote,
/// honouring `\"` and `\\` escapes.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Cursor on the `#`-or-`"` run after `r` / `br`; consumes `#*" ... "#*`.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        return; // not actually a raw string; tolerate
    }
    cur.bump();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            let mark = (cur.pos, cur.line, cur.col);
            for _ in 0..hashes {
                if cur.peek() == Some('#') {
                    cur.bump();
                } else {
                    (cur.pos, cur.line, cur.col) = mark;
                    continue 'outer;
                }
            }
            break;
        }
    }
}

/// Cursor on a `'`: decides char literal vs lifetime and consumes it.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    // A char literal is `'` + (escape | single char) + `'`; anything of the
    // shape `'ident` not closed by a quote is a lifetime.
    match (cur.peek2(), cur.peek3()) {
        (Some('\\'), _) => {
            cur.bump();
            cur.bump();
            lex_char_escape_tail(cur);
            TokenKind::Char
        }
        (Some(_), Some('\'')) => {
            cur.bump();
            cur.bump();
            cur.bump();
            TokenKind::Char
        }
        (Some(c), _) if is_ident_start(c) => {
            cur.bump();
            cur.eat_while(is_ident_continue);
            TokenKind::Lifetime
        }
        _ => {
            // Stray quote; consume it alone.
            cur.bump();
            TokenKind::Char
        }
    }
}

/// Cursor just past `'\`; consumes the rest of the escape and the closing
/// quote (handles `'\u{1F600}'`).
fn lex_char_escape_tail(cur: &mut Cursor<'_>) {
    cur.bump(); // the escaped character (n, ', u, ...)
    while let Some(c) = cur.peek() {
        cur.bump();
        if c == '\'' {
            break;
        }
    }
}

/// Cursor just past `b'`; consumes the body and closing quote.
fn lex_char_body(cur: &mut Cursor<'_>) {
    match cur.peek() {
        Some('\\') => {
            cur.bump();
            lex_char_escape_tail(cur);
        }
        Some(_) => {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
        }
        None => {}
    }
}
