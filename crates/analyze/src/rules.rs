//! The lint rules: workspace invariants as token- and tree-pattern checks.
//!
//! Every rule walks the [`lexer`](crate::lexer) token stream of one file —
//! the flow rules additionally consult the brace-matched
//! [`SyntaxTree`](crate::syntax::SyntaxTree) — and reports violations with
//! exact `line:col` spans. Rules never fire inside test code (`#[test]`
//! functions, `#[cfg(test)]` modules) and each can be silenced per-site
//! with a justified suppression:
//!
//! ```text
//! // scg-allow(SCG003): k ≤ MAX_DEGREE = 20 fits u8
//! ```
//!
//! either trailing the offending line or alone on the line above. A
//! suppression without a reason, or one that matches nothing, is itself
//! reported (as `SCG000`). `SCG008` (panic reachability) is a
//! workspace-level rule emitted by the [`driver`](crate::driver) from the
//! [`callgraph`](crate::callgraph); its `scg-allow` marks sit at the
//! audited *panic site*, not at the entry point.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};
use crate::syntax::SyntaxTree;

/// The identity of a rule (or of the suppression-hygiene meta check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Suppression hygiene: malformed or unused `scg-allow` comments.
    Scg000,
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in library code.
    Scg001,
    /// No cache-bypassing topology construction outside the topology
    /// engine (`to_graph` / `StarEmulation::new` / `Materialized::build`).
    Scg002,
    /// No potentially lossy `as` casts to narrow integer types in the
    /// symbol/index hot-path crates (`perm`, `core`, `graph`).
    Scg003,
    /// Atomic-ordering hygiene: non-`Relaxed` orderings, and `Relaxed` on
    /// plain loads/stores/exchanges, need an adjacent `// ord:` comment.
    Scg004,
    /// No `let _ = ...` discards and no never-read `_`-prefixed bindings
    /// in library code (silently dropping a `Result` is how routing
    /// errors vanish).
    Scg005,
    /// Every `unsafe { .. }` block needs an adjacent `// SAFETY:`
    /// justification.
    Scg006,
    /// Results of `extern "C"` calls must flow into a check (`cvt`-style)
    /// rather than being dropped in statement position.
    Scg007,
    /// No unaudited panicking callee reachable from the wire-decode and
    /// routing entry points (workspace-level; see
    /// [`callgraph`](crate::callgraph)).
    Scg008,
    /// No blocking call inside the serve crate while a lock guard is
    /// live (`lock()` bindings in event-loop bodies).
    Scg009,
}

/// Every real rule, in report order (`SCG000` is emitted by the driver).
pub const ALL_RULES: [RuleId; 9] = [
    RuleId::Scg001,
    RuleId::Scg002,
    RuleId::Scg003,
    RuleId::Scg004,
    RuleId::Scg005,
    RuleId::Scg006,
    RuleId::Scg007,
    RuleId::Scg008,
    RuleId::Scg009,
];

impl RuleId {
    /// The `SCG00x` code used in diagnostics and suppressions.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Scg000 => "SCG000",
            RuleId::Scg001 => "SCG001",
            RuleId::Scg002 => "SCG002",
            RuleId::Scg003 => "SCG003",
            RuleId::Scg004 => "SCG004",
            RuleId::Scg005 => "SCG005",
            RuleId::Scg006 => "SCG006",
            RuleId::Scg007 => "SCG007",
            RuleId::Scg008 => "SCG008",
            RuleId::Scg009 => "SCG009",
        }
    }

    /// Parses a `SCG00x` code (as written in a suppression).
    #[must_use]
    pub fn from_code(code: &str) -> Option<RuleId> {
        match code.trim() {
            "SCG000" => Some(RuleId::Scg000),
            "SCG001" => Some(RuleId::Scg001),
            "SCG002" => Some(RuleId::Scg002),
            "SCG003" => Some(RuleId::Scg003),
            "SCG004" => Some(RuleId::Scg004),
            "SCG005" => Some(RuleId::Scg005),
            "SCG006" => Some(RuleId::Scg006),
            "SCG007" => Some(RuleId::Scg007),
            "SCG008" => Some(RuleId::Scg008),
            "SCG009" => Some(RuleId::Scg009),
            _ => None,
        }
    }

    /// One-line description for `--list-rules` and reports.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Scg000 => {
                "suppression hygiene: scg-allow needs a reason and a matching finding"
            }
            RuleId::Scg001 => {
                "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in library code"
            }
            RuleId::Scg002 => {
                "no to_graph/StarEmulation::new/Materialized::build outside the topology engine"
            }
            RuleId::Scg003 => "no lossy `as` casts to narrow integers in perm/core/graph",
            RuleId::Scg004 => "atomic orderings need an adjacent `// ord:` justification",
            RuleId::Scg005 => "no `let _ =` discards or never-read `_`-bindings in library code",
            RuleId::Scg006 => "every `unsafe` block needs an adjacent `// SAFETY:` justification",
            RuleId::Scg007 => "extern \"C\" call results must flow into a check, not be dropped",
            RuleId::Scg008 => "no unaudited panic reachable from wire-decode/routing entry points",
            RuleId::Scg009 => "no blocking call in the serve crate while a lock guard is live",
        }
    }
}

/// One finding, before suppression matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the site.
    pub message: String,
}

/// Per-file facts the rules need beyond the token stream.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/perm/src/rank.rs`.
    pub rel_path: String,
    /// The crate directory name (`perm`, `core`, ..) or `supercayley` for
    /// the root `src/` tree.
    pub crate_name: String,
}

/// Indices (into the token slice) of non-comment tokens — the stream rules
/// pattern-match on.
#[must_use]
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect()
}

/// Files where the raw topology constructors are the implementation, not a
/// bypass: the topology engine itself and the route planner/emulation
/// modules that feed it.
fn scg002_allowed(rel_path: &str) -> bool {
    rel_path == "crates/core/src/topology.rs"
        || rel_path == "crates/core/src/routing/plan.rs"
        || rel_path == "crates/core/src/routing/expand.rs"
        || rel_path == "crates/core/src/network.rs"
}

/// Crates whose index arithmetic SCG003 audits.
fn scg003_applies(crate_name: &str) -> bool {
    matches!(crate_name, "perm" | "core" | "graph")
}

/// Runs every per-file rule over one lexed file; the syntax `tree` carries
/// test regions, unsafe blocks, extern declarations, and fn bodies.
#[must_use]
pub fn check_file(
    src: &str,
    tokens: &[Token],
    info: &FileInfo,
    tree: &SyntaxTree,
) -> Vec<Violation> {
    let sig = &tree.sig;
    let mut out = Vec::new();
    scg001(src, tokens, sig, &mut out);
    if !scg002_allowed(&info.rel_path) {
        scg002(src, tokens, sig, &mut out);
    }
    if scg003_applies(&info.crate_name) {
        scg003(src, tokens, sig, &mut out);
    }
    scg004(src, tokens, sig, &mut out);
    scg005(src, tokens, sig, tree, &mut out);
    scg006(src, tokens, tree, &mut out);
    scg007(src, tokens, sig, tree, &mut out);
    if info.crate_name == "serve" {
        scg009(src, tokens, tree, &mut out);
    }
    out.retain(|v| !tree.is_test_line(v.line));
    out.sort_by_key(|v| (v.line, v.col, v.rule));
    out
}

/// `tok(sig[i])` helper: the token at significant index `i`, if any.
fn at<'t>(tokens: &'t [Token], sig: &[usize], i: usize) -> Option<&'t Token> {
    sig.get(i).map(|&ix| &tokens[ix])
}

fn text_at<'s>(src: &'s str, tokens: &[Token], sig: &[usize], i: usize) -> Option<&'s str> {
    at(tokens, sig, i).map(|t| t.text(src))
}

fn is_punct(tokens: &[Token], sig: &[usize], i: usize, src: &str, ch: &str) -> bool {
    at(tokens, sig, i).is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == ch)
}

/// SCG001 — panicking constructs in library code.
fn scg001(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text(src);
        let method_call = matches!(name, "unwrap" | "expect")
            && i > 0
            && is_punct(tokens, sig, i - 1, src, ".")
            && is_punct(tokens, sig, i + 1, src, "(");
        let macro_call = matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && is_punct(tokens, sig, i + 1, src, "!");
        if method_call || macro_call {
            let shape = if method_call { "()" } else { "!" };
            out.push(Violation {
                rule: RuleId::Scg001,
                line: tok.line,
                col: tok.col,
                message: format!("`{name}{shape}` in library code; return a Result instead"),
            });
        }
    }
}

/// SCG002 — topology-cache bypass.
fn scg002(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text(src) {
            "to_graph"
                if i > 0
                    && is_punct(tokens, sig, i - 1, src, ".")
                    && is_punct(tokens, sig, i + 1, src, "(") =>
            {
                out.push(Violation {
                    rule: RuleId::Scg002,
                    line: tok.line,
                    col: tok.col,
                    message: "`.to_graph()` bypasses the topology cache; use \
                              `scg_core::materialize` (shared Arcs, parallel build)"
                        .to_string(),
                });
            }
            head @ ("StarEmulation" | "Materialized")
                if is_punct(tokens, sig, i + 1, src, ":")
                    && is_punct(tokens, sig, i + 2, src, ":") =>
            {
                let tail = text_at(src, tokens, sig, i + 3);
                let bypass = match head {
                    "StarEmulation" => tail == Some("new"),
                    _ => tail == Some("build"),
                };
                if bypass && is_punct(tokens, sig, i + 4, src, "(") {
                    out.push(Violation {
                        rule: RuleId::Scg002,
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "`{head}::{}()` rebuilds cached state; go through \
                             `scg_core::materialize`/`route_plan`",
                            tail.unwrap_or_default()
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Integer types an `as` cast may truncate or re-sign into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// SCG003 — lossy `as` casts in symbol/index arithmetic.
fn scg003(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident || tok.text(src) != "as" {
            continue;
        }
        let Some(target) = at(tokens, sig, i + 1) else {
            continue;
        };
        if target.kind == TokenKind::Ident && NARROW_INTS.contains(&target.text(src)) {
            out.push(Violation {
                rule: RuleId::Scg003,
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`as {}` may truncate a symbol/index; use `try_into` or a \
                     checked helper",
                    target.text(src)
                ),
            });
        }
    }
}

/// Atomic orderings SCG004 recognizes.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic accessors whose `Relaxed` use is a plain cross-thread read/write
/// (not a lost-update-free counter RMW) and therefore needs justifying.
const PLAIN_ACCESS: [&str; 4] = ["load", "store", "swap", "compare_exchange"];

/// SCG004 — atomic-ordering justification comments.
fn scg004(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text(src);
        if !ORDERINGS.contains(&name) {
            continue;
        }
        // Must be a path segment (`Ordering::Relaxed` or a `use`-imported
        // `::Relaxed`); a bare struct field named `Release` is not ours.
        if !(i >= 2
            && is_punct(tokens, sig, i - 1, src, ":")
            && is_punct(tokens, sig, i - 2, src, ":"))
        {
            continue;
        }
        let needs_reason = if name == "Relaxed" {
            // Walk back to the start of the statement and look at which
            // accessor this ordering feeds.
            let mut plain = false;
            let mut rmw = false;
            for j in (0..i).rev() {
                let Some(t) = at(tokens, sig, j) else { break };
                let txt = t.text(src);
                if t.kind == TokenKind::Punct && matches!(txt, ";" | "{" | "}") {
                    break;
                }
                if t.kind == TokenKind::Ident {
                    if PLAIN_ACCESS.contains(&txt) || txt == "compare_exchange_weak" {
                        plain = true;
                        break;
                    }
                    if txt.starts_with("fetch_") {
                        rmw = true;
                        break;
                    }
                }
            }
            plain || !rmw
        } else {
            true
        };
        if needs_reason && !has_ord_comment(src, tokens, tok.line) {
            out.push(Violation {
                rule: RuleId::Scg004,
                line: tok.line,
                col: tok.col,
                message: format!("`Ordering::{name}` without an adjacent `// ord:` justification"),
            });
        }
    }
}

/// Whether a comment on `line` or the line above carries an `ord:` tag.
fn has_ord_comment(src: &str, tokens: &[Token], line: u32) -> bool {
    tokens.iter().any(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            && (t.line == line || t.line + 1 == line)
            && t.text(src).contains("ord:")
    })
}

/// SCG005 — `let _ =` discards and never-read `_`-prefixed bindings.
fn scg005(src: &str, tokens: &[Token], sig: &[usize], tree: &SyntaxTree, out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident || tok.text(src) != "let" {
            continue;
        }
        // `let _ = ..` — the plain discard.
        if text_at(src, tokens, sig, i + 1) == Some("_")
            && at(tokens, sig, i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && is_punct(tokens, sig, i + 2, src, "=")
        {
            out.push(Violation {
                rule: RuleId::Scg005,
                line: tok.line,
                col: tok.col,
                message: "`let _ =` silently discards a value (Results vanish here); \
                          handle or document it"
                    .to_string(),
            });
            continue;
        }
        // `let [mut] _name = ..` where `_name` is never read afterwards —
        // the same discard wearing a binding.
        let mut j = i + 1;
        if text_at(src, tokens, sig, j) == Some("mut") {
            j += 1;
        }
        let Some(bind) = at(tokens, sig, j) else {
            continue;
        };
        let name = bind.text(src);
        if bind.kind != TokenKind::Ident
            || !name.starts_with('_')
            || name == "_"
            || !is_punct(tokens, sig, j + 1, src, "=")
        {
            continue;
        }
        // Scope of the read scan: the enclosing fn body, or the whole
        // file for non-fn contexts (consts, statics).
        let (lo, hi) = tree
            .enclosing_fn(j)
            .and_then(|f| f.body)
            .unwrap_or((0, sig.len()));
        let read = (lo..hi).filter(|&k| k != j).any(|k| {
            at(tokens, sig, k).is_some_and(|t| t.kind == TokenKind::Ident && t.text(src) == name)
        });
        if !read {
            out.push(Violation {
                rule: RuleId::Scg005,
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`{name}` is never read — a discard wearing a binding; handle \
                     the value or justify the drop"
                ),
            });
        }
    }
}

/// SCG006 — `unsafe` blocks need an adjacent `// SAFETY:` comment: on the
/// block's first line, or in the contiguous comment run directly above.
fn scg006(src: &str, tokens: &[Token], tree: &SyntaxTree, out: &mut Vec<Violation>) {
    if tree.unsafe_blocks.is_empty() {
        return;
    }
    // Per-line facts: does the line carry a SAFETY comment; is it
    // comment-only (so an upward walk may continue through it).
    let mut safety: BTreeSet<u32> = BTreeSet::new();
    let mut has_code: BTreeSet<u32> = BTreeSet::new();
    let mut has_any: BTreeSet<u32> = BTreeSet::new();
    for t in tokens {
        has_any.insert(t.line);
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            if t.text(src).contains("SAFETY:") {
                safety.insert(t.line);
            }
        } else {
            has_code.insert(t.line);
        }
    }
    for ub in &tree.unsafe_blocks {
        if ub.is_test {
            continue;
        }
        let mut justified = safety.contains(&ub.line);
        let mut l = ub.line.saturating_sub(1);
        while !justified && l >= 1 && has_any.contains(&l) && !has_code.contains(&l) {
            justified = safety.contains(&l);
            l -= 1;
        }
        if !justified {
            out.push(Violation {
                rule: RuleId::Scg006,
                line: ub.line,
                col: ub.col,
                message: "`unsafe` block without an adjacent `// SAFETY:` justification"
                    .to_string(),
            });
        }
    }
}

/// SCG007 — results of `extern "C"` calls must flow somewhere (a binding,
/// an argument, a `cvt`-style check); a foreign call in statement
/// position drops the status code on the floor.
fn scg007(src: &str, tokens: &[Token], sig: &[usize], tree: &SyntaxTree, out: &mut Vec<Violation>) {
    if tree.extern_decls.is_empty() {
        return;
    }
    let names: BTreeSet<&str> = tree.extern_decls.iter().map(|d| d.name.as_str()).collect();
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident
            || !names.contains(tok.text(src))
            || !is_punct(tokens, sig, i + 1, src, "(")
        {
            continue;
        }
        // Skip the foreign declaration itself and any shadowing method.
        let prev = text_at(src, tokens, sig, i.wrapping_sub(1));
        if prev == Some("fn") || prev == Some(".") {
            continue;
        }
        // The consumer of the expression: hop over an `unsafe {` wrapper.
        let mut s = i;
        if is_punct(tokens, sig, s.wrapping_sub(1), src, "{")
            && text_at(src, tokens, sig, s.wrapping_sub(2)) == Some("unsafe")
        {
            s -= 2;
        }
        let before = text_at(src, tokens, sig, s.wrapping_sub(1));
        if s == 0 || matches!(before, Some(";" | "{" | "}")) {
            out.push(Violation {
                rule: RuleId::Scg007,
                line: tok.line,
                col: tok.col,
                message: format!(
                    "result of extern \"C\" `{}()` is discarded; route it through a \
                     checked helper (`cvt`-style)",
                    tok.text(src)
                ),
            });
        }
    }
}

/// Calls that park the calling thread (or can): forbidden while a lock
/// guard is live in serve event-loop code.
const BLOCKING: [&str; 12] = [
    "accept",
    "connect",
    "join",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "sleep",
    "wait",
    "wait_timeout",
    "write_all",
];

/// SCG009 — blocking calls while a `lock()` guard binding is live, scoped
/// to the serve crate (the epoll event loops). A guard is a `let` whose
/// initializer *ends* in `.lock()` (optionally `.expect(..)`/`.unwrap()`),
/// and it lives until the enclosing block closes or `drop(guard)`.
fn scg009(src: &str, tokens: &[Token], tree: &SyntaxTree, out: &mut Vec<Violation>) {
    let sig = &tree.sig;
    for f in &tree.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        if f.is_test {
            continue;
        }
        let mut i = open + 1;
        while i < close {
            if at(tokens, sig, i).is_some_and(|t| t.kind == TokenKind::Ident)
                && text_at(src, tokens, sig, i) == Some("let")
            {
                let (stmt_end, guard) = let_statement(src, tokens, sig, i, close);
                if let Some(bind) = guard {
                    check_guard_region(src, tokens, sig, stmt_end + 1, close, &bind, out);
                }
                i = stmt_end + 1;
            } else {
                i += 1;
            }
        }
    }
}

/// Scans the `let` statement starting at `i`: returns the index of its
/// terminating `;` and the bound name when the initializer ends in a
/// `.lock()` chain (a live guard).
fn let_statement(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    i: usize,
    limit: usize,
) -> (usize, Option<String>) {
    let mut j = i + 1;
    if text_at(src, tokens, sig, j) == Some("mut") {
        j += 1;
    }
    let bind = at(tokens, sig, j)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src).to_string());
    // Find the terminating `;` at statement depth.
    let mut depth = 0usize;
    let mut end = i;
    let mut k = i;
    while k < limit {
        match text_at(src, tokens, sig, k) {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => depth = depth.saturating_sub(1),
            Some(";") if depth == 0 => {
                end = k;
                break;
            }
            _ => {}
        }
        k += 1;
    }
    if end == i {
        return (limit, None);
    }
    // Guard iff a `.lock(` chain (plus optional `.expect`/`.unwrap`)
    // reaches the `;` — a lock temporary consumed mid-expression dies at
    // the statement end and holds nothing.
    let mut m = i;
    let mut guard = false;
    while m < end {
        if text_at(src, tokens, sig, m) == Some("lock")
            && is_punct(tokens, sig, m.wrapping_sub(1), src, ".")
            && is_punct(tokens, sig, m + 1, src, "(")
        {
            let mut after = skip_balanced(src, tokens, sig, m + 1, end + 1);
            while is_punct(tokens, sig, after, src, ".")
                && matches!(
                    text_at(src, tokens, sig, after + 1),
                    Some("expect" | "unwrap")
                )
                && is_punct(tokens, sig, after + 2, src, "(")
            {
                after = skip_balanced(src, tokens, sig, after + 2, end + 1);
            }
            if after == end {
                guard = true;
            }
        }
        m += 1;
    }
    (end, if guard { bind } else { None })
}

/// Skips past the balanced group opening at `i`; returns the index just
/// past its closer.
fn skip_balanced(src: &str, tokens: &[Token], sig: &[usize], i: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < limit {
        match text_at(src, tokens, sig, j) {
            Some("(" | "[" | "{") => depth += 1,
            Some(")" | "]" | "}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Scans from just past a guard binding to the close of its enclosing
/// block, flagging blocking calls; `drop(guard)` ends the region early.
fn check_guard_region(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    start: usize,
    limit: usize,
    bind: &str,
    out: &mut Vec<Violation>,
) {
    let mut depth = 0usize;
    let mut j = start;
    while j < limit {
        let Some(tok) = at(tokens, sig, j) else { break };
        let t = tok.text(src);
        match t {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                if depth == 0 && t == "}" {
                    return; // enclosing block closed — guard dropped
                }
                depth = depth.saturating_sub(1);
            }
            "drop"
                if is_punct(tokens, sig, j + 1, src, "(")
                    && text_at(src, tokens, sig, j + 2) == Some(bind)
                    && is_punct(tokens, sig, j + 3, src, ")") =>
            {
                return; // explicit early drop
            }
            _ if tok.kind == TokenKind::Ident
                && is_punct(tokens, sig, j + 1, src, "(")
                && (BLOCKING.contains(&t)
                    || (t == "lock" && is_punct(tokens, sig, j.wrapping_sub(1), src, "."))) =>
            {
                out.push(Violation {
                    rule: RuleId::Scg009,
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`{t}()` while lock guard `{bind}` is live; shrink the lock \
                         scope or drop the guard before blocking"
                    ),
                });
            }
            _ => {}
        }
        j += 1;
    }
}
