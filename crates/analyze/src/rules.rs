//! The lint rules: workspace invariants as token-pattern checks.
//!
//! Every rule walks the [`lexer`](crate::lexer) token stream of one file and
//! reports violations with exact `line:col` spans. Rules never fire inside
//! test code (`#[test]` functions, `#[cfg(test)]` modules — see
//! [`crate::driver`]'s region detection) and each can be silenced per-site
//! with a justified suppression:
//!
//! ```text
//! // scg-allow(SCG003): k ≤ MAX_DEGREE = 20 fits u8
//! ```
//!
//! either trailing the offending line or alone on the line above. A
//! suppression without a reason, or one that matches nothing, is itself
//! reported (as `SCG000`).

use crate::lexer::{Token, TokenKind};

/// The identity of a rule (or of the suppression-hygiene meta check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Suppression hygiene: malformed or unused `scg-allow` comments.
    Scg000,
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in library code.
    Scg001,
    /// No cache-bypassing topology construction outside the topology
    /// engine (`to_graph` / `StarEmulation::new` / `Materialized::build`).
    Scg002,
    /// No potentially lossy `as` casts to narrow integer types in the
    /// symbol/index hot-path crates (`perm`, `core`, `graph`).
    Scg003,
    /// Atomic-ordering hygiene: non-`Relaxed` orderings, and `Relaxed` on
    /// plain loads/stores/exchanges, need an adjacent `// ord:` comment.
    Scg004,
    /// No `let _ = ...` discards in library code (silently dropping a
    /// `Result` is how routing errors vanish).
    Scg005,
}

/// Every real rule, in report order (`SCG000` is emitted by the driver).
pub const ALL_RULES: [RuleId; 5] = [
    RuleId::Scg001,
    RuleId::Scg002,
    RuleId::Scg003,
    RuleId::Scg004,
    RuleId::Scg005,
];

impl RuleId {
    /// The `SCG00x` code used in diagnostics and suppressions.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Scg000 => "SCG000",
            RuleId::Scg001 => "SCG001",
            RuleId::Scg002 => "SCG002",
            RuleId::Scg003 => "SCG003",
            RuleId::Scg004 => "SCG004",
            RuleId::Scg005 => "SCG005",
        }
    }

    /// Parses a `SCG00x` code (as written in a suppression).
    #[must_use]
    pub fn from_code(code: &str) -> Option<RuleId> {
        match code.trim() {
            "SCG000" => Some(RuleId::Scg000),
            "SCG001" => Some(RuleId::Scg001),
            "SCG002" => Some(RuleId::Scg002),
            "SCG003" => Some(RuleId::Scg003),
            "SCG004" => Some(RuleId::Scg004),
            "SCG005" => Some(RuleId::Scg005),
            _ => None,
        }
    }

    /// One-line description for `--list-rules` and reports.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Scg000 => {
                "suppression hygiene: scg-allow needs a reason and a matching finding"
            }
            RuleId::Scg001 => {
                "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in library code"
            }
            RuleId::Scg002 => {
                "no to_graph/StarEmulation::new/Materialized::build outside the topology engine"
            }
            RuleId::Scg003 => "no lossy `as` casts to narrow integers in perm/core/graph",
            RuleId::Scg004 => "atomic orderings need an adjacent `// ord:` justification",
            RuleId::Scg005 => "no `let _ =` discards in library code",
        }
    }
}

/// One finding, before suppression matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the site.
    pub message: String,
}

/// Per-file facts the rules need beyond the token stream.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/perm/src/rank.rs`.
    pub rel_path: String,
    /// The crate directory name (`perm`, `core`, ..) or `supercayley` for
    /// the root `src/` tree.
    pub crate_name: String,
}

/// Indices (into the token slice) of non-comment tokens — the stream rules
/// pattern-match on.
#[must_use]
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect()
}

/// Files where the raw topology constructors are the implementation, not a
/// bypass: the topology engine itself and the route planner/emulation
/// modules that feed it.
fn scg002_allowed(rel_path: &str) -> bool {
    rel_path == "crates/core/src/topology.rs"
        || rel_path == "crates/core/src/routing/plan.rs"
        || rel_path == "crates/core/src/routing/expand.rs"
        || rel_path == "crates/core/src/network.rs"
}

/// Crates whose index arithmetic SCG003 audits.
fn scg003_applies(crate_name: &str) -> bool {
    matches!(crate_name, "perm" | "core" | "graph")
}

/// Runs every rule over one lexed file. `is_test_line` reports whether a
/// 1-based line sits inside test-gated code.
#[must_use]
pub fn check_file(
    src: &str,
    tokens: &[Token],
    info: &FileInfo,
    is_test_line: &dyn Fn(u32) -> bool,
) -> Vec<Violation> {
    let sig = significant(tokens);
    let mut out = Vec::new();
    scg001(src, tokens, &sig, &mut out);
    if !scg002_allowed(&info.rel_path) {
        scg002(src, tokens, &sig, &mut out);
    }
    if scg003_applies(&info.crate_name) {
        scg003(src, tokens, &sig, &mut out);
    }
    scg004(src, tokens, &sig, &mut out);
    scg005(src, tokens, &sig, &mut out);
    out.retain(|v| !is_test_line(v.line));
    out.sort_by_key(|v| (v.line, v.col, v.rule));
    out
}

/// `tok(sig[i])` helper: the token at significant index `i`, if any.
fn at<'t>(tokens: &'t [Token], sig: &[usize], i: usize) -> Option<&'t Token> {
    sig.get(i).map(|&ix| &tokens[ix])
}

fn text_at<'s>(src: &'s str, tokens: &[Token], sig: &[usize], i: usize) -> Option<&'s str> {
    at(tokens, sig, i).map(|t| t.text(src))
}

fn is_punct(tokens: &[Token], sig: &[usize], i: usize, src: &str, ch: &str) -> bool {
    at(tokens, sig, i).is_some_and(|t| t.kind == TokenKind::Punct && t.text(src) == ch)
}

/// SCG001 — panicking constructs in library code.
fn scg001(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text(src);
        let method_call = matches!(name, "unwrap" | "expect")
            && i > 0
            && is_punct(tokens, sig, i - 1, src, ".")
            && is_punct(tokens, sig, i + 1, src, "(");
        let macro_call = matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && is_punct(tokens, sig, i + 1, src, "!");
        if method_call || macro_call {
            let shape = if method_call { "()" } else { "!" };
            out.push(Violation {
                rule: RuleId::Scg001,
                line: tok.line,
                col: tok.col,
                message: format!("`{name}{shape}` in library code; return a Result instead"),
            });
        }
    }
}

/// SCG002 — topology-cache bypass.
fn scg002(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        match tok.text(src) {
            "to_graph"
                if i > 0
                    && is_punct(tokens, sig, i - 1, src, ".")
                    && is_punct(tokens, sig, i + 1, src, "(") =>
            {
                out.push(Violation {
                    rule: RuleId::Scg002,
                    line: tok.line,
                    col: tok.col,
                    message: "`.to_graph()` bypasses the topology cache; use \
                              `scg_core::materialize` (shared Arcs, parallel build)"
                        .to_string(),
                });
            }
            head @ ("StarEmulation" | "Materialized")
                if is_punct(tokens, sig, i + 1, src, ":")
                    && is_punct(tokens, sig, i + 2, src, ":") =>
            {
                let tail = text_at(src, tokens, sig, i + 3);
                let bypass = match head {
                    "StarEmulation" => tail == Some("new"),
                    _ => tail == Some("build"),
                };
                if bypass && is_punct(tokens, sig, i + 4, src, "(") {
                    out.push(Violation {
                        rule: RuleId::Scg002,
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "`{head}::{}()` rebuilds cached state; go through \
                             `scg_core::materialize`/`route_plan`",
                            tail.unwrap_or_default()
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Integer types an `as` cast may truncate or re-sign into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// SCG003 — lossy `as` casts in symbol/index arithmetic.
fn scg003(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident || tok.text(src) != "as" {
            continue;
        }
        let Some(target) = at(tokens, sig, i + 1) else {
            continue;
        };
        if target.kind == TokenKind::Ident && NARROW_INTS.contains(&target.text(src)) {
            out.push(Violation {
                rule: RuleId::Scg003,
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`as {}` may truncate a symbol/index; use `try_into` or a \
                     checked helper",
                    target.text(src)
                ),
            });
        }
    }
}

/// Atomic orderings SCG004 recognizes.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic accessors whose `Relaxed` use is a plain cross-thread read/write
/// (not a lost-update-free counter RMW) and therefore needs justifying.
const PLAIN_ACCESS: [&str; 4] = ["load", "store", "swap", "compare_exchange"];

/// SCG004 — atomic-ordering justification comments.
fn scg004(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text(src);
        if !ORDERINGS.contains(&name) {
            continue;
        }
        // Must be a path segment (`Ordering::Relaxed` or a `use`-imported
        // `::Relaxed`); a bare struct field named `Release` is not ours.
        if !(i >= 2
            && is_punct(tokens, sig, i - 1, src, ":")
            && is_punct(tokens, sig, i - 2, src, ":"))
        {
            continue;
        }
        let needs_reason = if name == "Relaxed" {
            // Walk back to the start of the statement and look at which
            // accessor this ordering feeds.
            let mut plain = false;
            let mut rmw = false;
            for j in (0..i).rev() {
                let Some(t) = at(tokens, sig, j) else { break };
                let txt = t.text(src);
                if t.kind == TokenKind::Punct && matches!(txt, ";" | "{" | "}") {
                    break;
                }
                if t.kind == TokenKind::Ident {
                    if PLAIN_ACCESS.contains(&txt) || txt == "compare_exchange_weak" {
                        plain = true;
                        break;
                    }
                    if txt.starts_with("fetch_") {
                        rmw = true;
                        break;
                    }
                }
            }
            plain || !rmw
        } else {
            true
        };
        if needs_reason && !has_ord_comment(src, tokens, tok.line) {
            out.push(Violation {
                rule: RuleId::Scg004,
                line: tok.line,
                col: tok.col,
                message: format!("`Ordering::{name}` without an adjacent `// ord:` justification"),
            });
        }
    }
}

/// Whether a comment on `line` or the line above carries an `ord:` tag.
fn has_ord_comment(src: &str, tokens: &[Token], line: u32) -> bool {
    tokens.iter().any(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            && (t.line == line || t.line + 1 == line)
            && t.text(src).contains("ord:")
    })
}

/// SCG005 — `let _ =` discards.
fn scg005(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Violation>) {
    for i in 0..sig.len() {
        let Some(tok) = at(tokens, sig, i) else { break };
        if tok.kind == TokenKind::Ident
            && tok.text(src) == "let"
            && text_at(src, tokens, sig, i + 1) == Some("_")
            && at(tokens, sig, i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && is_punct(tokens, sig, i + 2, src, "=")
        {
            out.push(Violation {
                rule: RuleId::Scg005,
                line: tok.line,
                col: tok.col,
                message: "`let _ =` silently discards a value (Results vanish here); \
                          handle or document it"
                    .to_string(),
            });
        }
    }
}
