//! Report rendering: human diagnostics and the machine-readable JSON
//! artifact.
//!
//! The JSON report is built on the shared [`scg_obs::json::Json`] model and
//! serialized with [`Json::encode`], so it round-trips through the same
//! hand-rolled parser that validates `results/BENCH_*.json` — the
//! `--validate` mode and the CI gate both re-parse it with
//! [`scg_obs::json::parse`].

use std::collections::BTreeMap;

use scg_obs::json::{parse, Json};

use crate::driver::Analysis;
use crate::rules::{RuleId, ALL_RULES};

/// Schema tag stamped into every report.
pub const SCHEMA: &str = "scg-analyze/v2";

/// Integer schema version, mirrored in the report as `schema_version` so
/// downstream tooling can gate on a number instead of parsing the tag.
pub const SCHEMA_VERSION: u32 = 2;

/// Renders the human-readable diagnostics (one line per finding, rustc
/// style), followed by a per-rule summary.
#[must_use]
pub fn render_text(analysis: &Analysis, verbose: bool) -> String {
    let mut out = String::new();
    for d in &analysis.diagnostics {
        match &d.suppressed {
            None => {
                out.push_str(&format!(
                    "{}: {}:{}:{}: {}\n",
                    d.rule.code(),
                    d.file,
                    d.line,
                    d.col,
                    d.message
                ));
            }
            Some(reason) if verbose => {
                out.push_str(&format!(
                    "{}: {}:{}:{}: suppressed — {}\n",
                    d.rule.code(),
                    d.file,
                    d.line,
                    d.col,
                    reason
                ));
            }
            Some(_) => {}
        }
    }
    let active = analysis.active().count();
    let suppressed = analysis.diagnostics.len() - active;
    out.push_str(&format!(
        "scg-analyze: {} file(s), {} violation(s), {} suppressed\n",
        analysis.files_scanned, active, suppressed
    ));
    for rule in ALL_RULES {
        let n = analysis.count(rule);
        if n > 0 || verbose {
            out.push_str(&format!("  {}: {} — {}\n", rule.code(), n, rule.summary()));
        }
    }
    let hygiene = analysis.count(RuleId::Scg000);
    if hygiene > 0 {
        out.push_str(&format!(
            "  {}: {} — {}\n",
            RuleId::Scg000.code(),
            hygiene,
            RuleId::Scg000.summary()
        ));
    }
    out
}

/// The `--list-rules` table.
#[must_use]
pub fn render_rules() -> String {
    let mut out = String::from("scg-analyze rules:\n");
    for rule in ALL_RULES {
        out.push_str(&format!("  {}  {}\n", rule.code(), rule.summary()));
    }
    out.push_str(&format!(
        "  {}  {}\n",
        RuleId::Scg000.code(),
        RuleId::Scg000.summary()
    ));
    out.push_str(
        "suppress with `// scg-allow(SCG00x): reason` on the offending line \
         or the line above; the reason is mandatory\n",
    );
    out
}

/// Builds the machine-readable report as a [`Json`] tree.
#[must_use]
pub fn to_json(analysis: &Analysis) -> Json {
    let mut rules = Vec::new();
    for rule in ALL_RULES {
        rules.push(Json::Object(BTreeMap::from([
            ("id".to_string(), Json::String(rule.code().to_string())),
            (
                "summary".to_string(),
                Json::String(rule.summary().to_string()),
            ),
            (
                "violations".to_string(),
                Json::Int(analysis.count(rule) as i128),
            ),
        ])));
    }
    let mut violations = Vec::new();
    let mut suppressions = Vec::new();
    for d in &analysis.diagnostics {
        let mut entry = BTreeMap::from([
            ("rule".to_string(), Json::String(d.rule.code().to_string())),
            ("file".to_string(), Json::String(d.file.clone())),
            ("line".to_string(), Json::Int(i128::from(d.line))),
            ("col".to_string(), Json::Int(i128::from(d.col))),
            ("message".to_string(), Json::String(d.message.clone())),
        ]);
        match &d.suppressed {
            Some(reason) => {
                entry.insert("reason".to_string(), Json::String(reason.clone()));
                suppressions.push(Json::Object(entry));
            }
            None => violations.push(Json::Object(entry)),
        }
    }
    Json::Object(BTreeMap::from([
        ("schema".to_string(), Json::String(SCHEMA.to_string())),
        (
            "schema_version".to_string(),
            Json::Int(i128::from(SCHEMA_VERSION)),
        ),
        ("tool".to_string(), Json::String("scg-analyze".to_string())),
        (
            "files_scanned".to_string(),
            Json::Int(analysis.files_scanned as i128),
        ),
        ("rules".to_string(), Json::Array(rules)),
        ("violations".to_string(), Json::Array(violations)),
        ("suppressions".to_string(), Json::Array(suppressions)),
        (
            "total_violations".to_string(),
            Json::Int(analysis.active().count() as i128),
        ),
    ]))
}

/// Validates a written report: parses via the shared parser and checks the
/// schema invariants the CI gate relies on (the same contract style as
/// `check_bench_json`).
///
/// # Errors
///
/// Returns a human-readable message on the first malformed field.
pub fn validate_report(text: &str) -> Result<(), String> {
    let v = parse(text).map_err(|e| format!("report does not parse: {e}"))?;
    let top = v.as_object(0).map_err(|e| format!("{e}"))?;
    let schema = top
        .get("schema")
        .ok_or("missing \"schema\"")?
        .as_string(0)
        .map_err(|e| format!("{e}"))?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let version = top
        .get("schema_version")
        .ok_or("missing \"schema_version\"")?
        .as_u64(0)
        .map_err(|e| format!("{e}"))?;
    if version != u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema_version is {version}, expected {SCHEMA_VERSION}"
        ));
    }
    let files = top
        .get("files_scanned")
        .ok_or("missing \"files_scanned\"")?
        .as_u64(0)
        .map_err(|e| format!("{e}"))?;
    if files == 0 {
        return Err("files_scanned is 0 — the analyzer saw nothing".to_string());
    }
    let rules = top
        .get("rules")
        .ok_or("missing \"rules\"")?
        .as_array(0)
        .map_err(|e| format!("{e}"))?;
    if rules.len() != ALL_RULES.len() {
        return Err(format!(
            "rules table has {} entries, expected {}",
            rules.len(),
            ALL_RULES.len()
        ));
    }
    let total = top
        .get("total_violations")
        .ok_or("missing \"total_violations\"")?
        .as_u64(0)
        .map_err(|e| format!("{e}"))?;
    let listed = top
        .get("violations")
        .ok_or("missing \"violations\"")?
        .as_array(0)
        .map_err(|e| format!("{e}"))?
        .len() as u64;
    if total != listed {
        return Err(format!(
            "total_violations = {total} but {listed} violations listed"
        ));
    }
    for entry in top
        .get("suppressions")
        .ok_or("missing \"suppressions\"")?
        .as_array(0)
        .map_err(|e| format!("{e}"))?
    {
        let obj = entry.as_object(0).map_err(|e| format!("{e}"))?;
        let reason = obj
            .get("reason")
            .ok_or("suppression without \"reason\"")?
            .as_string(0)
            .map_err(|e| format!("{e}"))?;
        if reason.trim().is_empty() {
            return Err("suppression with an empty reason".to_string());
        }
    }
    Ok(())
}
