//! The lint driver: file discovery, test-region detection, suppression
//! matching, and diagnostic assembly.
//!
//! The driver walks the workspace's *library* sources — `crates/<name>/src`
//! for every crate except the bench harness, plus the root `src/` tree
//! minus `src/bin` — lexes each file once, computes which lines are
//! test-gated, runs every rule, and resolves `// scg-allow` suppressions.
//! Files under `tests/`, `benches/`, and `examples/` are intentionally out
//! of scope: the invariants protect production code paths.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{check_file, FileInfo, RuleId};

/// A fully resolved finding: a rule violation plus its suppression state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when a justified `scg-allow` covers this site.
    pub suppressed: Option<String>,
}

impl Diagnostic {
    /// Whether this diagnostic counts against `--deny`.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.suppressed.is_none()
    }
}

/// The outcome of analyzing a tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every diagnostic (active and suppressed), in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files lexed and checked.
    pub files_scanned: usize,
}

impl Analysis {
    /// Diagnostics that count against `--deny`.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_active())
    }

    /// Active-violation count for one rule.
    #[must_use]
    pub fn count(&self, rule: RuleId) -> usize {
        self.active().filter(|d| d.rule == rule).count()
    }
}

/// A parsed `// scg-allow(SCG00x[, ...]): reason` comment.
#[derive(Debug)]
struct Suppression {
    rules: Vec<RuleId>,
    line: u32,
    col: u32,
    reason: String,
    used: bool,
}

/// Analyzes every library source under `root` (a workspace checkout).
///
/// # Errors
///
/// Returns an error string if `root` has no recognizable workspace layout
/// or a source file cannot be read — the analyzer refuses to "pass" on a
/// tree it could not actually see.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let files = discover(root)?;
    let mut analysis = Analysis::default();
    for (path, info) in files {
        let src = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        analyze_source(&src, &info, &mut analysis);
    }
    analysis
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(analysis)
}

/// Analyzes one in-memory source file (the unit the fixture tests drive).
pub fn analyze_source(src: &str, info: &FileInfo, analysis: &mut Analysis) {
    let tokens = lex(src);
    let test_lines = test_line_set(src, &tokens);
    let mut suppressions = collect_suppressions(src, &tokens);
    let violations = check_file(src, &tokens, info, &|line| test_lines.contains(&line));
    analysis.files_scanned += 1;
    for v in violations {
        let reason = suppressions
            .iter_mut()
            .find(|s| {
                !s.reason.is_empty()
                    && s.rules.contains(&v.rule)
                    && (s.line == v.line || s.line + 1 == v.line)
            })
            .map(|s| {
                s.used = true;
                s.reason.clone()
            });
        analysis.diagnostics.push(Diagnostic {
            rule: v.rule,
            file: info.rel_path.clone(),
            line: v.line,
            col: v.col,
            message: v.message,
            suppressed: reason,
        });
    }
    // Suppression hygiene (SCG000): missing reasons and dead suppressions
    // are both findings — stale allows are how invariants rot.
    for s in &suppressions {
        if test_lines.contains(&s.line) {
            continue;
        }
        if s.reason.is_empty() {
            analysis.diagnostics.push(Diagnostic {
                rule: RuleId::Scg000,
                file: info.rel_path.clone(),
                line: s.line,
                col: s.col,
                message: "scg-allow without a reason; write `// scg-allow(SCG00x): why`"
                    .to_string(),
                suppressed: None,
            });
        } else if !s.used {
            analysis.diagnostics.push(Diagnostic {
                rule: RuleId::Scg000,
                file: info.rel_path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "scg-allow({}) matches no finding on this or the next line; remove it",
                    s.rules
                        .iter()
                        .map(|r| r.code())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                suppressed: None,
            });
        }
    }
}

/// Finds the library sources to lint: `(absolute path, file facts)` pairs.
fn discover(root: &Path) -> Result<Vec<(PathBuf, FileInfo)>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{}: not a workspace root (no crates/ directory)",
            root.display()
        ));
    }
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if name == "bench" {
            continue; // the bench harness is exempt by charter
        }
        collect_rs(&dir.join("src"), &name, root, &mut out)?;
    }
    // The root facade crate: src/ minus src/bin.
    collect_rs(&root.join("src"), "supercayley", root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (skipping any `bin/`
/// subtree) into `out`.
fn collect_rs(
    dir: &Path,
    crate_name: &str,
    root: &Path,
    out: &mut Vec<(PathBuf, FileInfo)>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().and_then(|n| n.to_str()) == Some("bin") {
                continue; // binaries are operator tooling, not library code
            }
            collect_rs(&path, crate_name, root, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((
                path.clone(),
                FileInfo {
                    rel_path: rel,
                    crate_name: crate_name.to_string(),
                },
            ));
        }
    }
    Ok(())
}

/// The set of 1-based lines inside test-gated code: items annotated
/// `#[test]`, `#[cfg(test)]`, or any attribute mentioning `test` outside a
/// `not(..)` (so `#[cfg_attr(not(test), ...)]` does *not* exempt).
fn test_line_set(src: &str, tokens: &[Token]) -> BTreeSet<u32> {
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let txt = |i: usize| tokens[sig[i]].text(src);
    let mut lines = BTreeSet::new();
    let mut i = 0;
    while i + 1 < sig.len() {
        // Outer attribute start: `#` `[` (inner `#![...]` attributes gate
        // the whole file's lint level, not a test region).
        if !(txt(i) == "#" && txt(i + 1) == "[") {
            i += 1;
            continue;
        }
        let (is_test, after_attr) = scan_attr(src, tokens, &sig, i);
        if !is_test {
            i = after_attr;
            continue;
        }
        let start_line = tokens[sig[i]].line;
        let end = item_end(src, tokens, &sig, after_attr);
        let end_line = tokens[sig[end.min(sig.len() - 1)]].line;
        for l in start_line..=end_line {
            lines.insert(l);
        }
        i = end + 1;
    }
    lines
}

/// Scans the attribute starting at significant index `i` (`#` `[` ...).
/// Returns whether it test-gates its item, and the index just past `]`.
fn scan_attr(src: &str, tokens: &[Token], sig: &[usize], i: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut j = i + 1; // at `[`
    let mut is_test = false;
    while j < sig.len() {
        let t = tokens[sig[j]].text(src);
        match t {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    return (is_test, j + 1);
                }
            }
            "test" => {
                // `not(test)` keeps the item in the lint set.
                let negated = j >= 2
                    && tokens[sig[j - 1]].text(src) == "("
                    && tokens[sig[j - 2]].text(src) == "not";
                if !negated {
                    is_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    (is_test, j)
}

/// Finds the end (significant index) of the item starting at `i`: skips
/// stacked attributes, then runs to the first `;` at depth 0 or the brace
/// that closes the item's body.
fn item_end(src: &str, tokens: &[Token], sig: &[usize], mut i: usize) -> usize {
    // Skip further attributes on the same item.
    while i + 1 < sig.len()
        && tokens[sig[i]].text(src) == "#"
        && tokens[sig[i + 1]].text(src) == "["
    {
        let (_, after) = scan_attr(src, tokens, sig, i);
        i = after;
    }
    let mut depth = 0usize;
    let mut j = i;
    while j < sig.len() {
        match tokens[sig[j]].text(src) {
            ";" if depth == 0 => return j,
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j.saturating_sub(1)
}

/// Parses every `scg-allow` comment in the file.
fn collect_suppressions(src: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("scg-allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Suppression {
                rules: Vec::new(),
                line: t.line,
                col: t.col,
                reason: String::new(),
                used: false,
            });
            continue;
        };
        let rules: Vec<RuleId> = rest[..close]
            .split(',')
            .filter_map(RuleId::from_code)
            .collect();
        let tail = rest[close + 1..].trim_start();
        let reason = tail
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Suppression {
            rules,
            line: t.line,
            col: t.col,
            reason,
            used: false,
        });
    }
    out
}
