//! The lint driver: file discovery, suppression matching, diagnostic
//! assembly, and the workspace-level panic-reachability pass.
//!
//! The driver walks the workspace's *library* sources — `crates/<name>/src`
//! for every crate except the bench harness, plus the root `src/` tree
//! minus `src/bin` — lexes each file once, builds its
//! [`SyntaxTree`](crate::syntax::SyntaxTree) (test regions, fn bodies,
//! unsafe blocks, extern declarations), runs every per-file rule, resolves
//! `// scg-allow` suppressions, and extracts call-graph summaries. A final
//! cross-file pass runs SCG008 panic reachability from the wire-decode and
//! routing entry points. Files under `tests/`, `benches/`, and `examples/`
//! are intentionally out of scope: the invariants protect production code
//! paths.
//!
//! With a cache path ([`analyze_workspace_cached`]) the per-file pass is
//! skipped for files whose content hash is unchanged — see
//! [`crate::cache`].

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::cache::{self, Cache, FileEntry};
use crate::callgraph::{self, FnSummary};
use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{check_file, FileInfo, RuleId};
use crate::syntax;

/// A fully resolved finding: a rule violation plus its suppression state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when a justified `scg-allow` covers this site.
    pub suppressed: Option<String>,
}

impl Diagnostic {
    /// Whether this diagnostic counts against `--deny`.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.suppressed.is_none()
    }
}

/// The outcome of analyzing a tree.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every diagnostic (active and suppressed), in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files lexed and checked.
    pub files_scanned: usize,
    /// Call-graph summaries of every scanned function (input to SCG008).
    pub summaries: Vec<FnSummary>,
}

impl Analysis {
    /// Diagnostics that count against `--deny`.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_active())
    }

    /// Active-violation count for one rule.
    #[must_use]
    pub fn count(&self, rule: RuleId) -> usize {
        self.active().filter(|d| d.rule == rule).count()
    }
}

/// A parsed `// scg-allow(SCG00x[, ...]): reason` comment.
#[derive(Debug)]
struct Suppression {
    rules: Vec<RuleId>,
    line: u32,
    col: u32,
    reason: String,
    used: bool,
}

/// Analyzes every library source under `root` (a workspace checkout).
///
/// # Errors
///
/// Returns an error string if `root` has no recognizable workspace layout
/// or a source file cannot be read — the analyzer refuses to "pass" on a
/// tree it could not actually see.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    analyze_workspace_cached(root, None)
}

/// [`analyze_workspace`] with an incremental cache: files whose content
/// hash matches the cache reuse their per-file results; the SCG008
/// reachability pass always runs fresh over all summaries. The refreshed
/// cache is written back to `cache_path` (best-effort — a read-only
/// filesystem costs speed, not correctness).
///
/// # Errors
///
/// Same contract as [`analyze_workspace`]; cache problems are never
/// errors.
pub fn analyze_workspace_cached(
    root: &Path,
    cache_path: Option<&Path>,
) -> Result<Analysis, String> {
    let files = discover(root)?;
    let mut old = cache_path.and_then(cache::load).unwrap_or_default();
    let mut fresh = Cache::default();
    let mut analysis = Analysis::default();
    for (path, info) in files {
        let src = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let hash = cache::fnv1a(src.as_bytes());
        let entry = match old.entries.remove(&info.rel_path) {
            Some(e) if e.hash == hash => e,
            _ => {
                let (diagnostics, summaries) = analyze_file(&src, &info);
                FileEntry {
                    hash,
                    diagnostics,
                    summaries,
                }
            }
        };
        analysis.files_scanned += 1;
        analysis
            .diagnostics
            .extend(entry.diagnostics.iter().cloned());
        analysis.summaries.extend(entry.summaries.iter().cloned());
        fresh.entries.insert(info.rel_path.clone(), entry);
    }
    finish(&mut analysis, &dep_map(root));
    if let Some(p) = cache_path {
        match cache::save(p, &fresh) {
            Ok(()) | Err(_) => {} // best-effort: a stale cache only costs speed
        }
    }
    Ok(analysis)
}

/// Analyzes a set of in-memory sources as one workspace — the unit the
/// SCG008 fixture tests drive. All files see each other through the call
/// graph with an empty dependency map (same-crate resolution only, plus
/// explicit `scg_*::` paths).
#[must_use]
pub fn analyze_sources(files: &[(FileInfo, &str)]) -> Analysis {
    let mut analysis = Analysis::default();
    for (info, src) in files {
        analyze_source(src, info, &mut analysis);
    }
    let deps = files
        .iter()
        .map(|(info, _)| (info.crate_name.clone(), BTreeSet::new()))
        .collect();
    finish(&mut analysis, &deps);
    analysis
}

/// Appends the workspace-level SCG008 diagnostics and sorts everything.
fn finish(analysis: &mut Analysis, deps: &BTreeMap<String, BTreeSet<String>>) {
    for f in callgraph::reachability(&analysis.summaries, deps, &callgraph::DEFAULT_ENTRIES) {
        analysis.diagnostics.push(Diagnostic {
            rule: RuleId::Scg008,
            file: f.file,
            line: f.line,
            col: f.col,
            message: f.message,
            suppressed: None,
        });
    }
    analysis
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

/// Analyzes one in-memory source file (the unit the per-file fixture
/// tests drive), appending diagnostics and call-graph summaries.
pub fn analyze_source(src: &str, info: &FileInfo, analysis: &mut Analysis) {
    let (diagnostics, summaries) = analyze_file(src, info);
    analysis.files_scanned += 1;
    analysis.diagnostics.extend(diagnostics);
    analysis.summaries.extend(summaries);
}

/// The per-file pass: lex, tree, rules, suppressions, summaries.
fn analyze_file(src: &str, info: &FileInfo) -> (Vec<Diagnostic>, Vec<FnSummary>) {
    let tokens = lex(src);
    let tree = syntax::build(src, &tokens);
    let mut suppressions = collect_suppressions(src, &tokens);
    let violations = check_file(src, &tokens, info, &tree);

    // SCG008 audit marks: justified allows feed the summary extraction,
    // which reports back the lines actually consumed by a panic site.
    let allow08: BTreeSet<u32> = suppressions
        .iter()
        .filter(|s| !s.reason.is_empty() && s.rules.contains(&RuleId::Scg008))
        .map(|s| s.line)
        .collect();
    let (summaries, used08) = callgraph::summarize_file(src, &tokens, &tree, info, &allow08);
    for s in &mut suppressions {
        if s.rules.contains(&RuleId::Scg008) && used08.contains(&s.line) {
            s.used = true;
        }
    }

    let mut diagnostics = Vec::new();
    for v in violations {
        let reason = suppressions
            .iter_mut()
            .find(|s| {
                !s.reason.is_empty()
                    && s.rules.contains(&v.rule)
                    && (s.line == v.line || s.line + 1 == v.line)
            })
            .map(|s| {
                s.used = true;
                s.reason.clone()
            });
        diagnostics.push(Diagnostic {
            rule: v.rule,
            file: info.rel_path.clone(),
            line: v.line,
            col: v.col,
            message: v.message,
            suppressed: reason,
        });
    }
    // Suppression hygiene (SCG000): missing reasons and dead suppressions
    // are both findings — stale allows are how invariants rot.
    for s in &suppressions {
        if tree.is_test_line(s.line) {
            continue;
        }
        if s.reason.is_empty() {
            diagnostics.push(Diagnostic {
                rule: RuleId::Scg000,
                file: info.rel_path.clone(),
                line: s.line,
                col: s.col,
                message: "scg-allow without a reason; write `// scg-allow(SCG00x): why`"
                    .to_string(),
                suppressed: None,
            });
        } else if !s.used {
            diagnostics.push(Diagnostic {
                rule: RuleId::Scg000,
                file: info.rel_path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "scg-allow({}) matches no finding on this or the next line; remove it",
                    s.rules
                        .iter()
                        .map(|r| r.code())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                suppressed: None,
            });
        }
    }
    diagnostics.sort_by_key(|d| (d.line, d.col, d.rule));
    (diagnostics, summaries)
}

/// Parses every crate's `Cargo.toml` for its `scg-*` workspace
/// dependencies (the call graph's inter-crate visibility).
fn dep_map(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut out = BTreeMap::new();
    if let Ok(rd) = fs::read_dir(root.join("crates")) {
        for entry in rd.flatten() {
            let dir = entry.path();
            let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            out.insert(name.to_string(), parse_deps(&dir.join("Cargo.toml")));
        }
    }
    out.insert(
        "supercayley".to_string(),
        parse_deps(&root.join("Cargo.toml")),
    );
    out
}

/// The `scg-<name>` lines of one manifest, as crate directory names.
fn parse_deps(path: &Path) -> BTreeSet<String> {
    fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .filter_map(|l| {
                    let rest = l.trim().strip_prefix("scg-")?;
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    (!name.is_empty()).then_some(name)
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Finds the library sources to lint: `(absolute path, file facts)` pairs.
fn discover(root: &Path) -> Result<Vec<(PathBuf, FileInfo)>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{}: not a workspace root (no crates/ directory)",
            root.display()
        ));
    }
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("{}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if name == "bench" {
            continue; // the bench harness is exempt by charter
        }
        collect_rs(&dir.join("src"), &name, root, &mut out)?;
    }
    // The root facade crate: src/ minus src/bin.
    collect_rs(&root.join("src"), "supercayley", root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (skipping any `bin/`
/// subtree) into `out`.
fn collect_rs(
    dir: &Path,
    crate_name: &str,
    root: &Path,
    out: &mut Vec<(PathBuf, FileInfo)>,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().and_then(|n| n.to_str()) == Some("bin") {
                continue; // binaries are operator tooling, not library code
            }
            collect_rs(&path, crate_name, root, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((
                path.clone(),
                FileInfo {
                    rel_path: rel,
                    crate_name: crate_name.to_string(),
                },
            ));
        }
    }
    Ok(())
}

/// Parses every `scg-allow` comment in the file.
fn collect_suppressions(src: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("scg-allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Suppression {
                rules: Vec::new(),
                line: t.line,
                col: t.col,
                reason: String::new(),
                used: false,
            });
            continue;
        };
        let rules: Vec<RuleId> = rest[..close]
            .split(',')
            .filter_map(RuleId::from_code)
            .collect();
        let tail = rest[close + 1..].trim_start();
        let reason = tail
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Suppression {
            rules,
            line: t.line,
            col: t.col,
            reason,
            used: false,
        });
    }
    out
}
