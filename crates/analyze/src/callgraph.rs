//! The workspace call graph and the SCG008 panic-reachability analysis.
//!
//! Per file, [`summarize_file`] reduces every non-test function with a
//! body to a [`FnSummary`]: its panic sites (the `SCG001` construct set
//! plus the `assert!` family, *excluding* `debug_assert*` which compiles
//! out of release builds) and its outgoing calls. Name resolution is
//! deliberately pragmatic — path segments plus per-file `use` maps, which
//! is sound for this zero-external-dep workspace:
//!
//! * `Type::method(..)` and `Self::method(..)` resolve against `impl`
//!   blocks (the latter through the enclosing impl from the syntax tree);
//! * `scg_perm::cast::sym_u8(..)`-style paths resolve through the crate
//!   prefix; bare `sym_u8(..)` resolves through the file's `use` map and
//!   falls back to same-crate free functions;
//! * `.method(..)` on a non-`self` receiver resolves by name against
//!   every workspace `impl` method visible from the calling crate —
//!   except names that shadow std-prelude methods (`push`, `len`,
//!   `lock`, ..), which resolve to std and are assumed total. Workspace
//!   methods behind such names are therefore only audited at `self.`
//!   and `Type::`-qualified call sites: a documented under-approximation
//!   that buys freedom from std false positives.
//!
//! Unresolved names are external (std) and assumed non-panicking; slice
//! indexing and arithmetic overflow are documented non-goals of the
//! token-level analysis. A panic site can be *audited away* with a
//! `// scg-allow(SCG008): reason` on its line (or the line above) — the
//! mark asserts a caller-checked invariant makes the panic unreachable,
//! and [`reachability`] then treats the function as total there.
//!
//! [`reachability`] runs BFS from each wire-decode/routing entry point
//! and reports every reachable unaudited panic with its full call chain.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::rules::FileInfo;
use crate::syntax::SyntaxTree;

/// The entry points SCG008 proves panic-free: `(crate, function)` pairs.
/// Every function with a matching name in the crate is an entry (both
/// `parse` free function and `JsonParser::parse` in `scg_obs::json`).
pub const DEFAULT_ENTRIES: [(&str, &str); 6] = [
    ("serve", "decode_request"),
    ("serve", "decode_reply"),
    ("serve", "peek_frame"),
    ("obs", "parse"),
    ("core", "route_into"),
    ("core", "route_packed"),
];

/// Method names that shadow std-prelude/collection methods; `.name(..)`
/// on a non-`self` receiver resolves to std (assumed total) for these.
const STD_METHODS: [&str; 64] = [
    "as_bytes",
    "as_mut",
    "as_mut_ptr",
    "as_ptr",
    "as_ref",
    "as_slice",
    "as_str",
    "bytes",
    "chars",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "copied",
    "copy_from_slice",
    "count",
    "drain",
    "ends_with",
    "enumerate",
    "extend",
    "extend_from_slice",
    "fill",
    "filter",
    "find",
    "first",
    "flush",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "next",
    "position",
    "pop",
    "push",
    "push_str",
    "read",
    "remove",
    "reserve",
    "resize",
    "rev",
    "skip",
    "sort",
    "split",
    "starts_with",
    "sum",
    "swap",
    "take",
    "to_string",
    "to_vec",
    "trim",
    "write",
    "zip",
];

/// Keywords and intrinsics a bare `ident (` is never a workspace call of.
const NON_CALLS: [&str; 16] = [
    "as", "box", "drop", "else", "fn", "for", "if", "in", "let", "loop", "match", "move", "mut",
    "ref", "return", "while",
];

/// One panicking construct inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What panics there, e.g. `unwrap()` or `assert!`.
    pub what: String,
    /// Whether a `// scg-allow(SCG008): reason` audits the site away.
    pub audited: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(..)` — a same-crate free function.
    Bare(String),
    /// `Type::method(..)` with no crate qualifier in scope.
    Typed(String, String),
    /// A crate-qualified call: `(crate, impl type if any, name)`.
    Cratewide(String, Option<String>, String),
    /// `.method(..)` on a non-`self` receiver.
    Method(String),
}

/// One outgoing call from a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee reference as written.
    pub callee: Callee,
}

/// The per-function unit of the call graph.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Crate directory name (`serve`, `perm`, ..).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Outgoing calls from the body.
    pub calls: Vec<CallSite>,
}

impl FnSummary {
    /// `Type::name` or plain `name`, for chain rendering.
    #[must_use]
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Where a `use`-imported name points.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ImportTarget {
    /// std / core / alloc — assumed total.
    External,
    /// A workspace crate (directory name), plus the penultimate path
    /// segment when it looks like a type.
    Crate(String, Option<String>),
    /// `crate::` / `self::` / `super::` — the current crate.
    Local(Option<String>),
}

/// A SCG008 finding: an unaudited panic reachable from an entry point.
#[derive(Debug, Clone)]
pub struct PanicFinding {
    /// File of the entry-point function.
    pub file: String,
    /// 1-based line of the entry-point name token.
    pub line: u32,
    /// 1-based column of the entry-point name token.
    pub col: u32,
    /// Full description including the call chain and the panic site.
    pub message: String,
}

/// Extracts the summaries of every non-test bodied function in one file.
///
/// `allow_lines` are the lines carrying a justified `scg-allow(SCG008)`
/// comment; the returned set is the subset actually consumed by a panic
/// site (the driver feeds this back into `SCG000` unused-suppression
/// accounting).
pub fn summarize_file(
    src: &str,
    tokens: &[Token],
    tree: &SyntaxTree,
    info: &FileInfo,
    allow_lines: &BTreeSet<u32>,
) -> (Vec<FnSummary>, BTreeSet<u32>) {
    let imports = import_map(src, tokens, tree);
    let mut used = BTreeSet::new();
    let mut out = Vec::new();
    for f in &tree.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        if f.is_test {
            continue;
        }
        let mut summary = FnSummary {
            krate: info.crate_name.clone(),
            file: info.rel_path.clone(),
            name: f.name.clone(),
            impl_type: f.impl_type.clone(),
            line: f.line,
            col: f.col,
            panics: Vec::new(),
            calls: Vec::new(),
        };
        scan_body(
            src,
            tokens,
            tree,
            (open, close),
            f.impl_type.as_deref(),
            &imports,
            allow_lines,
            &mut used,
            &mut summary,
        );
        out.push(summary);
    }
    (out, used)
}

/// Tokens helpers over the significant index space.
fn txt<'s>(src: &'s str, tokens: &[Token], sig: &[usize], i: usize) -> &'s str {
    sig.get(i).map_or("", |&ix| tokens[ix].text(src))
}

fn is_ident(tokens: &[Token], sig: &[usize], i: usize) -> bool {
    sig.get(i)
        .is_some_and(|&ix| tokens[ix].kind == TokenKind::Ident)
}

/// Walks one body range extracting panic sites and call sites.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    src: &str,
    tokens: &[Token],
    tree: &SyntaxTree,
    (open, close): (usize, usize),
    impl_type: Option<&str>,
    imports: &BTreeMap<String, ImportTarget>,
    allow_lines: &BTreeSet<u32>,
    used: &mut BTreeSet<u32>,
    out: &mut FnSummary,
) {
    let sig = &tree.sig;
    let mut i = open + 1;
    while i < close {
        if !is_ident(tokens, sig, i) {
            i += 1;
            continue;
        }
        let name = txt(src, tokens, sig, i);
        let tok = &tokens[sig[i]];
        let next_bang = txt(src, tokens, sig, i + 1) == "!";
        // `debug_assert*!` compiles out of release builds: skip the whole
        // macro group, calls inside it included.
        if name.starts_with("debug_assert") && next_bang {
            i = skip_group(src, tokens, sig, i + 2, close);
            continue;
        }
        let macro_panic = matches!(
            name,
            "panic"
                | "unreachable"
                | "todo"
                | "unimplemented"
                | "assert"
                | "assert_eq"
                | "assert_ne"
        ) && next_bang;
        let method_panic = matches!(name, "unwrap" | "expect")
            && txt(src, tokens, sig, i - 1) == "."
            && txt(src, tokens, sig, i + 1) == "(";
        if macro_panic || method_panic {
            let audited = allow_lines.contains(&tok.line)
                || (tok.line > 1 && allow_lines.contains(&(tok.line - 1)));
            if audited {
                if allow_lines.contains(&tok.line) {
                    used.insert(tok.line);
                } else {
                    used.insert(tok.line - 1);
                }
            }
            out.panics.push(PanicSite {
                line: tok.line,
                col: tok.col,
                what: if macro_panic {
                    format!("{name}!")
                } else {
                    format!("{name}()")
                },
                audited,
            });
            i += 1;
            continue;
        }
        // A call site: ident followed by `(` (macros handled above keep
        // their argument tokens in the scan).
        if txt(src, tokens, sig, i + 1) != "(" || next_bang {
            i += 1;
            continue;
        }
        if NON_CALLS.contains(&name) {
            i += 1;
            continue;
        }
        if let Some(callee) = classify_call(src, tokens, sig, i, impl_type, imports) {
            out.calls.push(CallSite { callee });
        }
        i += 1;
    }
}

/// Skips past the balanced `( .. )` / `[ .. ]` / `{ .. }` group starting
/// at significant index `i` (the opening delimiter).
fn skip_group(src: &str, tokens: &[Token], sig: &[usize], i: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < limit {
        match txt(src, tokens, sig, j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Classifies the call whose name token sits at significant index `i`.
fn classify_call(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    i: usize,
    impl_type: Option<&str>,
    imports: &BTreeMap<String, ImportTarget>,
) -> Option<Callee> {
    let name = txt(src, tokens, sig, i)
        .trim_start_matches("r#")
        .to_string();
    let prev = txt(src, tokens, sig, i.wrapping_sub(1));
    if prev == "." {
        // Method call. `self.method(..)` resolves through the enclosing
        // impl; anything else resolves by name unless std shadows it.
        let recv_is_self = txt(src, tokens, sig, i.wrapping_sub(2)) == "self"
            && txt(src, tokens, sig, i.wrapping_sub(3)) != ".";
        if recv_is_self {
            if let Some(t) = impl_type {
                return Some(Callee::Typed(t.to_string(), name));
            }
        }
        if STD_METHODS.contains(&name.as_str()) {
            return None;
        }
        return Some(Callee::Method(name));
    }
    if prev == ":" && txt(src, tokens, sig, i.wrapping_sub(2)) == ":" {
        // Path call: collect the segments walking backwards.
        let mut segs = vec![name.clone()];
        let mut j = i;
        while j >= 3
            && txt(src, tokens, sig, j - 1) == ":"
            && txt(src, tokens, sig, j - 2) == ":"
            && is_ident(tokens, sig, j - 3)
        {
            segs.push(
                txt(src, tokens, sig, j - 3)
                    .trim_start_matches("r#")
                    .to_string(),
            );
            j -= 3;
        }
        segs.reverse();
        return classify_path(&segs, impl_type, imports);
    }
    // Bare call. Uppercase initials are tuple-struct/variant constructors
    // (`Some`, `Ok`, `NetId`) — total by construction.
    if name.chars().next().is_some_and(char::is_uppercase) {
        return None;
    }
    match imports.get(&name) {
        Some(ImportTarget::External) => None,
        Some(ImportTarget::Crate(k, ty)) => Some(Callee::Cratewide(k.clone(), ty.clone(), name)),
        Some(ImportTarget::Local(Some(t))) => Some(Callee::Typed(t.clone(), name)),
        Some(ImportTarget::Local(None)) | None => Some(Callee::Bare(name)),
    }
}

/// Resolves a `::`-path call head against the import map.
fn classify_path(
    segs: &[String],
    impl_type: Option<&str>,
    imports: &BTreeMap<String, ImportTarget>,
) -> Option<Callee> {
    let name = segs.last()?.clone();
    let first = segs.first()?.as_str();
    let qualifier = (segs.len() >= 2).then(|| segs[segs.len() - 2].clone());
    let ty = qualifier
        .as_ref()
        .filter(|q| q.chars().next().is_some_and(char::is_uppercase) && q.as_str() != first)
        .cloned();
    match first {
        "std" | "core" | "alloc" => None,
        "Self" => Some(Callee::Typed(impl_type?.to_string(), name)),
        "crate" | "self" | "super" => match ty {
            Some(t) => Some(Callee::Typed(t, name)),
            None => Some(Callee::Bare(name)),
        },
        _ if first.starts_with("scg_") => Some(Callee::Cratewide(
            first.trim_start_matches("scg_").to_string(),
            ty,
            name,
        )),
        _ => match imports.get(first) {
            Some(ImportTarget::External) => None,
            Some(ImportTarget::Crate(k, _)) => {
                // `module::f(..)` where the module was imported from a
                // workspace crate, or `Type::m(..)` where the type was.
                let ty = is_type_name(first).then(|| first.to_string());
                Some(Callee::Cratewide(k.clone(), ty, name))
            }
            Some(ImportTarget::Local(_)) | None => {
                if is_type_name(first) && segs.len() == 2 {
                    Some(Callee::Typed(first.to_string(), name))
                } else {
                    Some(Callee::Bare(name))
                }
            }
        },
    }
}

fn is_type_name(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

/// Builds the per-file `use` map: leaf name → where it points.
fn import_map(src: &str, tokens: &[Token], tree: &SyntaxTree) -> BTreeMap<String, ImportTarget> {
    let sig = &tree.sig;
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < sig.len() {
        if txt(src, tokens, sig, i) == "use" && is_use_position(src, tokens, sig, i) {
            i = parse_use_tree(src, tokens, sig, i + 1, &mut Vec::new(), &mut out);
        } else {
            i += 1;
        }
    }
    out
}

/// `use` the keyword, not `use` inside a path or attr (`#[allow(unused_use)]`).
fn is_use_position(src: &str, tokens: &[Token], sig: &[usize], i: usize) -> bool {
    let prev = txt(src, tokens, sig, i.wrapping_sub(1));
    i == 0 || matches!(prev, ";" | "}" | "{" | "]")
}

/// Recursively parses one use-tree starting at `i`; returns the index
/// just past it.
fn parse_use_tree(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    mut i: usize,
    prefix: &mut Vec<String>,
    out: &mut BTreeMap<String, ImportTarget>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut last: Option<String> = None;
    loop {
        let t = txt(src, tokens, sig, i);
        match t {
            "" | ";" => {
                if let Some(leaf) = last.take() {
                    bind(prefix, &leaf, &leaf, out);
                }
                prefix.truncate(depth_at_entry);
                return i + 1;
            }
            ":" => i += 1,
            "," => {
                if let Some(leaf) = last.take() {
                    bind(prefix, &leaf, &leaf, out);
                }
                prefix.truncate(depth_at_entry);
                i += 1;
            }
            "{" => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                i += 1;
            }
            "}" => {
                if let Some(leaf) = last.take() {
                    bind(prefix, &leaf, &leaf, out);
                }
                prefix.truncate(depth_at_entry);
                i += 1;
            }
            "as" => {
                let alias = txt(src, tokens, sig, i + 1).to_string();
                if let Some(leaf) = last.take() {
                    bind(prefix, &leaf, &alias, out);
                }
                i += 2;
            }
            "*" => {
                last = None;
                i += 1;
            }
            _ => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                last = Some(t.trim_start_matches("r#").to_string());
                i += 1;
            }
        }
    }
}

/// Records one imported leaf under `alias`.
fn bind(prefix: &[String], leaf: &str, alias: &str, out: &mut BTreeMap<String, ImportTarget>) {
    let Some(first) = prefix.first().map(String::as_str).or(Some(leaf)) else {
        return;
    };
    let penultimate = if prefix.is_empty() {
        None
    } else {
        prefix.last().cloned()
    };
    let ty = penultimate.filter(|p| is_type_name(p));
    let target = match first {
        "std" | "core" | "alloc" => ImportTarget::External,
        "crate" | "self" | "super" => ImportTarget::Local(ty),
        _ if first.starts_with("scg_") => {
            ImportTarget::Crate(first.trim_start_matches("scg_").to_string(), ty)
        }
        _ => return, // unknown root (macro import, extern crate) — skip
    };
    out.insert(alias.to_string(), target);
}

/// Runs panic-reachability over the whole workspace's summaries.
///
/// `deps` maps each crate to its direct workspace dependencies; an edge
/// from crate `a` may only land in `a` itself or its transitive deps.
/// Entries that do not exist in `summaries` are skipped (fixtures
/// exercise subsets of the workspace).
#[must_use]
pub fn reachability(
    summaries: &[FnSummary],
    deps: &BTreeMap<String, BTreeSet<String>>,
    entries: &[(&str, &str)],
) -> Vec<PanicFinding> {
    // Transitive dependency closure per crate.
    let mut visible: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let crates: BTreeSet<&str> = summaries.iter().map(|s| s.krate.as_str()).collect();
    for &c in &crates {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![c];
        while let Some(k) = stack.pop() {
            if seen.insert(k) {
                if let Some(ds) = deps.get(k) {
                    stack.extend(ds.iter().map(String::as_str));
                }
            }
        }
        visible.insert(c, seen);
    }
    let empty = BTreeSet::new();
    let vis = |from: &str, to: &str| from == to || visible.get(from).unwrap_or(&empty).contains(to);

    // Name indexes.
    let mut free: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut any: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (id, s) in summaries.iter().enumerate() {
        any.entry((&s.krate, &s.name)).or_default().push(id);
        match &s.impl_type {
            None => free.entry((&s.krate, &s.name)).or_default().push(id),
            Some(t) => {
                typed
                    .entry((t.as_str(), s.name.as_str()))
                    .or_default()
                    .push(id);
                methods.entry(&s.name).or_default().push(id);
            }
        }
    }

    // Resolve edges.
    let resolve = |from: &FnSummary, call: &CallSite| -> Vec<usize> {
        let mut ids: Vec<usize> = match &call.callee {
            Callee::Bare(name) => free
                .get(&(from.krate.as_str(), name.as_str()))
                .cloned()
                .unwrap_or_default(),
            Callee::Typed(ty, name) => typed
                .get(&(ty.as_str(), name.as_str()))
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&id| vis(&from.krate, &summaries[id].krate))
                        .collect()
                })
                .unwrap_or_default(),
            Callee::Cratewide(k, ty, name) => match ty {
                Some(t) => typed
                    .get(&(t.as_str(), name.as_str()))
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&id| summaries[id].krate == *k)
                            .collect()
                    })
                    .unwrap_or_default(),
                None => {
                    let f = free.get(&(k.as_str(), name.as_str())).cloned();
                    f.unwrap_or_else(|| {
                        any.get(&(k.as_str(), name.as_str()))
                            .cloned()
                            .unwrap_or_default()
                    })
                }
            },
            Callee::Method(name) => methods
                .get(name.as_str())
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&id| vis(&from.krate, &summaries[id].krate))
                        .collect()
                })
                .unwrap_or_default(),
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let edges: Vec<Vec<usize>> = summaries
        .iter()
        .map(|s| {
            let mut out: Vec<usize> = s.calls.iter().flat_map(|c| resolve(s, c)).collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();

    // BFS from each entry, reporting every reachable unaudited panic.
    let mut findings = Vec::new();
    for &(ekrate, ename) in entries {
        let entry_ids: Vec<usize> = summaries
            .iter()
            .enumerate()
            .filter(|(_, s)| s.krate == ekrate && s.name == ename)
            .map(|(id, _)| id)
            .collect();
        for entry in entry_ids {
            let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
            let mut queue = std::collections::VecDeque::from([entry]);
            let mut seen = BTreeSet::from([entry]);
            while let Some(id) = queue.pop_front() {
                if let Some(site) = summaries[id].panics.iter().find(|p| !p.audited) {
                    let mut chain = vec![id];
                    let mut cur = id;
                    while let Some(&p) = parent.get(&cur) {
                        chain.push(p);
                        cur = p;
                    }
                    chain.reverse();
                    let path = chain
                        .iter()
                        .map(|&c| summaries[c].display())
                        .collect::<Vec<_>>()
                        .join(" → ");
                    let e = &summaries[entry];
                    findings.push(PanicFinding {
                        file: e.file.clone(),
                        line: e.line,
                        col: e.col,
                        message: format!(
                            "panic reachable from entry `{}`: {} — {} at {}:{}",
                            e.display(),
                            path,
                            site.what,
                            summaries[id].file,
                            site.line
                        ),
                    });
                }
                for &t in &edges[id] {
                    if seen.insert(t) {
                        parent.insert(t, id);
                        queue.push_back(t);
                    }
                }
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.message).cmp(&(&b.file, b.line, b.col, &b.message))
    });
    findings
}
