//! The `scg-analyze` binary: the workspace lint gate.
//!
//! ```text
//! scg-analyze [--root <dir>] [--deny] [--json <path>] [--cache <path>] [--verbose]
//! scg-analyze --list-rules
//! scg-analyze --validate <report.json>
//! ```
//!
//! Without `--deny` the analyzer reports and exits 0 (warn mode); with
//! `--deny` any unsuppressed violation (including suppression-hygiene
//! findings) exits nonzero — that is the CI contract.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::path::PathBuf;
use std::process::ExitCode;

use scg_analyze::driver::analyze_workspace_cached;
use scg_analyze::report::{render_rules, render_text, to_json, validate_report};

struct Args {
    root: PathBuf,
    deny: bool,
    json: Option<PathBuf>,
    cache: Option<PathBuf>,
    verbose: bool,
    list_rules: bool,
    validate: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: false,
        json: None,
        cache: None,
        verbose: false,
        list_rules: false,
        validate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--deny" => args.deny = true,
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--cache" => {
                args.cache = Some(PathBuf::from(it.next().ok_or("--cache needs a path")?));
            }
            "--verbose" => args.verbose = true,
            "--list-rules" => args.list_rules = true,
            "--validate" => {
                args.validate = Some(PathBuf::from(it.next().ok_or("--validate needs a path")?));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        print!("{}", render_rules());
        return Ok(true);
    }
    if let Some(path) = &args.validate {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        validate_report(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("{}: ok ({} bytes)", path.display(), text.len());
        return Ok(true);
    }
    let analysis = analyze_workspace_cached(&args.root, args.cache.as_deref())?;
    print!("{}", render_text(&analysis, args.verbose));
    if let Some(path) = &args.json {
        let text = to_json(&analysis).encode();
        // The artifact must survive its own parser before it is written —
        // the same self-validation `bench_routing` applies to its JSON.
        validate_report(&text).map_err(|e| format!("internal: emitted report invalid: {e}"))?;
        std::fs::write(path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("report written to {}", path.display());
    }
    let clean = analysis.active().next().is_none();
    if !clean && args.deny {
        eprintln!("scg-analyze: --deny: failing on unsuppressed violations");
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("scg-analyze: {msg}");
            ExitCode::FAILURE
        }
    }
}
