//! `scg-analyze`: the workspace's in-tree static-analysis pass.
//!
//! Four PRs in, the codebase has real invariants that generic tooling
//! cannot see: routing must go through the cached
//! [`materialize`](https://docs.rs/scg-core)/`RoutePlan` path instead of
//! rebuilding topology ad hoc; symbol arithmetic on `S_k` permutations
//! (the paper's alphabet is exactly `k = nl + 1` symbols, §2.1) must not
//! truncate through `as` casts; and the fault-tolerance story audited in
//! the fault-injection PR assumes library code returns `Result`s rather
//! than panicking. This crate turns those review-folklore rules into a
//! CI-enforced contract:
//!
//! * a hand-rolled, span-accurate Rust [`lexer`] (string/char/raw-string/
//!   byte-string/nested-comment/shebang aware — no `syn`, matching the
//!   workspace's vendored-everything policy);
//! * a [`syntax`] pass that brace-matches the token stream into an item
//!   tree — `mod`/`impl`/`fn` spans, `unsafe` blocks, `extern` blocks,
//!   and `#[cfg(test)]` regions — so rules and the driver share one
//!   structural view instead of per-rule line heuristics;
//! * the [`rules`] engine — `SCG001` (no panicking constructs), `SCG002`
//!   (no topology-cache bypass), `SCG003` (no lossy narrow-int `as` casts
//!   in `perm`/`core`/`graph`), `SCG004` (atomic orderings need `// ord:`
//!   justifications), `SCG005` (no `let _ =` discards or never-read `_`
//!   bindings), `SCG006` (`unsafe` blocks need adjacent `// SAFETY:`
//!   justifications), `SCG007` (extern "C" results must be checked),
//!   `SCG009` (no blocking calls under a live lock guard in the serve
//!   crate) — plus `SCG000` suppression hygiene;
//! * the [`callgraph`] pass — per-function panic/call summaries resolved
//!   through per-file `use` maps and the workspace dependency graph, then
//!   a reachability sweep (`SCG008`) proving the wire-decode and routing
//!   entry points cannot reach an unaudited panic;
//! * the [`driver`] that walks library sources, exempts test-gated code,
//!   and resolves justified `// scg-allow(SCG00x): reason` comments;
//! * an incremental [`cache`] (content-hash keyed) so the CI deny gate
//!   only re-analyzes files that actually changed;
//! * [`report`] rendering: rustc-style text plus a JSON artifact built on
//!   the shared [`scg_obs::json`] model and re-validated through the same
//!   parser that checks `results/BENCH_*.json`.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p scg-analyze -- --deny
//! ```
//!
//! # Examples
//!
//! ```
//! use scg_analyze::driver::{analyze_source, Analysis};
//! use scg_analyze::rules::{FileInfo, RuleId};
//!
//! let info = FileInfo {
//!     rel_path: "crates/perm/src/x.rs".to_string(),
//!     crate_name: "perm".to_string(),
//! };
//! let mut analysis = Analysis::default();
//! analyze_source("fn f(x: usize) -> u8 { x as u8 }", &info, &mut analysis);
//! assert_eq!(analysis.count(RuleId::Scg003), 1);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod callgraph;
pub mod driver;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;
