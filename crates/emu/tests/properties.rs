//! Randomized tests for the emulation crate: schedules stay valid and
//! bound-tight across shapes, the router is shortest-path, and the
//! simulator conserves packets. Driven by the vendored deterministic PRNG
//! (the workspace builds offline, so `proptest` is not available).

use scg_core::{materialize, ScgClass, SuperCayleyGraph, SMALL_NET_CAP};
use scg_emu::{AllPortSchedule, NextHop, Packet, PortModel, Router, SyncSim, TableRouter};
use scg_perm::XorShift64;

/// Shapes with k = nl + 1 <= 13 so scheduling stays fast.
const SHAPES: [(usize, usize); 7] = [(2, 2), (2, 3), (3, 2), (3, 3), (4, 2), (4, 3), (5, 2)];

#[test]
fn schedules_validate_and_meet_bounds() {
    for (l, n) in SHAPES {
        for class in [
            ScgClass::MacroStar,
            ScgClass::CompleteRotationStar,
            ScgClass::MacroIs,
            ScgClass::CompleteRotationIs,
        ] {
            let host = SuperCayleyGraph::new(class, l, n).unwrap();
            let s = AllPortSchedule::build(&host).unwrap();
            assert!(s.validate().is_ok());
            let bound = s.theoretical_bound().unwrap();
            if (l, n) == (2, 2) && matches!(class, ScgClass::MacroIs | ScgClass::CompleteRotationIs)
            {
                assert_eq!(s.makespan(), bound + 1); // the documented loose case
            } else {
                assert_eq!(s.makespan(), bound, "{class:?} ({l},{n})");
            }
            // Utilization is a proper fraction and hop counts are consistent.
            assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
            assert_eq!(s.link_loads().iter().sum::<u64>() as usize, s.total_hops());
        }
    }
}

#[test]
fn paper_form_agrees_with_general_scheduler() {
    for (l, n) in SHAPES {
        let host = SuperCayleyGraph::macro_star(l, n).unwrap();
        match AllPortSchedule::paper_form(&host) {
            Ok(paper) => {
                let ours = AllPortSchedule::build(&host).unwrap();
                assert_eq!(paper.makespan(), ours.makespan());
                assert!(paper.validate().is_ok());
            }
            Err(_) => {
                // Outside the covered family: must be l > n+1 with l ≢ 1 (mod n).
                assert!(l > n + 1 && (l - 1) % n != 0);
            }
        }
    }
}

#[test]
fn router_is_distance_decreasing() {
    let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
    let mat = materialize(&host, SMALL_NET_CAP).unwrap();
    let graph = mat.graph();
    let router = TableRouter::new(graph).unwrap();
    let mut rng = XorShift64::new(51);
    for _ in 0..120 {
        let at = rng.gen_range(120) as u32;
        let dst = rng.gen_range(120) as u32;
        let dist = graph.bfs_distances(dst); // undirected: dist to dst
        let p = Packet {
            src: at,
            dst,
            payload: 0,
        };
        match router.next_hop(at, &p) {
            NextHop::Deliver => assert_eq!(at, dst),
            NextHop::Forward(slot) => {
                let next = graph.out_neighbors(at)[slot];
                assert_eq!(dist[next as usize] + 1, dist[at as usize]);
            }
            NextHop::Unreachable => panic!("connected network reported unreachable"),
        }
    }
}

#[test]
fn simulator_conserves_packets() {
    let host = SuperCayleyGraph::insertion_selection(5).unwrap();
    let mat = materialize(&host, SMALL_NET_CAP).unwrap();
    let graph = mat.graph();
    let router = TableRouter::new(graph).unwrap();
    let mut rng = XorShift64::new(52);
    for _ in 0..8 {
        let pairs: Vec<(u32, u32)> = (0..1 + rng.gen_range(39))
            .map(|_| (rng.gen_range(120) as u32, rng.gen_range(120) as u32))
            .collect();
        let mut sim = SyncSim::new(graph, PortModel::SinglePort);
        let mut expected_delivered = 0u64;
        for &(src, dst) in &pairs {
            sim.inject(
                src,
                Packet {
                    src,
                    dst,
                    payload: 0,
                },
                &router,
            )
            .unwrap();
            expected_delivered += 1;
        }
        let stats = sim.run(&router, 1_000_000).unwrap();
        assert_eq!(stats.delivered, expected_delivered);
        assert_eq!(sim.in_flight(), 0);
        // Total transmissions equal the sum of shortest distances.
        let mut total = 0u64;
        for &(src, dst) in &pairs {
            total += u64::from(graph.bfs_distances(src)[dst as usize]);
        }
        assert_eq!(stats.transmissions, total);
    }
}
