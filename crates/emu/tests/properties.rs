//! Property-based tests for the emulation crate: schedules stay valid and
//! bound-tight across shapes, the router is shortest-path, and the
//! simulator conserves packets.

use proptest::prelude::*;
use scg_core::{ScgClass, SuperCayleyGraph};
use scg_emu::{AllPortSchedule, Packet, PortModel, Router, SyncSim, TableRouter};

/// Shapes with k = nl + 1 <= 13 so scheduling stays fast.
fn arb_shape() -> impl Strategy<Value = (usize, usize)> {
    (2usize..=5, 2usize..=3).prop_filter("k <= 13", |&(l, n)| l * n < 13)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn schedules_validate_and_meet_bounds((l, n) in arb_shape(), class_pick in 0u8..4) {
        let class = match class_pick {
            0 => ScgClass::MacroStar,
            1 => ScgClass::CompleteRotationStar,
            2 => ScgClass::MacroIs,
            _ => ScgClass::CompleteRotationIs,
        };
        let host = SuperCayleyGraph::new(class, l, n).unwrap();
        let s = AllPortSchedule::build(&host).unwrap();
        prop_assert!(s.validate().is_ok());
        let bound = s.theoretical_bound().unwrap();
        if (l, n) == (2, 2) && matches!(class, ScgClass::MacroIs | ScgClass::CompleteRotationIs) {
            prop_assert_eq!(s.makespan(), bound + 1); // the documented loose case
        } else {
            prop_assert_eq!(s.makespan(), bound);
        }
        // Utilization is a proper fraction and hop counts are consistent.
        prop_assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
        prop_assert_eq!(
            s.link_loads().iter().sum::<u64>() as usize,
            s.total_hops()
        );
    }

    #[test]
    fn paper_form_agrees_with_general_scheduler((l, n) in arb_shape()) {
        let host = SuperCayleyGraph::macro_star(l, n).unwrap();
        match AllPortSchedule::paper_form(&host) {
            Ok(paper) => {
                let ours = AllPortSchedule::build(&host).unwrap();
                prop_assert_eq!(paper.makespan(), ours.makespan());
                prop_assert!(paper.validate().is_ok());
            }
            Err(_) => {
                // Outside the covered family: must be l > n+1 with l ≢ 1 (mod n).
                prop_assert!(l > n + 1 && (l - 1) % n != 0);
            }
        }
    }

    #[test]
    fn router_is_distance_decreasing(seed in 0u32..120, dst in 0u32..120) {
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let graph = scg_core::CayleyNetwork::to_graph(&host, 1_000).unwrap();
        let router = TableRouter::new(&graph).unwrap();
        let dist = graph.bfs_distances(dst); // undirected: dist to dst
        let at = seed % 120;
        let p = Packet { src: at, dst, payload: 0 };
        match router.next_hop(at, &p) {
            None => prop_assert_eq!(at, dst),
            Some(slot) => {
                let next = graph.out_neighbors(at)[slot];
                prop_assert_eq!(dist[next as usize] + 1, dist[at as usize]);
            }
        }
    }

    #[test]
    fn simulator_conserves_packets(pairs in prop::collection::vec((0u32..120, 0u32..120), 1..40)) {
        let host = SuperCayleyGraph::insertion_selection(5).unwrap();
        let graph = scg_core::CayleyNetwork::to_graph(&host, 1_000).unwrap();
        let router = TableRouter::new(&graph).unwrap();
        let mut sim = SyncSim::new(&graph, PortModel::SinglePort);
        let mut expected_delivered = 0u64;
        for &(src, dst) in &pairs {
            sim.inject(src, Packet { src, dst, payload: 0 }, &router).unwrap();
            expected_delivered += 1;
        }
        let stats = sim.run(&router, 1_000_000).unwrap();
        prop_assert_eq!(stats.delivered, expected_delivered);
        prop_assert_eq!(sim.in_flight(), 0);
        // Total transmissions equal the sum of shortest distances.
        let mut total = 0u64;
        for &(src, dst) in &pairs {
            total += u64::from(graph.bfs_distances(src)[dst as usize]);
        }
        prop_assert_eq!(stats.transmissions, total);
    }
}
