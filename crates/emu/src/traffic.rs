//! Link-traffic uniformity statistics.
//!
//! The paper closes §1 and §6 with: *"The traffic on all the links of
//! suitably constructed super Cayley graphs is uniform within a constant
//! factor for all algorithms considered in this paper."* This module turns
//! per-link traffic counts (from embeddings, schedules, or simulations)
//! into the max/mean balance ratio that claim is about.

/// Summary of a per-link traffic distribution.
///
/// # Examples
///
/// ```
/// use scg_emu::TrafficSummary;
///
/// let s = TrafficSummary::from_counts([3, 4, 3, 4]);
/// assert_eq!(s.max, 4);
/// assert!((s.balance_ratio() - 4.0 / 3.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSummary {
    /// Number of links measured.
    pub links: usize,
    /// Busiest link's traffic.
    pub max: u64,
    /// Quietest link's traffic.
    pub min: u64,
    /// Mean traffic per link.
    pub mean: f64,
}

impl TrafficSummary {
    /// Summarizes an iterator of per-link counts.
    ///
    /// Returns an all-zero summary for an empty iterator.
    #[must_use]
    pub fn from_counts<I>(counts: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let mut links = 0usize;
        let mut max = 0u64;
        let mut min = u64::MAX;
        let mut total = 0u128;
        for c in counts {
            links += 1;
            max = max.max(c);
            min = min.min(c);
            total += u128::from(c);
        }
        if links == 0 {
            return TrafficSummary {
                links: 0,
                max: 0,
                min: 0,
                mean: 0.0,
            };
        }
        TrafficSummary {
            links,
            max,
            min,
            mean: total as f64 / links as f64,
        }
    }

    /// The balance ratio `max / mean` — 1.0 is perfectly uniform; the
    /// paper's claim is that this stays `O(1)`.
    #[must_use]
    pub fn balance_ratio(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

impl std::fmt::Display for TrafficSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} links, max {}, min {}, mean {:.2}, balance {:.2}",
            self.links,
            self.max,
            self.min,
            self.mean,
            self.balance_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_traffic_has_ratio_1() {
        let s = TrafficSummary::from_counts([5, 5, 5, 5]);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 5);
        assert!((s.balance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_traffic_detected() {
        let s = TrafficSummary::from_counts([0, 0, 0, 12]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.balance_ratio(), 4.0);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn empty_is_safe() {
        let s = TrafficSummary::from_counts(std::iter::empty());
        assert_eq!(s.links, 0);
        assert_eq!(s.balance_ratio(), 1.0);
    }
}
