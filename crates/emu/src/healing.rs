//! The self-healing emulator loop: a [`SyncSim`] run that rides out a
//! [`FaultSchedule`] while traffic flows.
//!
//! Every cycle, [`run_chaos`] applies the schedule events that are due,
//! refreshes the [`TableRouter`] in place whenever the fault-set epoch
//! moved past the table ([`TableRouter::is_stale`] →
//! [`TableRouter::refresh_with_faults`]), injects fresh random traffic,
//! and steps the simulator — packets caught on dead links retry with the
//! simulator's bounded exponential backoff. Alongside the usual
//! [`SimStats`] it measures what the static fault audits cannot:
//!
//! * **MTTR** — for every degrading event, the cycles until the network is
//!   *healthy* again (router rebuilt against the current epoch and no
//!   packet stranded on a dead slot);
//! * **degradation curves** — windowed delivered-per-terminated ratios
//!   (×1000 fixed point), showing the dip and recovery around each event.
//!
//! Runs are deterministic: the same graph, schedule, and config replay to
//! byte-identical reports (pinned by `tests/faults.rs`).

use scg_graph::{DenseGraph, FaultSchedule, NodeId};
use scg_perm::XorShift64;

use crate::error::EmuError;
use crate::sim::{Packet, PortModel, SimStats, SyncSim, TableRouter};

/// Configuration of a [`run_chaos`] self-healing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Port model for the underlying [`SyncSim`].
    pub model: PortModel,
    /// Fresh random packets injected per cycle while injection is open.
    pub inject_per_cycle: usize,
    /// Injection stops after this cycle (the run then drains). 0 means
    /// "one cycle past the schedule horizon".
    pub inject_until: u64,
    /// Hard cycle cap; the run reports (not errors) if traffic is still
    /// queued when it hits.
    pub max_cycles: u64,
    /// Exponential backoff `(base, cap)` in cycles for packets with no
    /// live route; `(0, 0)` disables backoff.
    pub backoff: (u32, u32),
    /// Per-packet fault-retry budget.
    pub retry_limit: u32,
    /// Degradation-curve sample window in cycles.
    pub window: u64,
    /// Traffic seed (source/destination draws).
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            model: PortModel::AllPort,
            inject_per_cycle: 2,
            inject_until: 0,
            max_cycles: 4096,
            backoff: (1, 32),
            retry_limit: 8,
            window: 16,
            seed: 0x5C9_CA05,
        }
    }
}

/// Recovery record for one degrading schedule event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecovery {
    /// Cycle the event fired.
    pub at: u64,
    /// Event label (see `ChaosEvent::kind`).
    pub kind: &'static str,
    /// First cycle at which the network was healthy again; `None` if it
    /// never recovered within the run.
    pub healthy_at: Option<u64>,
}

impl EventRecovery {
    /// Mean-time-to-recovery in cycles (`healthy_at − at`), if recovered.
    #[must_use]
    pub fn mttr(&self) -> Option<u64> {
        self.healthy_at.map(|h| h.saturating_sub(self.at))
    }
}

/// One degradation-curve sample: the delivered share of packets that
/// terminated inside a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurveSample {
    /// Last cycle of the window.
    pub cycle: u64,
    /// Packets delivered in the window.
    pub delivered: u64,
    /// Packets dropped in the window.
    pub dropped: u64,
}

impl CurveSample {
    /// Delivered / terminated in ×1000 fixed point (1000 for an idle
    /// window — no terminations means no observed degradation).
    #[must_use]
    pub fn delivered_x1000(&self) -> u64 {
        (self.delivered * 1000)
            .checked_div(self.delivered + self.dropped)
            .unwrap_or(1000)
    }
}

/// Report of a completed [`run_chaos`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Final simulator statistics (`steps` = total cycles).
    pub stats: SimStats,
    /// Packets injected.
    pub injected: u64,
    /// Injection attempts rejected because the destination was
    /// unreachable at the time (not counted against delivery).
    pub rejected: u64,
    /// In-place router refreshes performed.
    pub refreshes: u64,
    /// Schedule events applied.
    pub events_applied: u64,
    /// Per-degrading-event recovery records, in firing order.
    pub recoveries: Vec<EventRecovery>,
    /// Windowed delivered-ratio samples.
    pub curve: Vec<CurveSample>,
    /// Whether all traffic terminated before `max_cycles`.
    pub drained: bool,
}

impl ChaosReport {
    /// The worst MTTR over all recovered events; `None` if no degrading
    /// event fired or some event never recovered.
    #[must_use]
    pub fn mttr_max(&self) -> Option<u64> {
        if self.recoveries.is_empty() || self.recoveries.iter().any(|r| r.healthy_at.is_none()) {
            return None;
        }
        self.recoveries.iter().filter_map(EventRecovery::mttr).max()
    }

    /// The lowest windowed delivered ratio (×1000) observed — the depth of
    /// the degradation dip.
    #[must_use]
    pub fn curve_min_x1000(&self) -> u64 {
        self.curve
            .iter()
            .map(CurveSample::delivered_x1000)
            .min()
            .unwrap_or(1000)
    }
}

/// Runs the self-healing loop: replay `schedule` against live traffic on
/// `graph`, refreshing the routing table whenever the fault epoch moves,
/// until traffic drains (or `max_cycles`). The schedule cursor is
/// consumed; pass a fresh or [`FaultSchedule::reset`] schedule.
///
/// # Errors
///
/// * [`EmuError::SimOutOfRange`] — a schedule event names a node or link
///   outside `graph`, or the graph degree exceeds the table router's cap.
pub fn run_chaos(
    graph: &DenseGraph,
    schedule: &mut FaultSchedule,
    config: &ChaosConfig,
) -> Result<ChaosReport, EmuError> {
    let mut router = TableRouter::new(graph)?;
    let mut sim = SyncSim::new(graph, config.model)
        .with_retry_limit(config.retry_limit)
        .with_backoff(config.backoff.0, config.backoff.1);
    let mut rng = XorShift64::new(config.seed);
    let inject_until = if config.inject_until == 0 {
        schedule.horizon() + 1
    } else {
        config.inject_until
    };
    let n = graph.num_nodes();
    let mut report = ChaosReport {
        stats: sim.stats(),
        injected: 0,
        rejected: 0,
        refreshes: 0,
        events_applied: 0,
        recoveries: Vec::new(),
        curve: Vec::new(),
        drained: false,
    };
    // Indices into `report.recoveries` still waiting for a healthy cycle.
    let mut open: Vec<usize> = Vec::new();
    let mut window_base = (0u64, 0u64); // (delivered, dropped) at window start
    loop {
        let now = sim.now();
        if now >= config.max_cycles {
            break;
        }
        let done_injecting = now >= inject_until;
        if done_injecting && sim.in_flight() == 0 && schedule.is_exhausted() {
            report.drained = true;
            break;
        }
        // 1. Chaos events due this cycle.
        for te in schedule.drain_due(now).to_vec() {
            sim.apply_event(te.event)?;
            report.events_applied += 1;
            if te.event.is_fault() {
                open.push(report.recoveries.len());
                report.recoveries.push(EventRecovery {
                    at: now,
                    kind: te.event.kind(),
                    healthy_at: None,
                });
            }
        }
        // 2. Self-healing: rebuild the table in place when stale.
        if router.is_stale(sim.faults()) {
            router.refresh_with_faults(graph, sim.faults())?;
            report.refreshes += 1;
        }
        // 3. Fresh traffic between random live endpoints.
        if !done_injecting {
            for _ in 0..config.inject_per_cycle {
                let src = rng.gen_range(n) as NodeId;
                let dst = rng.gen_range(n) as NodeId;
                if sim.faults().node_failed(src) {
                    report.rejected += 1;
                    continue;
                }
                let packet = Packet {
                    src,
                    dst,
                    payload: report.injected,
                };
                match sim.inject(src, packet, &router) {
                    Ok(()) => report.injected += 1,
                    Err(EmuError::Unreachable { .. }) => report.rejected += 1,
                    Err(e) => return Err(e),
                }
            }
        }
        // 4. One synchronous step.
        sim.step(&router)?;
        // 5. Health check: table current and no packet stranded on a dead
        // slot. MTTR for every open event closes at the first healthy
        // cycle.
        if !open.is_empty() && !router.is_stale(sim.faults()) && !sim.any_dead_queued() {
            for idx in open.drain(..) {
                report.recoveries[idx].healthy_at = Some(sim.now());
                #[cfg(feature = "obs")]
                crate::obs_hooks::recovered_after(
                    sim.now().saturating_sub(report.recoveries[idx].at),
                );
            }
        }
        // 6. Degradation curve sampling.
        if sim.now().is_multiple_of(config.window.max(1)) {
            let s = sim.stats();
            report.curve.push(CurveSample {
                cycle: sim.now(),
                delivered: s.delivered - window_base.0,
                dropped: s.dropped - window_base.1,
            });
            window_base = (s.delivered, s.dropped);
        }
    }
    report.stats = sim.stats();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Router;
    use scg_graph::FaultSet;

    fn ring(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| {
            vec![(u + 1) % n as NodeId, (u + n as NodeId - 1) % n as NodeId]
        })
    }

    #[test]
    fn fault_then_repair_recovers_with_finite_mttr() {
        let g = ring(12);
        let mut schedule = FaultSchedule::fault_then_repair(5, 8, 40);
        let report = run_chaos(&g, &mut schedule, &ChaosConfig::default()).unwrap();
        assert!(report.drained, "traffic drained");
        assert_eq!(report.events_applied, 2);
        assert_eq!(report.recoveries.len(), 1, "one degrading event");
        let mttr = report.mttr_max().expect("recovered");
        assert!(mttr >= 1, "healing is not instantaneous");
        assert!(report.refreshes >= 2, "fault and repair each refresh");
        // Everything injected either delivered or (a few, caught mid-frame
        // on the dying node) dropped; the overall ratio stays high.
        let s = &report.stats;
        assert_eq!(s.delivered + s.dropped, report.injected);
        assert!(s.delivered_ratio() > 0.9, "ratio {}", s.delivered_ratio());
    }

    #[test]
    fn chaos_runs_replay_deterministically() {
        let g = ring(10);
        let spec = scg_graph::ChaosSpec {
            horizon: 60,
            permanent_node_faults: 1,
            transient_node_faults: 1,
            link_flaps: 1,
            ..scg_graph::ChaosSpec::default()
        };
        let config = ChaosConfig::default();
        let mut s1 = FaultSchedule::random(&g, &spec, 99);
        let mut s2 = FaultSchedule::random(&g, &spec, 99);
        let a = run_chaos(&g, &mut s1, &config).unwrap();
        let b = run_chaos(&g, &mut s2, &config).unwrap();
        assert_eq!(a, b, "same seed, same report");
    }

    #[test]
    fn backoff_parks_packets_until_repair() {
        // Cut both links of node 1's only route to 2... use a line-like
        // scenario on a ring: isolate the destination by cutting both its
        // cables, then splice them back. With backoff the packet waits out
        // the outage instead of dropping.
        let g = ring(6);
        let mut events = Vec::new();
        for (u, v) in [(1u32, 2u32), (2, 3)] {
            events.push(scg_graph::TimedEvent {
                at: 1,
                event: scg_graph::ChaosEvent::FailLinkUndirected(u, v),
            });
            events.push(scg_graph::TimedEvent {
                at: 12,
                event: scg_graph::ChaosEvent::RepairLinkUndirected(u, v),
            });
        }
        let mut schedule = FaultSchedule::from_events(events);
        let config = ChaosConfig {
            inject_per_cycle: 0,
            inject_until: 1,
            backoff: (1, 8),
            retry_limit: 32,
            ..ChaosConfig::default()
        };
        // Inject one packet headed for the soon-to-be-isolated node 2
        // before the cut, then let the loop handle the outage.
        let mut router = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, config.model)
            .with_retry_limit(config.retry_limit)
            .with_backoff(config.backoff.0, config.backoff.1);
        sim.inject(
            0,
            Packet {
                src: 0,
                dst: 2,
                payload: 0,
            },
            &router,
        )
        .unwrap();
        while sim.in_flight() > 0 && sim.now() < 100 {
            sim.apply_chaos(&mut schedule).unwrap();
            if router.is_stale(sim.faults()) {
                router.refresh_with_faults(&g, sim.faults()).unwrap();
            }
            sim.step(&router).unwrap();
        }
        let s = sim.stats();
        assert_eq!(s.delivered, 1, "packet survived the outage");
        assert_eq!(s.dropped, 0);
        assert_eq!(s.recovered, 1, "counted as a repaired delivery");
        assert!(s.retried >= 1);
    }

    #[test]
    fn router_refresh_matches_fresh_build() {
        let g = ring(9);
        let mut faults = FaultSet::new();
        faults.fail_node(4);
        faults.fail_link_undirected(7, 8);
        let mut refreshed = TableRouter::new(&g).unwrap();
        refreshed.refresh_with_faults(&g, &faults).unwrap();
        let fresh = TableRouter::new_with_faults(&g, &faults).unwrap();
        let p = |dst| Packet {
            src: 0,
            dst,
            payload: 0,
        };
        for u in 0..9u32 {
            for dst in 0..9u32 {
                assert_eq!(
                    refreshed.next_hop(u, &p(dst)),
                    fresh.next_hop(u, &p(dst)),
                    "{u} → {dst}"
                );
            }
        }
        assert_eq!(refreshed.built_epoch(), faults.epoch());
        assert!(!refreshed.is_stale(&faults));
        faults.fail_node(2);
        assert!(refreshed.is_stale(&faults));
    }
}
