//! `obs`-feature hooks: simulator metrics.
//!
//! Compiled only with the `obs` cargo feature. Handles for the unlabeled
//! simulator families are cached in `OnceLock` statics so the per-packet
//! hot paths pay one atomic increment, not a registry lookup. Hooks are
//! record-only: [`SimStats`](crate::SimStats) is computed from the
//! simulator's own fields, never from these metrics, which is what the
//! with/without-obs equality test in `tests/observability.rs` pins down.

use std::sync::{Arc, OnceLock};

use scg_obs::{Counter, EventTrace, Gauge, Histogram, Registry};

/// Per-packet hop (latency) buckets: powers of two to 512.
const HOPS_BOUNDS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Run-length buckets in steps.
const STEPS_BOUNDS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 512, 2048];

macro_rules! static_counter {
    ($name:ident, $metric:literal) => {
        fn $name() -> &'static Arc<Counter> {
            static H: OnceLock<Arc<Counter>> = OnceLock::new();
            H.get_or_init(|| Registry::global().counter($metric, &[]))
        }
    };
}

macro_rules! static_gauge {
    ($name:ident, $metric:literal) => {
        fn $name() -> &'static Arc<Gauge> {
            static H: OnceLock<Arc<Gauge>> = OnceLock::new();
            H.get_or_init(|| Registry::global().gauge($metric, &[]))
        }
    };
}

static_counter!(injected_total, "scg_sim_injected_total");
static_counter!(delivered_total, "scg_sim_delivered_total");
static_counter!(dropped_total, "scg_sim_dropped_total");
static_counter!(retried_total, "scg_sim_retried_total");
static_counter!(unreachable_total, "scg_sim_unreachable_total");
static_counter!(steps_total, "scg_sim_steps_total");
static_counter!(runs_total, "scg_sim_runs_total");
static_counter!(livelocks_total, "scg_sim_livelocks_total");
static_gauge!(in_flight_gauge, "scg_sim_in_flight");
static_gauge!(step_moved_gauge, "scg_sim_step_moved");
static_gauge!(step_delivered_gauge, "scg_sim_step_delivered");
static_gauge!(queue_depth_peak, "scg_sim_queue_depth_peak");

fn packet_hops() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| Registry::global().histogram("scg_sim_packet_hops", &[], &HOPS_BOUNDS))
}

fn run_steps() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| Registry::global().histogram("scg_sim_run_steps", &[], &STEPS_BOUNDS))
}

/// Recovery-time (MTTR) buckets in cycles.
const RECOVERY_BOUNDS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 1024];

fn recovery_cycles() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| Registry::global().histogram("scg_sim_recovery_cycles", &[], &RECOVERY_BOUNDS))
}

/// One chaos-schedule event was applied to a live simulator. Feeds the
/// same `scg_chaos_events_total` family the graph-level replay uses (the
/// registry keys metrics by name, so both layers accumulate into one
/// family).
pub(crate) fn chaos_event(kind: &'static str) {
    EventTrace::global().record("sim.chaos.event", &[]);
    Registry::global()
        .counter("scg_chaos_events_total", &[("kind", kind)])
        .inc();
}

/// The self-healing loop measured one fault-to-healthy recovery.
pub(crate) fn recovered_after(cycles: u64) {
    recovery_cycles().observe(cycles);
}

/// A packet entered the network.
pub(crate) fn injected() {
    injected_total().inc();
}

/// A packet reached its destination after `hops` link traversals.
pub(crate) fn delivered(hops: u64) {
    delivered_total().inc();
    packet_hops().observe(hops);
}

/// `n` packets were dropped (TTL, retry budget, dead node, or no route).
pub(crate) fn dropped(n: u64) {
    dropped_total().add(n);
}

/// One fault-time router re-consultation.
pub(crate) fn retried() {
    retried_total().inc();
}

/// An injection was rejected as unreachable.
pub(crate) fn unreachable() {
    unreachable_total().inc();
}

/// Per-cycle readings after one synchronous step.
pub(crate) fn step(moved: u64, delivered_delta: u64, in_flight: u64, queue_peak: i64) {
    steps_total().inc();
    step_moved_gauge().set(i64::try_from(moved).unwrap_or(i64::MAX));
    step_delivered_gauge().set(i64::try_from(delivered_delta).unwrap_or(i64::MAX));
    in_flight_gauge().set(i64::try_from(in_flight).unwrap_or(i64::MAX));
    queue_depth_peak().record_max(queue_peak);
}

/// One [`SyncSim::run`](crate::SyncSim::run) completed.
pub(crate) fn run_done(steps: u64, livelocked: bool, undelivered: u64) {
    runs_total().inc();
    run_steps().observe(steps);
    if livelocked {
        livelocks_total().inc();
    }
    EventTrace::global().record(
        "sim.run.end",
        &[
            ("steps", i64::try_from(steps).unwrap_or(i64::MAX)),
            (
                "undelivered",
                i64::try_from(undelivered).unwrap_or(i64::MAX),
            ),
            ("livelocked", i64::from(livelocked)),
        ],
    );
}
