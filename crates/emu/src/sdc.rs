//! Single-dimension communication (SDC) emulation measurements
//! (Theorems 1–3).
//!
//! Under the SDC model all nodes use links of one dimension at a time, so
//! emulating one star dimension costs exactly the length of its expansion
//! path (every node performs the same hop sequence, conflict-free by
//! construction). The slowdown of an SDC star algorithm on a super Cayley
//! host is therefore the worst expansion length — 3 for `MS`/`Complete-RS`
//! (Theorem 1), 2 for `IS` (Theorem 2), 4 for `MIS`/`Complete-RIS`
//! (Theorem 3) — and the *mean* expansion length is what a long
//! dimension-sweep algorithm actually pays.

use scg_core::{route_plan, CayleyNetwork, Generator, SuperCayleyGraph};

use crate::error::EmuError;

/// Measured SDC emulation cost of a host.
#[derive(Debug, Clone, PartialEq)]
pub struct SdcReport {
    /// Host name.
    pub host: String,
    /// Emulated star degree `k`.
    pub k: usize,
    /// Worst expansion length over all dimensions (= the theorem's
    /// slowdown factor and the star-embedding dilation).
    pub worst_slowdown: usize,
    /// Mean expansion length over dimensions `2..=k`.
    pub mean_slowdown: f64,
    /// Expansion length per dimension `j = 2..=k`.
    pub per_dimension: Vec<usize>,
}

/// Pipelined SDC emulation cost (§3's wormhole / many-packet claim).
///
/// When every node streams `m` packets along one emulated star dimension,
/// the expansion path's links are shared: by vertex symmetry a link used by
/// `c` hops of the path serves `c` interleaved packet streams, so the
/// steady-state cost is one packet per `c` steps and the completion time is
/// `≈ m·c + O(L)`. For MS/Complete-RS the worst multiplicity is 2 (the
/// bring/return link), so the *amortized* slowdown tends to 2 — exactly the
/// paper's "approximately equal to 2 … if each node has many packets to be
/// sent along a certain dimension". The exact `steps` figure is computed
/// by an earliest-start FIFO schedule of the `m` packets over the shared
/// links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedCost {
    /// Expansion path length `L` (the one-packet latency).
    pub path_len: usize,
    /// Largest number of path hops sharing one link (the steady-state
    /// per-packet cost).
    pub bottleneck: usize,
    /// Number of packets per node.
    pub packets: u64,
    /// Total completion time under the earliest-start FIFO schedule
    /// (between `m·bottleneck` and `m·bottleneck + L`).
    pub steps: u64,
}

impl PipelinedCost {
    /// Amortized per-packet slowdown, `steps / packets`.
    #[must_use]
    pub fn amortized_slowdown(&self) -> f64 {
        self.steps as f64 / self.packets as f64
    }
}

/// Computes the pipelined cost of streaming `packets` packets per node
/// along emulated star dimension `j` on `host`.
///
/// # Errors
///
/// Returns [`EmuError::Core`] if `j` is out of range for the host.
pub fn pipelined_dimension_cost(
    host: &SuperCayleyGraph,
    j: usize,
    packets: u64,
) -> Result<PipelinedCost, EmuError> {
    let plan = route_plan(host)?;
    let path = plan.star_link(j)?;
    let mut mult = std::collections::HashMap::new();
    for g in path {
        *mult.entry(*g).or_insert(0usize) += 1;
    }
    let bottleneck = mult.values().copied().max().unwrap_or(0);
    let packets = packets.max(1);
    // Earliest-start FIFO schedule: hop h of packet p starts once hop h−1
    // of p is done and the hop's link is free; links are shared across hops
    // (the symmetric-stream view of the physical network).
    let mut link_free: std::collections::HashMap<Generator, u64> = std::collections::HashMap::new();
    let mut prev_hop_done = vec![0u64; packets as usize];
    let mut steps = 0u64;
    for &link in path {
        for hop_done in &mut prev_hop_done {
            let free = link_free.get(&link).copied().unwrap_or(0);
            let done = free.max(*hop_done) + 1;
            link_free.insert(link, done);
            *hop_done = done;
            steps = steps.max(done);
        }
    }
    Ok(PipelinedCost {
        path_len: path.len(),
        bottleneck,
        packets,
        steps,
    })
}

impl SdcReport {
    /// Measures the host.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Core`] for hosts with no emulation theorem
    /// (insertion-only nucleus).
    pub fn measure(host: &SuperCayleyGraph) -> Result<Self, EmuError> {
        let plan = route_plan(host)?;
        let k = host.degree_k();
        let per_dimension: Vec<usize> = (2..=k)
            .map(|j| plan.star_link(j).map(|p| p.len()))
            .collect::<Result<_, _>>()?;
        let worst = per_dimension.iter().copied().max().unwrap_or(0);
        let mean = per_dimension.iter().sum::<usize>() as f64 / per_dimension.len() as f64;
        Ok(SdcReport {
            host: host.name(),
            k,
            worst_slowdown: worst,
            mean_slowdown: mean,
            per_dimension,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_slowdown_3() {
        for host in [
            SuperCayleyGraph::macro_star(4, 3).unwrap(),
            SuperCayleyGraph::complete_rotation_star(4, 3).unwrap(),
        ] {
            let r = SdcReport::measure(&host).unwrap();
            assert_eq!(r.worst_slowdown, 3);
            assert!(r.mean_slowdown <= 3.0);
        }
    }

    #[test]
    fn theorem_2_slowdown_2() {
        let r = SdcReport::measure(&SuperCayleyGraph::insertion_selection(8).unwrap()).unwrap();
        assert_eq!(r.worst_slowdown, 2);
    }

    #[test]
    fn theorem_3_slowdown_4() {
        let r = SdcReport::measure(&SuperCayleyGraph::macro_is(4, 3).unwrap()).unwrap();
        assert_eq!(r.worst_slowdown, 4);
        let r2 =
            SdcReport::measure(&SuperCayleyGraph::complete_rotation_is(4, 3).unwrap()).unwrap();
        assert_eq!(r2.worst_slowdown, 4);
    }

    #[test]
    fn rotation_star_slowdown_grows_with_l() {
        // RS pays ~2·min(j1, l−j1)+1; for l = 6 the worst is 7.
        let r = SdcReport::measure(&SuperCayleyGraph::rotation_star(6, 2).unwrap()).unwrap();
        assert_eq!(r.worst_slowdown, 2 * 3 + 1);
    }

    #[test]
    fn pipelined_slowdown_tends_to_2_on_macro_star() {
        // §3: "the slowdown factor for an MS … network to emulate a
        // star-graph algorithm under the SDC model is approximately equal
        // to 2 if … each node has many packets to be sent along a certain
        // dimension."
        let host = SuperCayleyGraph::macro_star(4, 3).unwrap();
        let c = pipelined_dimension_cost(&host, 13, 1).unwrap();
        assert_eq!(c.steps, 3); // single packet pays the full latency
        let c1000 = pipelined_dimension_cost(&host, 13, 1000).unwrap();
        assert_eq!(c1000.bottleneck, 2); // the S_{j1+1} bring/return link
        assert!((c1000.amortized_slowdown() - 2.0).abs() < 0.01);
        // Direct dimensions pipeline at slowdown 1.
        let direct = pipelined_dimension_cost(&host, 2, 1000).unwrap();
        assert!((direct.amortized_slowdown() - 1.0).abs() < 0.01);
    }

    #[test]
    fn pipelined_cost_bounds_and_monotonicity() {
        // steps is sandwiched between the bottleneck volume m·c and the
        // volume plus one latency, and is monotone in m.
        let host = SuperCayleyGraph::macro_star(3, 2).unwrap();
        for j in 2..=7 {
            let mut prev = 0u64;
            for m in [1u64, 2, 5, 17, 100] {
                let c = pipelined_dimension_cost(&host, j, m).unwrap();
                assert!(c.steps >= m * c.bottleneck as u64, "dim {j} m {m}");
                assert!(
                    c.steps <= m * c.bottleneck as u64 + c.path_len as u64,
                    "dim {j} m {m}"
                );
                assert!(c.steps >= prev);
                prev = c.steps;
            }
        }
    }

    #[test]
    fn per_dimension_lengths_are_consistent() {
        let host = SuperCayleyGraph::macro_star(3, 2).unwrap();
        let r = SdcReport::measure(&host).unwrap();
        assert_eq!(r.per_dimension.len(), host.degree_k() - 1);
        // Dimensions 2..=n+1 are direct (length 1).
        assert_eq!(r.per_dimension[0], 1);
        assert_eq!(r.per_dimension[1], 1);
        assert_eq!(r.per_dimension[2], 3);
    }
}
