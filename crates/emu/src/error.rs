use std::error::Error;
use std::fmt;

use scg_core::CoreError;

/// Error produced by emulation scheduling and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The host cannot emulate star links (insertion-only nucleus) or the
    /// parameters are invalid.
    Core(CoreError),
    /// The scheduler could not find a conflict-free schedule within the
    /// makespan limit and search budget.
    ScheduleNotFound {
        /// The largest makespan attempted.
        makespan_limit: usize,
    },
    /// A schedule failed validation (used by the self-check API).
    InvalidSchedule {
        /// Explanation of the violated invariant.
        reason: String,
    },
    /// The simulator was driven with an out-of-range node or link.
    SimOutOfRange {
        /// Explanation.
        reason: &'static str,
    },
    /// The router reports no route from `node` to `dst` (e.g. the
    /// destination sits in a different survivor component).
    Unreachable {
        /// The node where routing was attempted.
        node: scg_graph::NodeId,
        /// The unreachable destination.
        dst: scg_graph::NodeId,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Core(e) => write!(f, "network error: {e}"),
            EmuError::ScheduleNotFound { makespan_limit } => {
                write!(
                    f,
                    "no conflict-free schedule within makespan {makespan_limit}"
                )
            }
            EmuError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            EmuError::SimOutOfRange { reason } => write!(f, "simulator misuse: {reason}"),
            EmuError::Unreachable { node, dst } => {
                write!(f, "no route from node {node} to destination {dst}")
            }
        }
    }
}

impl Error for EmuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmuError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EmuError {
    fn from(e: CoreError) -> Self {
        EmuError::Core(e)
    }
}
