//! A synchronous, link-level, store-and-forward network simulator with
//! fail-stop fault injection.
//!
//! Time advances in unit steps; every directed link transmits at most one
//! packet per step. Under the **all-port** model a node feeds all its
//! outgoing links simultaneously; under the **single-port** model it feeds
//! one per step (round-robin over non-empty queues). This is the machinery
//! the MNB/TE experiments (Corollaries 2–3) run on.
//!
//! Faults can be injected *and repaired* mid-run ([`SyncSim::fail_node`],
//! [`SyncSim::repair_node`], link variants, or a whole seeded
//! [`FaultSchedule`] via [`SyncSim::apply_chaos`]) without resetting the
//! statistics. Packets queued on a dead link are *retried* — the router
//! is re-consulted with the dead slots masked, up to
//! [`SyncSim::with_retry_limit`] times per packet. With
//! [`SyncSim::with_backoff`] a packet that finds no live route parks
//! under bounded exponential backoff instead of dropping immediately, so
//! it can outlive a transient fault; deliveries that survived at least
//! one fault-time retry are kept separate in [`SimStats::recovered`].
//! Exhausted budgets still count as drops, so degradation shows up in
//! [`SimStats`] (`dropped`, `retried`, [`SimStats::delivered_ratio`])
//! instead of as a hang. The [`TableRouter`] carries the fault-set epoch
//! it was built against ([`TableRouter::is_stale`]) and can be rebuilt in
//! place, reusing its allocations, with
//! [`TableRouter::refresh_with_faults`].

use std::collections::VecDeque;

use scg_graph::{ChaosEvent, DenseGraph, FaultSchedule, FaultSet, NodeId, UNREACHABLE};

use crate::error::EmuError;

/// Port model: how many links a node may drive per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortModel {
    /// All incident links simultaneously.
    AllPort,
    /// One outgoing link per step.
    SinglePort,
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Caller-defined tag (e.g. a broadcast id).
    pub payload: u64,
}

/// A routing decision for a packet at a node.
///
/// This replaces the old convention where a single `Option::None` (and,
/// inside [`TableRouter`], a single `u8::MAX` sentinel) meant both "at the
/// destination" and "no route exists" — the two outcomes now travel as
/// distinct variants, so unreachable packets surface as
/// [`EmuError::Unreachable`] or counted drops rather than phantom
/// deliveries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextHop {
    /// The packet is at its destination.
    Deliver,
    /// Forward through the given local out-slot.
    Forward(usize),
    /// The router knows no route to the destination.
    Unreachable,
}

/// Chooses the outgoing link for a packet at a node.
pub trait Router {
    /// The routing decision for `packet` at node `at`. `Forward(slot)`
    /// indexes into `graph.out_neighbors(at)`.
    fn next_hop(&self, at: NodeId, packet: &Packet) -> NextHop;

    /// Fault-time re-consultation: `dead(slot)` reports slots that are
    /// currently unusable. The default deflects to the first live slot when
    /// the preferred one is dead (bounded by the simulator's retry limit
    /// and TTL), and reports [`NextHop::Unreachable`] when every slot is
    /// dead. Routers with better knowledge (e.g. alternative shortest
    /// slots) may override.
    fn reroute(
        &self,
        at: NodeId,
        packet: &Packet,
        degree: usize,
        dead: &dyn Fn(usize) -> bool,
    ) -> NextHop {
        match self.next_hop(at, packet) {
            NextHop::Forward(slot) if dead(slot) => (0..degree)
                .find(|&alt| !dead(alt))
                .map_or(NextHop::Unreachable, NextHop::Forward),
            hop => hop,
        }
    }
}

/// One entry of the [`TableRouter`] next-hop table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TableSlot {
    /// Out-slot toward the destination.
    Toward(u8),
    /// This node *is* the destination.
    Destination,
    /// No (surviving) route to the destination.
    Unreachable,
}

/// Reusable build buffers for [`TableRouter::refresh_with_faults`]: the
/// surviving reverse CSR, per-destination BFS state, and the tie-break
/// candidate list. Kept inside the router so repeated refreshes during a
/// chaos run allocate nothing after the first build.
#[derive(Debug, Clone, Default)]
struct RefreshScratch {
    rev_offsets: Vec<u32>,
    rev_ids: Vec<NodeId>,
    cursor: Vec<u32>,
    dist: Vec<u32>,
    queue: VecDeque<NodeId>,
    candidates: Vec<usize>,
}

/// Shortest-path table router: for every destination, a BFS-built next-hop
/// slot per node. Ties are broken by a deterministic hash of
/// `(node, destination)` so traffic spreads over equally short links.
///
/// The table operates purely on materialized node ids — the
/// label-level routing upstream of it (`scg_route`, `route_batch`) is
/// where the bit-packed permutation kernel lives; by the time packets
/// reach the simulator, labels have already been ranked to ids, so a
/// refresh is BFS over the survivor graph, not permutation arithmetic.
///
/// [`TableRouter::new_with_faults`] builds the table over the survivor
/// graph, so routes avoid a known fault set entirely; the router remembers
/// the [`FaultSet::epoch`] it was built at, so consumers can detect
/// staleness with [`TableRouter::is_stale`] and rebuild in place — reusing
/// every allocation — with [`TableRouter::refresh_with_faults`].
#[derive(Debug, Clone)]
pub struct TableRouter {
    degree_cap: usize,
    /// `slots[dst * n + u]` = decision at `u` for destination `dst`.
    slots: Vec<TableSlot>,
    n: usize,
    /// The fault-set epoch the table was last built against.
    built_epoch: u64,
    scratch: RefreshScratch,
}

impl TableRouter {
    /// Builds the full `N × N` next-hop table (`O(N·E)` time, `N²`
    /// entries) over the fault-free graph.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if some out-degree exceeds 254
    /// (slots are stored in a `u8`).
    pub fn new(graph: &DenseGraph) -> Result<Self, EmuError> {
        Self::new_with_faults(graph, &FaultSet::new())
    }

    /// Builds the next-hop table over the survivor graph of `faults`:
    /// failed nodes and blocked links never appear in a route, and
    /// destinations cut off by the faults are marked unreachable.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if some out-degree exceeds 256.
    pub fn new_with_faults(graph: &DenseGraph, faults: &FaultSet) -> Result<Self, EmuError> {
        let mut slots = Vec::new();
        let mut scratch = RefreshScratch::default();
        let degree_cap = Self::build_into(graph, faults, &mut slots, &mut scratch)?;
        Ok(TableRouter {
            degree_cap,
            slots,
            n: graph.num_nodes(),
            built_epoch: faults.epoch(),
            scratch,
        })
    }

    /// Rebuilds the table in place against a new fault set, reusing the
    /// slot array and all internal build buffers (zero allocations once
    /// they reached their high-water size). This is the self-healing
    /// path: call it whenever [`TableRouter::is_stale`] reports the fault
    /// set moved past the table.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if some out-degree exceeds 256.
    pub fn refresh_with_faults(
        &mut self,
        graph: &DenseGraph,
        faults: &FaultSet,
    ) -> Result<(), EmuError> {
        self.degree_cap = Self::build_into(graph, faults, &mut self.slots, &mut self.scratch)?;
        self.n = graph.num_nodes();
        self.built_epoch = faults.epoch();
        Ok(())
    }

    /// The BFS table build shared by construction and refresh: fills
    /// `slots` (resized to `n²`) and returns the degree cap.
    fn build_into(
        graph: &DenseGraph,
        faults: &FaultSet,
        slots: &mut Vec<TableSlot>,
        scratch: &mut RefreshScratch,
    ) -> Result<usize, EmuError> {
        let n = graph.num_nodes();
        let degree_cap = (0..n)
            .map(|u| graph.out_degree(u as NodeId))
            .max()
            .unwrap_or(0);
        // `TableSlot::Toward` stores the out-slot as a `u8`. With the old
        // `u8::MAX`-sentinel encoding retired by `NextHop`, all 256 slot
        // values are valid, so only degrees beyond 256 are rejected.
        if degree_cap > usize::from(u8::MAX) + 1 {
            return Err(EmuError::SimOutOfRange {
                reason: "out-degree too large for u8 slot table",
            });
        }
        // Surviving reverse adjacency for BFS *toward* each destination,
        // in CSR form (offsets + one flat id array): two buffers total
        // instead of one list per node, and each node's predecessors are
        // contiguous for the BFS scans below. The two-pass count-then-fill
        // keeps predecessors in `edges()` order, exactly as the
        // per-node-Vec build produced them.
        let RefreshScratch {
            rev_offsets,
            rev_ids,
            cursor,
            dist,
            queue,
            candidates,
        } = scratch;
        rev_offsets.clear();
        rev_offsets.resize(n + 1, 0);
        for (u, v) in graph.edges() {
            if !faults.blocks(u, v) {
                rev_offsets[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        rev_ids.clear();
        rev_ids.resize(rev_offsets[n] as usize, 0);
        cursor.clear();
        cursor.extend_from_slice(&rev_offsets[..n]);
        for (u, v) in graph.edges() {
            if !faults.blocks(u, v) {
                let c = &mut cursor[v as usize];
                rev_ids[*c as usize] = u;
                *c += 1;
            }
        }
        let rev = |v: usize| &rev_ids[rev_offsets[v] as usize..rev_offsets[v + 1] as usize];
        slots.clear();
        slots.resize(n * n, TableSlot::Unreachable);
        dist.clear();
        dist.resize(n, UNREACHABLE);
        for dst in 0..n {
            if faults.node_failed(dst as NodeId) {
                continue; // whole column stays Unreachable
            }
            dist.iter_mut().for_each(|d| *d = UNREACHABLE);
            dist[dst] = 0;
            queue.push_back(dst as NodeId);
            while let Some(v) = queue.pop_front() {
                for &u in rev(v as usize) {
                    if dist[u as usize] == UNREACHABLE {
                        dist[u as usize] = dist[v as usize] + 1;
                        queue.push_back(u);
                    }
                }
            }
            slots[dst * n + dst] = TableSlot::Destination;
            for u in 0..n {
                if u == dst || dist[u] == UNREACHABLE {
                    continue;
                }
                let outs = graph.out_neighbors(u as NodeId);
                candidates.clear();
                candidates.extend(
                    outs.iter()
                        .enumerate()
                        .filter(|&(_, &v)| {
                            !faults.blocks(u as NodeId, v)
                                && dist[v as usize] != UNREACHABLE
                                && dist[v as usize] + 1 == dist[u]
                        })
                        .map(|(slot, _)| slot),
                );
                debug_assert!(!candidates.is_empty());
                let pick = (u
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(dst.wrapping_mul(0x85EB_CA6B)))
                    % candidates.len();
                slots[dst * n + u] = TableSlot::Toward(candidates[pick] as u8);
            }
        }
        Ok(degree_cap)
    }

    /// The largest out-degree seen when building the table.
    #[must_use]
    pub fn degree_cap(&self) -> usize {
        self.degree_cap
    }

    /// The [`FaultSet::epoch`] the table was last built against.
    #[must_use]
    pub fn built_epoch(&self) -> u64 {
        self.built_epoch
    }

    /// Whether `faults` has moved past the epoch this table was built at —
    /// the staleness signal driving the self-healing refresh.
    #[must_use]
    pub fn is_stale(&self, faults: &FaultSet) -> bool {
        faults.epoch() != self.built_epoch
    }
}

impl Router for TableRouter {
    fn next_hop(&self, at: NodeId, packet: &Packet) -> NextHop {
        match self.slots[packet.dst as usize * self.n + at as usize] {
            TableSlot::Toward(s) => NextHop::Forward(s as usize),
            TableSlot::Destination => NextHop::Deliver,
            TableSlot::Unreachable => NextHop::Unreachable,
        }
    }
}

/// Statistics of a completed simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Steps until the run settled (all packets delivered or dropped, or a
    /// live-lock was detected).
    pub steps: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Total link transmissions (packet-hops).
    pub transmissions: u64,
    /// Most transmissions carried by any single directed link.
    pub max_link_traffic: u64,
    /// Packets dropped: retry budget exhausted, TTL expired, node died
    /// under them, or no surviving route existed.
    pub dropped: u64,
    /// Fault-time router re-consultations (a packet may be retried several
    /// times).
    pub retried: u64,
    /// Delivered packets that survived at least one fault-time retry —
    /// traffic that hit a fault and was healed, kept separate so
    /// [`SimStats::delivered_ratio`] under churn can be decomposed into
    /// clean and repaired deliveries.
    pub recovered: u64,
    /// Packets still queued when the run bailed out on a live-lock.
    pub undelivered: u64,
    /// Whether the run ended because no packet made progress for a full
    /// round rather than because traffic drained.
    pub livelocked: bool,
}

impl SimStats {
    /// Fraction of terminated packets that were delivered:
    /// `delivered / (delivered + dropped + undelivered)` (1.0 for an empty
    /// run). The observable degradation curve of a faulty network.
    #[must_use]
    pub fn delivered_ratio(&self) -> f64 {
        let total = self.delivered + self.dropped + self.undelivered;
        if total == 0 {
            1.0
        } else {
            self.delivered as f64 / total as f64
        }
    }
}

/// A queued packet plus its fault-handling state.
#[derive(Debug, Clone, Copy)]
struct Flight {
    packet: Packet,
    /// Remaining hops before the packet is dropped.
    ttl: u32,
    /// Fault retries consumed so far.
    retries: u32,
    /// Earliest cycle the next fault-time retry may fire (exponential
    /// backoff); 0 means no backoff pending.
    not_before: u64,
}

/// The synchronous store-and-forward simulator.
#[derive(Debug, Clone)]
pub struct SyncSim<'a> {
    graph: &'a DenseGraph,
    model: PortModel,
    /// FIFO per directed link (CSR edge index).
    queues: Vec<VecDeque<Flight>>,
    /// Round-robin pointer per node (single-port fairness).
    rr: Vec<usize>,
    link_traffic: Vec<u64>,
    faults: FaultSet,
    ttl_limit: u32,
    retry_limit: u32,
    /// Backoff base delay in cycles; 0 disables backoff (a packet with no
    /// live alternative drops immediately, the pre-chaos behavior).
    backoff_base: u32,
    /// Backoff delay ceiling in cycles.
    backoff_cap: u32,
    /// Current cycle (cumulative across `step`/`run` calls).
    now: u64,
    delivered: u64,
    transmissions: u64,
    dropped: u64,
    retried: u64,
    recovered: u64,
    /// Flights currently parked in backoff (recomputed every step).
    waiting: u64,
    in_flight: u64,
}

impl<'a> SyncSim<'a> {
    /// Creates an empty simulator over `graph` with no faults, unlimited
    /// TTL, and a retry limit equal to the largest out-degree.
    #[must_use]
    pub fn new(graph: &'a DenseGraph, model: PortModel) -> Self {
        let retry_limit = (0..graph.num_nodes())
            .map(|u| graph.out_degree(u as NodeId))
            .max()
            .unwrap_or(0) as u32;
        SyncSim {
            graph,
            model,
            queues: vec![VecDeque::new(); graph.num_edges()],
            rr: vec![0; graph.num_nodes()],
            link_traffic: vec![0; graph.num_edges()],
            faults: FaultSet::new(),
            ttl_limit: u32::MAX,
            retry_limit,
            backoff_base: 0,
            backoff_cap: 0,
            now: 0,
            delivered: 0,
            transmissions: 0,
            dropped: 0,
            retried: 0,
            recovered: 0,
            waiting: 0,
            in_flight: 0,
        }
    }

    /// Sets the per-packet TTL: a packet is dropped once it has traversed
    /// `ttl` links without reaching its destination. `u32::MAX` (the
    /// default) disables the limit.
    #[must_use]
    pub fn with_ttl(mut self, ttl: u32) -> Self {
        self.ttl_limit = ttl;
        self
    }

    /// Sets how many times a packet stuck on a dead link may re-consult
    /// the router before it is dropped.
    #[must_use]
    pub fn with_retry_limit(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Enables bounded exponential backoff for packets with no live route:
    /// instead of dropping immediately, a retried packet with every
    /// candidate slot dead waits `min(base << (retries − 1), cap)` cycles
    /// before the next router re-consultation — riding out transient
    /// faults until a repair (or a refreshed table) restores a route. The
    /// retry limit still bounds the total number of re-consultations, so
    /// permanent unreachability still terminates as a drop. `base = 0`
    /// restores the immediate-drop policy.
    #[must_use]
    pub fn with_backoff(mut self, base: u32, cap: u32) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap.max(base);
        self
    }

    /// The current cycle (cumulative across `step` and `run` calls).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The faults injected so far.
    #[must_use]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// A snapshot of the statistics so far, usable mid-run (`steps` is the
    /// cumulative cycle count, `undelivered` the packets still queued).
    #[must_use]
    pub fn stats(&self) -> SimStats {
        SimStats {
            steps: self.now,
            delivered: self.delivered,
            transmissions: self.transmissions,
            max_link_traffic: self.link_traffic.iter().copied().max().unwrap_or(0),
            dropped: self.dropped,
            retried: self.retried,
            recovered: self.recovered,
            undelivered: self.in_flight,
            livelocked: false,
        }
    }

    /// Whether any packet is queued on a currently-dead slot — the
    /// "traffic still stranded" half of the self-healing health check.
    #[must_use]
    pub fn any_dead_queued(&self) -> bool {
        if self.faults.is_empty() {
            return false;
        }
        (0..self.graph.num_nodes() as NodeId).any(|u| {
            let base = self.edge_base(u);
            (0..self.graph.out_degree(u))
                .any(|slot| !self.queues[base + slot].is_empty() && self.slot_dead(u, slot))
        })
    }

    /// Fails node `u` (fail-stop): the node stops forwarding, every link
    /// touching it goes dead, and all packets currently queued at the node
    /// are lost. Returns the number of packets lost.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if `u` is out of range.
    pub fn fail_node(&mut self, u: NodeId) -> Result<u64, EmuError> {
        if u as usize >= self.graph.num_nodes() {
            return Err(EmuError::SimOutOfRange {
                reason: "failed node out of range",
            });
        }
        self.faults.fail_node(u);
        let mut lost = 0u64;
        for e in self.graph.edge_range(u) {
            lost += self.queues[e].len() as u64;
            self.queues[e].clear();
        }
        self.dropped += lost;
        self.in_flight -= lost;
        #[cfg(feature = "obs")]
        crate::obs_hooks::dropped(lost);
        Ok(lost)
    }

    /// Fails the directed link `u → v`. Packets already queued on it stay
    /// put and are retried (and eventually dropped) on subsequent steps.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if `u → v` is not a link of the
    /// graph.
    pub fn fail_link(&mut self, u: NodeId, v: NodeId) -> Result<(), EmuError> {
        if (u as usize) >= self.graph.num_nodes() || self.graph.edge_index(u, v).is_none() {
            return Err(EmuError::SimOutOfRange {
                reason: "failed link does not exist",
            });
        }
        self.faults.fail_link(u, v);
        Ok(())
    }

    /// Repairs node `u`: it resumes forwarding and its links come back up
    /// (unless individually failed). Packets lost while it was down stay
    /// counted as drops — statistics are never rewritten. Returns whether
    /// the node was actually down. Usable mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if `u` is out of range.
    pub fn repair_node(&mut self, u: NodeId) -> Result<bool, EmuError> {
        if u as usize >= self.graph.num_nodes() {
            return Err(EmuError::SimOutOfRange {
                reason: "repaired node out of range",
            });
        }
        Ok(self.faults.repair_node(u))
    }

    /// Repairs the directed link `u → v`; queued packets on it resume
    /// transmitting on the next step. Usable mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if `u → v` is not a link of the
    /// graph.
    pub fn repair_link(&mut self, u: NodeId, v: NodeId) -> Result<bool, EmuError> {
        if (u as usize) >= self.graph.num_nodes() || self.graph.edge_index(u, v).is_none() {
            return Err(EmuError::SimOutOfRange {
                reason: "repaired link does not exist",
            });
        }
        Ok(self.faults.repair_link(u, v))
    }

    /// Fails the cable `u ↔ v` (both directions).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if neither direction is a link
    /// of the graph.
    pub fn fail_link_undirected(&mut self, u: NodeId, v: NodeId) -> Result<(), EmuError> {
        self.check_cable(u, v)?;
        self.faults.fail_link_undirected(u, v);
        Ok(())
    }

    /// Repairs the cable `u ↔ v` (both directions).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if neither direction is a link
    /// of the graph.
    pub fn repair_link_undirected(&mut self, u: NodeId, v: NodeId) -> Result<(), EmuError> {
        self.check_cable(u, v)?;
        self.faults.repair_link_undirected(u, v);
        Ok(())
    }

    fn check_cable(&self, u: NodeId, v: NodeId) -> Result<(), EmuError> {
        let n = self.graph.num_nodes();
        let exists = (u as usize) < n
            && (v as usize) < n
            && (self.graph.edge_index(u, v).is_some() || self.graph.edge_index(v, u).is_some());
        if exists {
            Ok(())
        } else {
            Err(EmuError::SimOutOfRange {
                reason: "cable does not exist",
            })
        }
    }

    /// Applies every [`FaultSchedule`] event due at the current cycle to
    /// the live simulator (node deaths drop their queued packets, repairs
    /// restore liveness) and returns how many events fired. Each applied
    /// event bumps `scg_chaos_events_total{kind=…}` under the `obs`
    /// feature.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if an event names a node or
    /// link outside the graph.
    pub fn apply_chaos(&mut self, schedule: &mut FaultSchedule) -> Result<usize, EmuError> {
        let mut fired = 0;
        for te in schedule.drain_due(self.now).to_vec() {
            self.apply_event(te.event)?;
            fired += 1;
        }
        Ok(fired)
    }

    /// Applies one chaos event to the live simulator, bumping
    /// `scg_chaos_events_total{kind=…}` under the `obs` feature.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if the event names a node or
    /// link outside the graph.
    pub fn apply_event(&mut self, event: ChaosEvent) -> Result<(), EmuError> {
        #[cfg(feature = "obs")]
        crate::obs_hooks::chaos_event(event.kind());
        match event {
            ChaosEvent::FailNode(u) => {
                self.fail_node(u)?;
            }
            ChaosEvent::RepairNode(u) => {
                self.repair_node(u)?;
            }
            ChaosEvent::FailLink(u, v) => self.fail_link(u, v)?,
            ChaosEvent::RepairLink(u, v) => {
                self.repair_link(u, v)?;
            }
            ChaosEvent::FailLinkUndirected(u, v) => self.fail_link_undirected(u, v)?,
            ChaosEvent::RepairLinkUndirected(u, v) => self.repair_link_undirected(u, v)?,
        }
        Ok(())
    }

    /// Injects a packet at `at`, routing it immediately (a packet already at
    /// its destination is counted delivered without any transmission).
    ///
    /// # Errors
    ///
    /// * [`EmuError::SimOutOfRange`] — `at` or the destination is out of
    ///   range, `at` is a failed node, or the router's slot is invalid;
    /// * [`EmuError::Unreachable`] — the router reports no route from `at`
    ///   to the destination.
    pub fn inject(
        &mut self,
        at: NodeId,
        packet: Packet,
        router: &impl Router,
    ) -> Result<(), EmuError> {
        let n = self.graph.num_nodes();
        if at as usize >= n || packet.dst as usize >= n {
            return Err(EmuError::SimOutOfRange {
                reason: "inject node out of range",
            });
        }
        if self.faults.node_failed(at) {
            return Err(EmuError::SimOutOfRange {
                reason: "inject at failed node",
            });
        }
        match router.next_hop(at, &packet) {
            NextHop::Deliver => {
                self.delivered += 1;
                #[cfg(feature = "obs")]
                crate::obs_hooks::delivered(0);
            }
            NextHop::Forward(slot) => {
                if slot >= self.graph.out_degree(at) {
                    return Err(EmuError::SimOutOfRange {
                        reason: "router slot out of range",
                    });
                }
                let base = self.edge_base(at);
                self.queues[base + slot].push_back(Flight {
                    packet,
                    ttl: self.ttl_limit,
                    retries: 0,
                    not_before: 0,
                });
                self.in_flight += 1;
                #[cfg(feature = "obs")]
                crate::obs_hooks::injected();
            }
            NextHop::Unreachable => {
                #[cfg(feature = "obs")]
                crate::obs_hooks::unreachable();
                return Err(EmuError::Unreachable {
                    node: at,
                    dst: packet.dst,
                });
            }
        }
        Ok(())
    }

    fn edge_base(&self, u: NodeId) -> usize {
        self.graph.edge_range(u).start
    }

    /// Packets currently queued.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Whether the local out-slot `slot` of node `u` is currently dead.
    fn slot_dead(&self, u: NodeId, slot: usize) -> bool {
        let v = self.graph.out_neighbors(u)[slot];
        self.faults.blocks(u, v)
    }

    /// Retry phase: drain every queue sitting on a dead link, re-consult
    /// the router with the dead slots masked, and relocate, park (backoff),
    /// or drop each packet.
    fn retry_dead_queues(&mut self, router: &impl Router) -> Result<(), EmuError> {
        self.waiting = 0;
        if self.faults.is_empty() {
            return Ok(());
        }
        for u in 0..self.graph.num_nodes() as NodeId {
            if self.faults.node_failed(u) {
                continue; // its queues were already dropped by fail_node
            }
            let deg = self.graph.out_degree(u);
            let base = self.edge_base(u);
            for slot in 0..deg {
                if !self.slot_dead(u, slot) {
                    continue;
                }
                // Take the backlog so parked flights can be pushed back
                // onto the same (dead) queue without being re-examined.
                let mut backlog = std::mem::take(&mut self.queues[base + slot]);
                while let Some(mut flight) = backlog.pop_front() {
                    if flight.not_before > self.now {
                        self.waiting += 1;
                        self.queues[base + slot].push_back(flight);
                        continue;
                    }
                    self.in_flight -= 1;
                    if flight.retries >= self.retry_limit {
                        self.dropped += 1;
                        #[cfg(feature = "obs")]
                        crate::obs_hooks::dropped(1);
                        continue;
                    }
                    flight.retries += 1;
                    self.retried += 1;
                    #[cfg(feature = "obs")]
                    crate::obs_hooks::retried();
                    let hop = {
                        let faults = &self.faults;
                        let graph = self.graph;
                        let dead = move |s: usize| faults.blocks(u, graph.out_neighbors(u)[s]);
                        router.reroute(u, &flight.packet, deg, &dead)
                    };
                    match hop {
                        NextHop::Deliver => {
                            self.delivered += 1;
                            self.recovered += 1;
                            #[cfg(feature = "obs")]
                            crate::obs_hooks::delivered(u64::from(self.ttl_limit - flight.ttl));
                        }
                        NextHop::Forward(s) if s < deg && !self.slot_dead(u, s) => {
                            self.queues[base + s].push_back(flight);
                            self.in_flight += 1;
                        }
                        NextHop::Forward(s) if s >= deg => {
                            return Err(EmuError::SimOutOfRange {
                                reason: "router slot out of range",
                            });
                        }
                        // Rerouted onto another dead slot or unreachable:
                        // the packet has nowhere live to go. With backoff
                        // enabled it parks and waits for a repair (the
                        // retry limit still bounds total attempts);
                        // without, it drops immediately.
                        NextHop::Forward(_) | NextHop::Unreachable => {
                            if self.backoff_base > 0 {
                                let exp = flight.retries.saturating_sub(1).min(20);
                                let delay = (u64::from(self.backoff_base) << exp)
                                    .clamp(1, u64::from(self.backoff_cap).max(1));
                                flight.not_before = self.now + delay;
                                self.waiting += 1;
                                self.queues[base + slot].push_back(flight);
                                self.in_flight += 1;
                            } else {
                                self.dropped += 1;
                                #[cfg(feature = "obs")]
                                crate::obs_hooks::dropped(1);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Pops the next transmittable flight of queue `base + slot`, dropping
    /// TTL-exhausted heads (they do not consume link capacity).
    fn pop_transmittable(&mut self, base: usize, slot: usize) -> Option<Flight> {
        while let Some(flight) = self.queues[base + slot].pop_front() {
            self.in_flight -= 1;
            if flight.ttl == 0 {
                self.dropped += 1;
                #[cfg(feature = "obs")]
                crate::obs_hooks::dropped(1);
                continue;
            }
            return Some(flight);
        }
        None
    }

    /// Runs one synchronous step; returns the number of packets moved.
    ///
    /// # Errors
    ///
    /// Propagates router slot violations.
    pub fn step(&mut self, router: &impl Router) -> Result<u64, EmuError> {
        #[cfg(feature = "obs")]
        let delivered_before = self.delivered;
        self.now += 1;
        self.retry_dead_queues(router)?;
        let mut arrivals: Vec<(NodeId, Flight)> = Vec::new();
        for u in 0..self.graph.num_nodes() as NodeId {
            if self.faults.node_failed(u) {
                continue;
            }
            let deg = self.graph.out_degree(u);
            if deg == 0 {
                continue;
            }
            let base = self.edge_base(u);
            match self.model {
                PortModel::AllPort => {
                    for slot in 0..deg {
                        if self.slot_dead(u, slot) {
                            continue;
                        }
                        if let Some(mut flight) = self.pop_transmittable(base, slot) {
                            let v = self.graph.out_neighbors(u)[slot];
                            self.link_traffic[base + slot] += 1;
                            flight.ttl -= 1;
                            arrivals.push((v, flight));
                        }
                    }
                }
                PortModel::SinglePort => {
                    let start = self.rr[u as usize];
                    for off in 0..deg {
                        let slot = (start + off) % deg;
                        if self.slot_dead(u, slot) {
                            continue;
                        }
                        if let Some(mut flight) = self.pop_transmittable(base, slot) {
                            let v = self.graph.out_neighbors(u)[slot];
                            self.link_traffic[base + slot] += 1;
                            flight.ttl -= 1;
                            arrivals.push((v, flight));
                            self.rr[u as usize] = (slot + 1) % deg;
                            break;
                        }
                    }
                }
            }
        }
        let moved = arrivals.len() as u64;
        self.transmissions += moved;
        for (v, flight) in arrivals {
            match router.next_hop(v, &flight.packet) {
                NextHop::Deliver => {
                    self.delivered += 1;
                    self.recovered += u64::from(flight.retries > 0);
                    #[cfg(feature = "obs")]
                    crate::obs_hooks::delivered(u64::from(self.ttl_limit - flight.ttl));
                }
                NextHop::Forward(slot) => {
                    if slot >= self.graph.out_degree(v) {
                        return Err(EmuError::SimOutOfRange {
                            reason: "router slot out of range",
                        });
                    }
                    // Queue even if the slot is currently dead: the retry
                    // phase of the next step re-consults the router.
                    let base = self.edge_base(v);
                    self.queues[base + slot].push_back(flight);
                    self.in_flight += 1;
                }
                // Mid-flight unreachability is fault-induced; count the
                // drop rather than poisoning the whole run.
                NextHop::Unreachable => {
                    self.dropped += 1;
                    #[cfg(feature = "obs")]
                    crate::obs_hooks::dropped(1);
                }
            }
        }
        #[cfg(feature = "obs")]
        self.obs_record_step(moved, self.delivered - delivered_before);
        Ok(moved)
    }

    /// Per-cycle metric readings (compiled only with the `obs` feature).
    #[cfg(feature = "obs")]
    fn obs_record_step(&self, moved: u64, delivered_delta: u64) {
        let queue_peak = self
            .queues
            .iter()
            .map(std::collections::VecDeque::len)
            .max()
            .unwrap_or(0);
        crate::obs_hooks::step(
            moved,
            delivered_delta,
            self.in_flight,
            i64::try_from(queue_peak).unwrap_or(i64::MAX),
        );
    }

    /// Runs until every packet is delivered or dropped, returning
    /// statistics. Bails out early — with [`SimStats::livelocked`] set —
    /// when traffic stops making progress: either a true fixed point
    /// (nothing moved, nothing retried, nothing dropped for a full step) or
    /// a delivery drought longer than `num_nodes + in_flight` steps
    /// (packets circulating without ever terminating).
    ///
    /// # Errors
    ///
    /// * [`EmuError::SimOutOfRange`] — router misbehavior;
    /// * [`EmuError::InvalidSchedule`] — `max_steps` elapsed with packets
    ///   still in flight (bound blowout).
    pub fn run(&mut self, router: &impl Router, max_steps: u64) -> Result<SimStats, EmuError> {
        let mut steps = 0u64;
        let mut drought = 0u64;
        let mut livelocked = false;
        while self.in_flight > 0 {
            if steps >= max_steps {
                return Err(EmuError::InvalidSchedule {
                    reason: format!(
                        "{} packets undelivered after {max_steps} steps",
                        self.in_flight
                    ),
                });
            }
            let before = (self.delivered, self.dropped, self.retried);
            let moved = self.step(router)?;
            steps += 1;
            let terminated = (self.delivered, self.dropped) != (before.0, before.1);
            // A flight parked in backoff counts as progress: it is waiting
            // out a known-bounded delay (each expiry consumes a retry, so
            // total parked time is finite), not circulating.
            drought = if terminated || self.waiting > 0 {
                0
            } else {
                drought + 1
            };
            let fixed_point = moved == 0
                && self.waiting == 0
                && (self.delivered, self.dropped, self.retried) == before;
            let drought_limit = self.graph.num_nodes() as u64 + self.in_flight + 1;
            if self.in_flight > 0 && (fixed_point || drought > drought_limit) {
                livelocked = true;
                break;
            }
        }
        #[cfg(feature = "obs")]
        crate::obs_hooks::run_done(steps, livelocked, self.in_flight);
        Ok(SimStats {
            steps,
            delivered: self.delivered,
            transmissions: self.transmissions,
            max_link_traffic: self.link_traffic.iter().copied().max().unwrap_or(0),
            dropped: self.dropped,
            retried: self.retried,
            recovered: self.recovered,
            undelivered: self.in_flight,
            livelocked,
        })
    }

    /// Per-link transmission counts so far (CSR edge order).
    #[must_use]
    pub fn link_traffic(&self) -> &[u64] {
        &self.link_traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| {
            vec![(u + 1) % n as NodeId, (u + n as NodeId - 1) % n as NodeId]
        })
    }

    fn pkt(src: NodeId, dst: NodeId) -> Packet {
        Packet {
            src,
            dst,
            payload: 0,
        }
    }

    #[test]
    fn table_router_routes_shortest() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let p = pkt(0, 3);
        // From 0 toward 3: slot leading to node 1 (forward around the ring).
        let NextHop::Forward(slot) = r.next_hop(0, &p) else {
            panic!("expected a forwarding decision")
        };
        assert_eq!(g.out_neighbors(0)[slot], 1);
        assert_eq!(r.next_hop(3, &p), NextHop::Deliver);
    }

    #[test]
    fn table_router_reports_unreachable() {
        // 0 → 1, and 2 is isolated from them.
        let g = DenseGraph::from_edges(3, [(0, 1), (1, 0)]).unwrap();
        let r = TableRouter::new(&g).unwrap();
        assert_eq!(r.next_hop(0, &pkt(0, 2)), NextHop::Unreachable);
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        assert!(matches!(
            sim.inject(0, pkt(0, 2), &r),
            Err(EmuError::Unreachable { node: 0, dst: 2 })
        ));
    }

    #[test]
    fn survivor_router_avoids_faults() {
        let g = ring(8);
        let mut faults = FaultSet::new();
        faults.fail_node(1);
        let r = TableRouter::new_with_faults(&g, &faults).unwrap();
        // 0 → 2 must go the long way (via 7) since node 1 is dead.
        let NextHop::Forward(slot) = r.next_hop(0, &pkt(0, 2)) else {
            panic!("2 is still reachable")
        };
        assert_eq!(g.out_neighbors(0)[slot], 7);
        // The dead node itself is unreachable as a destination.
        assert_eq!(r.next_hop(0, &pkt(0, 1)), NextHop::Unreachable);
    }

    #[test]
    fn single_packet_takes_distance_steps() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(0, pkt(0, 3), &r).unwrap();
        let stats = sim.run(&r, 100).unwrap();
        assert_eq!(stats.steps, 3);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.transmissions, 3);
        assert_eq!(stats.dropped, 0);
        assert!(!stats.livelocked);
        assert!((stats.delivered_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn all_port_beats_single_port_under_fanout() {
        let g = ring(6);
        let r = TableRouter::new(&g).unwrap();
        // Node 0 sends to both neighbors; all-port: 1 step, single-port: 2.
        let mk = |model| {
            let mut sim = SyncSim::new(&g, model);
            for dst in [1u32, 5] {
                sim.inject(0, pkt(0, dst), &r).unwrap();
            }
            sim.run(&r, 100).unwrap().steps
        };
        assert_eq!(mk(PortModel::AllPort), 1);
        assert_eq!(mk(PortModel::SinglePort), 2);
    }

    #[test]
    fn link_capacity_is_one_per_step() {
        let g = ring(6);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        // Two packets from 0 to 2 must serialize on the 0→1 link.
        for _ in 0..2 {
            sim.inject(0, pkt(0, 2), &r).unwrap();
        }
        let stats = sim.run(&r, 100).unwrap();
        assert_eq!(stats.steps, 3); // second packet starts one step late
        assert_eq!(stats.max_link_traffic, 2);
    }

    #[test]
    fn injection_at_destination_counts_delivered() {
        let g = ring(4);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(2, pkt(2, 2), &r).unwrap();
        assert_eq!(sim.in_flight(), 0);
        let stats = sim.run(&r, 10).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn run_detects_step_blowout() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(0, pkt(0, 4), &r).unwrap();
        assert!(sim.run(&r, 2).is_err());
    }

    #[test]
    fn mid_run_link_fault_rerouted_with_updated_table() {
        let g = ring(8);
        let stale = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(0, pkt(0, 2), &stale).unwrap();
        // Kill the link the packet is queued on, then run with a
        // survivor-rebuilt table (the fault was detected and tables
        // refreshed): the retry re-consults it and the packet goes the
        // long way round (6 hops via 7) instead of being lost.
        sim.fail_link(0, 1).unwrap();
        let fresh = TableRouter::new_with_faults(&g, sim.faults()).unwrap();
        let stats = sim.run(&fresh, 100).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 0);
        assert!(stats.retried >= 1);
        assert!(stats.steps > 2, "the detour is longer than the direct path");
    }

    #[test]
    fn stale_router_deflection_drops_after_retry_budget() {
        let g = ring(8);
        let stale = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(0, pkt(0, 2), &stale).unwrap();
        sim.fail_link(0, 1).unwrap();
        // With the stale table, deflection bounces 0 ↔ 7 (7's route to 2
        // re-enters the dead link), so the retry budget caps the bouncing
        // and the packet is dropped instead of spinning forever.
        let stats = sim.run(&stale, 1_000).unwrap();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 1);
        assert!(stats.retried >= 1);
        assert!(!stats.livelocked);
    }

    #[test]
    fn node_fault_drops_queued_packets() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(3, pkt(3, 5), &r).unwrap();
        let lost = sim.fail_node(3).unwrap();
        assert_eq!(lost, 1);
        assert_eq!(sim.in_flight(), 0);
        let stats = sim.run(&r, 10).unwrap();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
        assert!((stats.delivered_ratio() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn retry_limit_bounds_fault_retries() {
        let g = ring(4);
        let r = TableRouter::new(&g).unwrap();
        // Retry limit 0: the first dead-slot encounter drops the packet.
        let mut sim = SyncSim::new(&g, PortModel::AllPort).with_retry_limit(0);
        sim.inject(0, pkt(0, 1), &r).unwrap();
        sim.fail_link(0, 1).unwrap();
        let stats = sim.run(&r, 10).unwrap();
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.retried, 0);
    }

    #[test]
    fn ttl_expiry_drops_packets() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort).with_ttl(2);
        sim.inject(0, pkt(0, 4), &r).unwrap(); // distance 4 > ttl 2
        sim.inject(0, pkt(0, 2), &r).unwrap(); // distance 2 fits exactly
        let stats = sim.run(&r, 100).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
        assert!((stats.delivered_ratio() - 0.5).abs() < f64::EPSILON);
    }

    /// A router that keeps every packet circling the ring forever.
    struct Spinner;
    impl Router for Spinner {
        fn next_hop(&self, _at: NodeId, _packet: &Packet) -> NextHop {
            NextHop::Forward(0)
        }
    }

    #[test]
    fn undeliverable_traffic_reports_livelock_instead_of_spinning() {
        let g = ring(6);
        let table = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(0, pkt(0, 3), &table).unwrap();
        // Drive the sim with a router that never delivers: run() must bail
        // out with a live-lock report long before max_steps.
        let stats = sim.run(&Spinner, 1_000_000).unwrap();
        assert!(stats.livelocked);
        assert_eq!(stats.undelivered, 1);
        assert_eq!(stats.delivered, 0);
        assert!(stats.steps < 100);
        assert!(stats.delivered_ratio() < f64::EPSILON);
    }

    #[test]
    fn degree_minus_one_faults_still_deliver_with_survivor_router() {
        // Ring connectivity is 2, so 1 arbitrary node fault keeps the
        // survivors connected and a survivor-table router delivers 100%.
        let g = ring(10);
        let mut faults = FaultSet::new();
        faults.fail_node(4);
        let r = TableRouter::new_with_faults(&g, &faults).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.fail_node(4).unwrap();
        let mut injected = 0u64;
        for src in [0u32, 2, 7] {
            for dst in [3u32, 8, 9] {
                sim.inject(src, pkt(src, dst), &r).unwrap();
                injected += 1;
            }
        }
        let stats = sim.run(&r, 1_000).unwrap();
        assert_eq!(stats.delivered, injected);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn delivered_ratio_is_one_for_zero_packet_run() {
        // Regression: 0 delivered / 0 terminated must read as a perfect
        // run (1.0), never 0/0 = NaN.
        let g = ring(6);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        let stats = sim.run(&r, 100).unwrap();
        assert_eq!(stats.delivered + stats.dropped + stats.undelivered, 0);
        assert!(stats.delivered_ratio().is_finite());
        assert!((stats.delivered_ratio() - 1.0).abs() < f64::EPSILON);
    }
}
