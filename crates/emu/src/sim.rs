//! A synchronous, link-level, store-and-forward network simulator.
//!
//! Time advances in unit steps; every directed link transmits at most one
//! packet per step. Under the **all-port** model a node feeds all its
//! outgoing links simultaneously; under the **single-port** model it feeds
//! one per step (round-robin over non-empty queues). This is the machinery
//! the MNB/TE experiments (Corollaries 2–3) run on.

use std::collections::VecDeque;

use scg_graph::{DenseGraph, NodeId, UNREACHABLE};

use crate::error::EmuError;

/// Port model: how many links a node may drive per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortModel {
    /// All incident links simultaneously.
    AllPort,
    /// One outgoing link per step.
    SinglePort,
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Caller-defined tag (e.g. a broadcast id).
    pub payload: u64,
}

/// Chooses the outgoing link for a packet at a node.
pub trait Router {
    /// The local slot (index into `graph.out_neighbors(at)`) the packet
    /// should leave through, or `None` if `at` is its destination.
    fn next_hop(&self, at: NodeId, packet: &Packet) -> Option<usize>;
}

/// Shortest-path table router: for every destination, a BFS-built next-hop
/// slot per node. Ties are broken by a deterministic hash of
/// `(node, destination)` so traffic spreads over equally short links.
#[derive(Debug, Clone)]
pub struct TableRouter {
    degree_cap: usize,
    /// `slots[dst * n + u]` = out-slot at `u` toward `dst` (`u8::MAX` at
    /// destination or unreachable).
    slots: Vec<u8>,
    n: usize,
}

impl TableRouter {
    /// Builds the full `N × N` next-hop table (`O(N·E)` time, `N²` bytes).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if some out-degree exceeds 254
    /// (slots are stored in a `u8`).
    pub fn new(graph: &DenseGraph) -> Result<Self, EmuError> {
        let n = graph.num_nodes();
        let degree_cap = (0..n)
            .map(|u| graph.out_degree(u as NodeId))
            .max()
            .unwrap_or(0);
        if degree_cap >= u8::MAX as usize {
            return Err(EmuError::SimOutOfRange {
                reason: "out-degree too large for u8 slot table",
            });
        }
        // Reverse adjacency for BFS *toward* each destination.
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (u, v) in graph.edges() {
            rev[v as usize].push(u);
        }
        let mut slots = vec![u8::MAX; n * n];
        let mut dist = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();
        for dst in 0..n {
            dist.iter_mut().for_each(|d| *d = UNREACHABLE);
            dist[dst] = 0;
            queue.push_back(dst as NodeId);
            while let Some(v) = queue.pop_front() {
                for &u in &rev[v as usize] {
                    if dist[u as usize] == UNREACHABLE {
                        dist[u as usize] = dist[v as usize] + 1;
                        queue.push_back(u);
                    }
                }
            }
            for u in 0..n {
                if u == dst || dist[u] == UNREACHABLE {
                    continue;
                }
                let outs = graph.out_neighbors(u as NodeId);
                let candidates: Vec<usize> = outs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| dist[v as usize] + 1 == dist[u])
                    .map(|(slot, _)| slot)
                    .collect();
                debug_assert!(!candidates.is_empty());
                let pick = (u
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(dst.wrapping_mul(0x85EB_CA6B)))
                    % candidates.len();
                slots[dst * n + u] = candidates[pick] as u8;
            }
        }
        Ok(TableRouter {
            degree_cap,
            slots,
            n,
        })
    }

    /// The largest out-degree seen when building the table.
    #[must_use]
    pub fn degree_cap(&self) -> usize {
        self.degree_cap
    }
}

impl Router for TableRouter {
    fn next_hop(&self, at: NodeId, packet: &Packet) -> Option<usize> {
        if at == packet.dst {
            return None;
        }
        let s = self.slots[packet.dst as usize * self.n + at as usize];
        (s != u8::MAX).then_some(s as usize)
    }
}

/// Statistics of a completed simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Steps until every packet was delivered.
    pub steps: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Total link transmissions (packet-hops).
    pub transmissions: u64,
    /// Most transmissions carried by any single directed link.
    pub max_link_traffic: u64,
}

/// The synchronous store-and-forward simulator.
#[derive(Debug, Clone)]
pub struct SyncSim<'a> {
    graph: &'a DenseGraph,
    model: PortModel,
    /// FIFO per directed link (CSR edge index).
    queues: Vec<VecDeque<Packet>>,
    /// Round-robin pointer per node (single-port fairness).
    rr: Vec<usize>,
    link_traffic: Vec<u64>,
    delivered: u64,
    transmissions: u64,
    in_flight: u64,
}

impl<'a> SyncSim<'a> {
    /// Creates an empty simulator over `graph`.
    #[must_use]
    pub fn new(graph: &'a DenseGraph, model: PortModel) -> Self {
        SyncSim {
            graph,
            model,
            queues: vec![VecDeque::new(); graph.num_edges()],
            rr: vec![0; graph.num_nodes()],
            link_traffic: vec![0; graph.num_edges()],
            delivered: 0,
            transmissions: 0,
            in_flight: 0,
        }
    }

    /// Injects a packet at `at`, routing it immediately (a packet already at
    /// its destination is counted delivered without any transmission).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::SimOutOfRange`] if `at`, the destination, or the
    /// router's slot is out of range.
    pub fn inject(
        &mut self,
        at: NodeId,
        packet: Packet,
        router: &impl Router,
    ) -> Result<(), EmuError> {
        let n = self.graph.num_nodes();
        if at as usize >= n || packet.dst as usize >= n {
            return Err(EmuError::SimOutOfRange {
                reason: "inject node out of range",
            });
        }
        match router.next_hop(at, &packet) {
            None => {
                self.delivered += 1;
            }
            Some(slot) => {
                if slot >= self.graph.out_degree(at) {
                    return Err(EmuError::SimOutOfRange {
                        reason: "router slot out of range",
                    });
                }
                let base = self.edge_base(at);
                self.queues[base + slot].push_back(packet);
                self.in_flight += 1;
            }
        }
        Ok(())
    }

    fn edge_base(&self, u: NodeId) -> usize {
        self.graph.edge_range(u).start
    }

    /// Packets currently queued.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Runs one synchronous step; returns the number of packets moved.
    ///
    /// # Errors
    ///
    /// Propagates router slot violations.
    pub fn step(&mut self, router: &impl Router) -> Result<u64, EmuError> {
        let mut arrivals: Vec<(NodeId, Packet)> = Vec::new();
        for u in 0..self.graph.num_nodes() as NodeId {
            let deg = self.graph.out_degree(u);
            if deg == 0 {
                continue;
            }
            let base = self.edge_base(u);
            match self.model {
                PortModel::AllPort => {
                    for slot in 0..deg {
                        if let Some(p) = self.queues[base + slot].pop_front() {
                            let v = self.graph.out_neighbors(u)[slot];
                            self.link_traffic[base + slot] += 1;
                            arrivals.push((v, p));
                        }
                    }
                }
                PortModel::SinglePort => {
                    let start = self.rr[u as usize];
                    for off in 0..deg {
                        let slot = (start + off) % deg;
                        if let Some(p) = self.queues[base + slot].pop_front() {
                            let v = self.graph.out_neighbors(u)[slot];
                            self.link_traffic[base + slot] += 1;
                            arrivals.push((v, p));
                            self.rr[u as usize] = (slot + 1) % deg;
                            break;
                        }
                    }
                }
            }
        }
        let moved = arrivals.len() as u64;
        self.transmissions += moved;
        self.in_flight -= moved;
        for (v, p) in arrivals {
            match router.next_hop(v, &p) {
                None => self.delivered += 1,
                Some(slot) => {
                    if slot >= self.graph.out_degree(v) {
                        return Err(EmuError::SimOutOfRange {
                            reason: "router slot out of range",
                        });
                    }
                    let base = self.edge_base(v);
                    self.queues[base + slot].push_back(p);
                    self.in_flight += 1;
                }
            }
        }
        Ok(moved)
    }

    /// Runs until all packets are delivered, returning statistics.
    ///
    /// # Errors
    ///
    /// * [`EmuError::SimOutOfRange`] — router misbehavior;
    /// * [`EmuError::InvalidSchedule`] — `max_steps` elapsed with packets
    ///   still in flight (deadlock or bound blowout).
    pub fn run(&mut self, router: &impl Router, max_steps: u64) -> Result<SimStats, EmuError> {
        let mut steps = 0u64;
        while self.in_flight > 0 {
            if steps >= max_steps {
                return Err(EmuError::InvalidSchedule {
                    reason: format!(
                        "{} packets undelivered after {max_steps} steps",
                        self.in_flight
                    ),
                });
            }
            self.step(router)?;
            steps += 1;
        }
        Ok(SimStats {
            steps,
            delivered: self.delivered,
            transmissions: self.transmissions,
            max_link_traffic: self.link_traffic.iter().copied().max().unwrap_or(0),
        })
    }

    /// Per-link transmission counts so far (CSR edge order).
    #[must_use]
    pub fn link_traffic(&self) -> &[u64] {
        &self.link_traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| {
            vec![(u + 1) % n as NodeId, (u + n as NodeId - 1) % n as NodeId]
        })
    }

    #[test]
    fn table_router_routes_shortest() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let p = Packet {
            src: 0,
            dst: 3,
            payload: 0,
        };
        // From 0 toward 3: slot leading to node 1 (forward around the ring).
        let slot = r.next_hop(0, &p).unwrap();
        assert_eq!(g.out_neighbors(0)[slot], 1);
        assert_eq!(r.next_hop(3, &p), None);
    }

    #[test]
    fn single_packet_takes_distance_steps() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(
            0,
            Packet {
                src: 0,
                dst: 3,
                payload: 0,
            },
            &r,
        )
        .unwrap();
        let stats = sim.run(&r, 100).unwrap();
        assert_eq!(stats.steps, 3);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.transmissions, 3);
    }

    #[test]
    fn all_port_beats_single_port_under_fanout() {
        let g = ring(6);
        let r = TableRouter::new(&g).unwrap();
        // Node 0 sends to both neighbors; all-port: 1 step, single-port: 2.
        let mk = |model| {
            let mut sim = SyncSim::new(&g, model);
            for dst in [1u32, 5] {
                sim.inject(
                    0,
                    Packet {
                        src: 0,
                        dst,
                        payload: 0,
                    },
                    &r,
                )
                .unwrap();
            }
            sim.run(&r, 100).unwrap().steps
        };
        assert_eq!(mk(PortModel::AllPort), 1);
        assert_eq!(mk(PortModel::SinglePort), 2);
    }

    #[test]
    fn link_capacity_is_one_per_step() {
        let g = ring(6);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        // Two packets from 0 to 2 must serialize on the 0→1 link.
        for _ in 0..2 {
            sim.inject(
                0,
                Packet {
                    src: 0,
                    dst: 2,
                    payload: 0,
                },
                &r,
            )
            .unwrap();
        }
        let stats = sim.run(&r, 100).unwrap();
        assert_eq!(stats.steps, 3); // second packet starts one step late
        assert_eq!(stats.max_link_traffic, 2);
    }

    #[test]
    fn injection_at_destination_counts_delivered() {
        let g = ring(4);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(
            2,
            Packet {
                src: 2,
                dst: 2,
                payload: 0,
            },
            &r,
        )
        .unwrap();
        assert_eq!(sim.in_flight(), 0);
        let stats = sim.run(&r, 10).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn run_detects_step_blowout() {
        let g = ring(8);
        let r = TableRouter::new(&g).unwrap();
        let mut sim = SyncSim::new(&g, PortModel::AllPort);
        sim.inject(
            0,
            Packet {
                src: 0,
                dst: 4,
                payload: 0,
            },
            &r,
        )
        .unwrap();
        assert!(sim.run(&r, 2).is_err());
    }
}
