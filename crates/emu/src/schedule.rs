//! All-port emulation schedules (Theorems 4 and 5, Figure 1).
//!
//! Under the all-port model every node transmits on all its links in one
//! step, so emulating one all-port step of the `(ln+1)`-star means pushing
//! *all* `k − 1` dimension packets through the host's `n + l − 1` links.
//! Because the network is vertex-symmetric the schedule is the same at
//! every node: it is a map `time step → set of (dimension, generator)`
//! transmissions in which **each generator appears at most once per step**
//! ("a generator appears at most once in a row" — Figure 1) and the hops of
//! each dimension's bring–exchange–return path appear in order.
//!
//! The minimum makespan is exactly the slowdown of Theorems 4/5:
//!
//! * `MS(l,n)` / `Complete-RS(l,n)`: `max(2n, l+1)` — each swap/rotation
//!   link carries `2n` hops, each nucleus link carries `l` hops of which
//!   the last must still be followed by a return;
//! * `MIS(l,n)` / `Complete-RIS(l,n)`: `max(2n, l+2)` (the exchange costs
//!   two nucleus hops);
//! * `IS(k)`: 2.
//!
//! [`AllPortSchedule::build`] finds a schedule of exactly that makespan by
//! depth-first search with earliest-fit chains (dimensions ordered box-first
//! so the flexible single-hop direct dimensions fill the leftovers), then
//! validates it. [`AllPortSchedule::render`] reproduces Figure 1's grid.

use scg_core::{
    apply_path, route_plan, CayleyNetwork, Generator, NucleusKind, ScgClass, SuperCayleyGraph,
};
use scg_perm::Perm;

use crate::error::EmuError;

/// One scheduled transmission of a dimension's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledHop {
    /// 1-based time step.
    pub time: usize,
    /// Index into the host's generator list.
    pub link: usize,
}

/// The scheduled hops of one emulated star dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimSchedule {
    /// The star dimension `j ∈ 2..=k`.
    pub dimension: usize,
    /// Hops in path order; times are strictly increasing.
    pub hops: Vec<ScheduledHop>,
}

/// A complete conflict-free all-port emulation schedule for one host.
#[derive(Debug, Clone)]
pub struct AllPortSchedule {
    host_name: String,
    class: ScgClass,
    k: usize,
    n: usize,
    l: usize,
    links: Vec<Generator>,
    dims: Vec<DimSchedule>,
    makespan: usize,
}

impl AllPortSchedule {
    /// Builds a minimum-makespan schedule for emulating one all-port step of
    /// the `(nl+1)`-star on `host`.
    ///
    /// Works on all ten classes; MS/Complete-RS/MIS/Complete-RIS/IS get the
    /// constructive minimum-makespan schedule, while RS/RIS and the
    /// rotator-nucleus classes (whose insertion-cycle expansions the paper
    /// states no all-port theorem for) fall back to exhaustive search —
    /// keep those shapes small.
    ///
    /// # Errors
    ///
    /// * [`EmuError::Core`] — invalid parameters;
    /// * [`EmuError::ScheduleNotFound`] — the DFS fallback exhausted its
    ///   budget within the defensive `3k` makespan cap (not observed for
    ///   the classes with emulation theorems).
    pub fn build(host: &SuperCayleyGraph) -> Result<Self, EmuError> {
        let plan = route_plan(host)?;
        let k = host.degree_k();
        let links: Vec<Generator> = host.generators().to_vec();
        let link_index = |g: &Generator| -> usize {
            links
                .iter()
                .position(|h| h == g)
                // scg-allow(SCG001): Theorem 1–3 expansions emit host generators only
                .expect("expansions use only host generators")
        };
        // Expansion paths per dimension, as link indices.
        let mut paths: Vec<(usize, Vec<usize>)> = Vec::with_capacity(k - 1);
        for j in 2..=k {
            let gens = plan.star_link(j)?;
            paths.push((j, gens.iter().map(link_index).collect()));
        }

        // Dimension ordering for the search: multi-hop box dimensions first
        // (grouped by box, offsets interleaved), single-hop direct
        // dimensions last — they are the flexible fillers.
        let mut order: Vec<usize> = (0..paths.len()).collect();
        order.sort_by_key(|&i| {
            let (j, ref p) = paths[i];
            (std::cmp::Reverse(p.len()), j)
        });

        // Lower bound on the makespan. Each link carries `load` hops, one
        // per step, so `M >= load`. If the link is fully packed, its step-1
        // hop must have no predecessor (a path-initial hop) and its step-M
        // hop no successor (a path-final hop), and for `load >= 2` these
        // must be distinct hops — otherwise `M >= load + 1`. This is
        // exactly the arithmetic behind `max(2n, l+1)`: swap links carry
        // `n` initial + `n` final hops (no +1), nucleus links carry `l`
        // hops of which only the direct dimension is both initial and
        // final (+1).
        let mut load = vec![0usize; links.len()];
        let mut first_hops = vec![0usize; links.len()];
        let mut last_hops = vec![0usize; links.len()];
        let mut single_hops = vec![0usize; links.len()];
        for (_, p) in &paths {
            for (h, &li) in p.iter().enumerate() {
                load[li] += 1;
                let is_first = h == 0;
                let is_last = h + 1 == p.len();
                first_hops[li] += usize::from(is_first);
                last_hops[li] += usize::from(is_last);
                single_hops[li] += usize::from(is_first && is_last);
            }
        }
        let max_path = paths.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
        let mut lower = max_path;
        for li in 0..links.len() {
            let distinct_first_and_last = first_hops[li] >= 1
                && last_hops[li] >= 1
                && !(first_hops[li] == 1 && last_hops[li] == 1 && single_hops[li] == 1);
            let plus_one = load[li] >= 2 && !distinct_first_and_last;
            lower = lower.max(load[li] + usize::from(plus_one));
        }

        // Fast path: the constructive diagonal schedule (the generalization
        // of the paper's Figure 1 pattern). Falls back to exhaustive DFS
        // for the classes without a closed-form bound (RS/RIS) and for the
        // small shapes where the theorem's constant is loose.
        if let Some(times) = constructive(host, &paths, links.len()) {
            let makespan = times
                .iter()
                .flat_map(|t| t.iter().copied())
                .max()
                .unwrap_or(0);
            let mut dims: Vec<DimSchedule> = paths
                .iter()
                .zip(&times)
                .map(|((j, p), t)| DimSchedule {
                    dimension: *j,
                    hops: p
                        .iter()
                        .zip(t)
                        .map(|(&link, &time)| ScheduledHop { time, link })
                        .collect(),
                })
                .collect();
            dims.sort_by_key(|d| d.dimension);
            let schedule = AllPortSchedule {
                host_name: host.name(),
                class: host.class(),
                k,
                n: host.box_size(),
                l: host.levels(),
                links,
                dims,
                makespan,
            };
            if schedule.validate().is_ok() {
                return Ok(schedule);
            }
            // Defensive: fall through to the exhaustive search.
            return Self::build_dfs(host, schedule.links.clone(), paths, order, lower);
        }

        Self::build_dfs(host, links, paths, order, lower)
    }

    fn build_dfs(
        host: &SuperCayleyGraph,
        links: Vec<Generator>,
        paths: Vec<(usize, Vec<usize>)>,
        order: Vec<usize>,
        lower: usize,
    ) -> Result<Self, EmuError> {
        let k = host.degree_k();
        let hard_cap = 3 * k + 4;
        for makespan in lower..=hard_cap {
            let mut busy = vec![vec![false; makespan + 1]; links.len()];
            let mut times: Vec<Vec<usize>> = paths.iter().map(|(_, p)| vec![0; p.len()]).collect();
            let mut budget = 20_000_000u64;
            if dfs(
                &paths,
                &order,
                0,
                makespan,
                &mut busy,
                &mut times,
                &mut budget,
            ) {
                let mut dims: Vec<DimSchedule> = paths
                    .iter()
                    .zip(&times)
                    .map(|((j, p), t)| DimSchedule {
                        dimension: *j,
                        hops: p
                            .iter()
                            .zip(t)
                            .map(|(&link, &time)| ScheduledHop { time, link })
                            .collect(),
                    })
                    .collect();
                dims.sort_by_key(|d| d.dimension);
                let schedule = AllPortSchedule {
                    host_name: host.name(),
                    class: host.class(),
                    k,
                    n: host.box_size(),
                    l: host.levels(),
                    links,
                    dims,
                    makespan,
                };
                schedule.validate().map_err(|e| EmuError::InvalidSchedule {
                    reason: format!("internal: {e}"),
                })?;
                return Ok(schedule);
            }
        }
        Err(EmuError::ScheduleNotFound {
            makespan_limit: hard_cap,
        })
    }

    /// Builds the schedule exactly as Theorem 4's proof describes it — the
    /// diagonal bullet-list construction for `MS(l,n)` / `Complete-RS(l,n)`
    /// with `l ≡ 1 (mod n)` or `l <= n + 1` (the paper's base case plus its
    /// "remove the unused part" reduction), with the `B_i = R^{-(i-1)}`
    /// typo correction. Useful as an ablation against [`Self::build`]: both
    /// must produce `max(2n, l+1)`.
    ///
    /// # Errors
    ///
    /// * [`EmuError::Core`] — host is not MS/Complete-RS;
    /// * [`EmuError::InvalidSchedule`] — the shape is outside the covered
    ///   family (`n = 1`, or `l > n + 1` with `l ≢ 1 (mod n)`).
    pub fn paper_form(host: &SuperCayleyGraph) -> Result<Self, EmuError> {
        let (n, l) = (host.box_size(), host.levels());
        let class = host.class();
        if !matches!(class, ScgClass::MacroStar | ScgClass::CompleteRotationStar) {
            return Err(EmuError::Core(scg_core::CoreError::NoRoute));
        }
        if n < 2 || (l > n + 1 && (l - 1) % n != 0) {
            return Err(EmuError::InvalidSchedule {
                reason: format!(
                    "paper-form schedule covers l <= n+1 or l = rn+1; got l={l}, n={n}"
                ),
            });
        }
        let k = host.degree_k();
        let links: Vec<Generator> = host.generators().to_vec();
        let link_index =
            // scg-allow(SCG001): bring/exchange/return sequences emit host generators only
            |g: Generator| -> usize { links.iter().position(|h| *h == g).expect("host generator") };
        let bring = |i: usize| -> Generator {
            match class {
                ScgClass::MacroStar => Generator::swap(n, i),
                _ => Generator::rotation(n, l - (i - 1)),
            }
        };
        let unbring = |i: usize| -> Generator {
            match class {
                ScgClass::MacroStar => Generator::swap(n, i),
                _ => Generator::rotation(n, i - 1),
            }
        };
        // Solves `t ≡ target (mod n)` within the window `[lo, lo + n - 1]`.
        let in_window = |target: usize, lo: usize| -> usize { lo + (target + 2 * n * k - lo) % n };
        let mut dims = Vec::with_capacity(k - 1);
        for j in 2..=k {
            let (j0, j1) = scg_core::star_dimension_parts(j, n);
            if j1 == 0 {
                dims.push(DimSchedule {
                    dimension: j,
                    hops: vec![ScheduledHop {
                        time: 1,
                        link: link_index(Generator::transposition(j)),
                    }],
                });
                continue;
            }
            let i = j1 + 1; // box index
            let s = (i - 2) / n; // block index
                                 // Forward B_i at t ≡ j0 + 3 − i (mod n), t ∈ [1, n].
            let t_f = in_window(j0 + 3 + 2 * n * k - i, 1);
            // Exchange T_{j0+2} at t ≡ j0 + 4 − i (mod n), t ∈ [sn+2, sn+n+1].
            let t_x = in_window(j0 + 4 + 2 * n * k - i, s * n + 2);
            // Return B_i^{-1}: block 0 at t_f + n; later blocks at t_x + 1.
            let t_b = if s == 0 { t_f + n } else { t_x + 1 };
            dims.push(DimSchedule {
                dimension: j,
                hops: vec![
                    ScheduledHop {
                        time: t_f,
                        link: link_index(bring(i)),
                    },
                    ScheduledHop {
                        time: t_x,
                        link: link_index(Generator::transposition(j0 + 2)),
                    },
                    ScheduledHop {
                        time: t_b,
                        link: link_index(unbring(i)),
                    },
                ],
            });
        }
        let makespan = dims
            .iter()
            .flat_map(|d| d.hops.iter().map(|h| h.time))
            .max()
            .unwrap_or(0);
        let schedule = AllPortSchedule {
            host_name: host.name(),
            class,
            k,
            n,
            l,
            links,
            dims,
            makespan,
        };
        schedule.validate()?;
        Ok(schedule)
    }

    /// The emulation slowdown = schedule makespan.
    #[must_use]
    pub fn makespan(&self) -> usize {
        self.makespan
    }

    /// The theoretical slowdown bound of Theorems 4/5 for this host class,
    /// when one exists (`max(2n, l+1)` for MS/Complete-RS, `max(2n, l+2)`
    /// for MIS/Complete-RIS, 2 for IS; `None` for RS/RIS, which the paper
    /// states no all-port theorem for).
    #[must_use]
    pub fn theoretical_bound(&self) -> Option<usize> {
        let (n, l) = (self.n, self.l);
        match self.class {
            ScgClass::MacroStar | ScgClass::CompleteRotationStar => Some((2 * n).max(l + 1)),
            ScgClass::MacroIs | ScgClass::CompleteRotationIs => Some((2 * n).max(l + 2)),
            ScgClass::InsertionSelection => Some(2),
            _ => None,
        }
    }

    /// The emulated star's dimension count, `k − 1`.
    #[must_use]
    pub fn num_dimensions(&self) -> usize {
        self.k - 1
    }

    /// The host's name.
    #[must_use]
    pub fn host_name(&self) -> &str {
        &self.host_name
    }

    /// Host generator list (link order used by [`ScheduledHop::link`]).
    #[must_use]
    pub fn links(&self) -> &[Generator] {
        &self.links
    }

    /// Per-dimension schedules, ordered by dimension.
    #[must_use]
    pub fn dims(&self) -> &[DimSchedule] {
        &self.dims
    }

    /// Checks all schedule invariants:
    ///
    /// 1. each link is used at most once per time step;
    /// 2. each dimension's hops occur at strictly increasing times within
    ///    `1..=makespan`;
    /// 3. each dimension's hop sequence composes to the star link `T_j`.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::InvalidSchedule`] describing the first violation.
    pub fn validate(&self) -> Result<(), EmuError> {
        let mut seen = vec![vec![false; self.makespan + 1]; self.links.len()];
        for dim in &self.dims {
            let mut prev = 0usize;
            for hop in &dim.hops {
                if hop.time < 1 || hop.time > self.makespan {
                    return Err(EmuError::InvalidSchedule {
                        reason: format!("dimension {} hop at time {}", dim.dimension, hop.time),
                    });
                }
                if hop.time <= prev {
                    return Err(EmuError::InvalidSchedule {
                        reason: format!("dimension {} hops out of order", dim.dimension),
                    });
                }
                prev = hop.time;
                if seen[hop.link][hop.time] {
                    return Err(EmuError::InvalidSchedule {
                        reason: format!(
                            "link {} used twice at step {}",
                            self.links[hop.link], hop.time
                        ),
                    });
                }
                seen[hop.link][hop.time] = true;
            }
            // Composition check.
            let gens: Vec<Generator> = dim.hops.iter().map(|h| self.links[h.link]).collect();
            let u = Perm::identity(self.k);
            let via = apply_path(&u, &gens).map_err(|e| EmuError::InvalidSchedule {
                reason: format!("dimension {}: {e}", dim.dimension),
            })?;
            let direct = Generator::transposition(dim.dimension)
                .apply(&u)
                // scg-allow(SCG001): dimensions range over 2..=k of the validated schedule
                .expect("dimension within degree");
            if via != direct {
                return Err(EmuError::InvalidSchedule {
                    reason: format!(
                        "dimension {} path does not compose to T_{}",
                        dim.dimension, dim.dimension
                    ),
                });
            }
        }
        Ok(())
    }

    /// Per-link hop counts (generator order): each node transmits this many
    /// times on each of its links over the whole emulated step.
    #[must_use]
    pub fn link_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.links.len()];
        for dim in &self.dims {
            for hop in &dim.hops {
                loads[hop.link] += 1;
            }
        }
        loads
    }

    /// Total scheduled transmissions.
    #[must_use]
    pub fn total_hops(&self) -> usize {
        self.dims.iter().map(|d| d.hops.len()).sum()
    }

    /// Fraction of link-steps used: `total_hops / (links × makespan)` — the
    /// Figure 1 caption's utilization figure.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.total_hops() as f64 / (self.links.len() * self.makespan) as f64
    }

    /// The largest `t` such that every link is busy at every step `1..=t`
    /// ("the links are fully used during steps 1 to 5").
    #[must_use]
    pub fn fully_used_through(&self) -> usize {
        let mut used = vec![vec![false; self.makespan + 1]; self.links.len()];
        for dim in &self.dims {
            for hop in &dim.hops {
                used[hop.link][hop.time] = true;
            }
        }
        (1..=self.makespan)
            .take_while(|&t| used.iter().all(|row| row[t]))
            .count()
    }

    /// Renders the schedule as Figure 1 does: one row per step, one column
    /// per emulated dimension, each cell the generator transmitted.
    #[must_use]
    pub fn render(&self) -> String {
        let mut grid = vec![vec![String::new(); self.k - 1]; self.makespan];
        for dim in &self.dims {
            for hop in &dim.hops {
                grid[hop.time - 1][dim.dimension - 2] = self.links[hop.link].to_string();
            }
        }
        let width = grid
            .iter()
            .flatten()
            .map(String::len)
            .max()
            .unwrap_or(1)
            .max(3);
        let mut out = String::new();
        out.push_str(&format!(
            "{} emulating the {}-star (all-port), makespan {}:\n",
            self.host_name, self.k, self.makespan
        ));
        out.push_str("        j=");
        for j in 2..=self.k {
            out.push_str(&format!(" {j:>width$}"));
        }
        out.push('\n');
        for (t, row) in grid.iter().enumerate() {
            out.push_str(&format!("Step {:>2}:  ", t + 1));
            for cell in row {
                let c = if cell.is_empty() { "." } else { cell };
                out.push_str(&format!(" {c:>width$}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "links fully used through step {}; average utilization {:.1}%\n",
            self.fully_used_through(),
            100.0 * self.utilization()
        ));
        out
    }
}

/// The constructive minimum-makespan schedule for the bring–exchange–return
/// classes (MS, Complete-RS, MIS, Complete-RIS, IS).
///
/// Nucleus (exchange) hops of box `b`, offset `d` go to time
/// `τ(b,d) = 2 + ((b − 2 + d·c) mod W)` — a diagonal pattern that is
/// distinct per nucleus link (column) and per box (row), generalizing the
/// Latin-square schedule of Figure 1. Bring hops are then packed
/// earliest-deadline-first below their `τ`, return hops latest-release-last
/// above, per super link. Returns `None` (caller falls back to DFS) if the
/// host has multi-hop bring sequences (RS/RIS), no closed-form bound, or
/// the diagonal does not fit (the degenerate small shapes where the
/// theorem's constant is loose).
fn constructive(
    host: &SuperCayleyGraph,
    paths: &[(usize, Vec<usize>)],
    num_links: usize,
) -> Option<Vec<Vec<usize>>> {
    let (n, l) = (host.box_size(), host.levels());
    let makespan = match host.class() {
        ScgClass::MacroStar | ScgClass::CompleteRotationStar => (2 * n).max(l + 1),
        ScgClass::MacroIs | ScgClass::CompleteRotationIs => (2 * n).max(l + 2),
        ScgClass::InsertionSelection => 2,
        _ => return None,
    };
    let nucleus_max = match host.class().nucleus() {
        NucleusKind::Transposition => 1,
        NucleusKind::InsertionSelection => usize::from(n >= 2) + 1,
        NucleusKind::Insertion => return None,
    };
    let mut busy = vec![vec![false; makespan + 1]; num_links];
    let mut times: Vec<Vec<usize>> = paths.iter().map(|(_, p)| vec![0; p.len()]).collect();
    // (link, deadline/release, dim index, hop index)
    let mut forwards: Vec<(usize, usize, usize)> = Vec::new();
    let mut returns: Vec<(usize, usize, usize)> = Vec::new();

    let (width, c) = if l >= 2 {
        let width = makespan.checked_sub(1 + nucleus_max)?;
        if width == 0 {
            return None;
        }
        let c = (width / n).max(1);
        // Row distinctness of the diagonal requires the column stride to
        // cover n offsets without wrapping.
        if n >= 2 && (n - 1) * c >= width {
            return None;
        }
        (width, c)
    } else {
        (1, 1)
    };

    for (di, (j, p)) in paths.iter().enumerate() {
        let (d, b1) = scg_core::star_dimension_parts(*j, n);
        if b1 == 0 {
            // Direct dimension: nucleus hops at times 1, 2.
            for (h, &link) in p.iter().enumerate() {
                let t = h + 1;
                if busy[link][t] {
                    return None;
                }
                busy[link][t] = true;
                times[di][h] = t;
            }
            continue;
        }
        let b = b1 + 1;
        let tau = 2 + ((b - 2 + d * c) % width);
        let nucleus_len = p.len() - 2;
        for h in 0..nucleus_len {
            let t = tau + h;
            let link = p[1 + h];
            if busy[link][t] {
                return None;
            }
            busy[link][t] = true;
            times[di][1 + h] = t;
        }
        forwards.push((p[0], tau - 1, di));
        // scg-allow(SCG001): expansion paths carry at least the direct link
        returns.push((*p.last().expect("non-empty path"), tau + nucleus_len, di));
    }

    // Earliest-deadline-first for bring hops (smallest free slot, must not
    // exceed the deadline).
    forwards.sort_by_key(|&(_, deadline, _)| deadline);
    for (link, deadline, di) in forwards {
        let slot = (1..=deadline).find(|&t| !busy[link][t])?;
        busy[link][slot] = true;
        times[di][0] = slot;
    }
    // Latest-release-last for return hops (largest free slot at or above
    // the release).
    returns.sort_by_key(|&(_, release, _)| std::cmp::Reverse(release));
    for (link, release, di) in returns {
        let slot = (release..=makespan).rev().find(|&t| !busy[link][t])?;
        busy[link][slot] = true;
        let last = times[di].len() - 1;
        times[di][last] = slot;
    }
    Some(times)
}

/// Depth-first search: assign hop times for dims in `order[idx..]`.
fn dfs(
    paths: &[(usize, Vec<usize>)],
    order: &[usize],
    idx: usize,
    makespan: usize,
    busy: &mut Vec<Vec<bool>>,
    times: &mut Vec<Vec<usize>>,
    budget: &mut u64,
) -> bool {
    if idx == order.len() {
        return true;
    }
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let di = order[idx];
    let path = &paths[di].1;
    assign_chain(
        paths,
        order,
        idx,
        0,
        0,
        makespan,
        busy,
        times,
        budget,
        path.len(),
    )
}

/// Assigns hop `h` of dimension `order[idx]` to the earliest feasible times,
/// backtracking across the whole chain.
#[allow(clippy::too_many_arguments)]
fn assign_chain(
    paths: &[(usize, Vec<usize>)],
    order: &[usize],
    idx: usize,
    h: usize,
    prev_time: usize,
    makespan: usize,
    busy: &mut Vec<Vec<bool>>,
    times: &mut Vec<Vec<usize>>,
    budget: &mut u64,
    path_len: usize,
) -> bool {
    if h == path_len {
        return dfs(paths, order, idx + 1, makespan, busy, times, budget);
    }
    if *budget == 0 {
        return false;
    }
    let di = order[idx];
    let link = paths[di].1[h];
    let remaining_after = path_len - h - 1;
    // Hop h needs a slot with enough room left for its successors.
    for t in (prev_time + 1)..=(makespan - remaining_after) {
        if busy[link][t] {
            continue;
        }
        busy[link][t] = true;
        times[di][h] = t;
        if assign_chain(
            paths,
            order,
            idx,
            h + 1,
            t,
            makespan,
            busy,
            times,
            budget,
            path_len,
        ) {
            return true;
        }
        busy[link][t] = false;
        *budget = budget.saturating_sub(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bound(host: &SuperCayleyGraph) -> AllPortSchedule {
        let s = AllPortSchedule::build(host).unwrap();
        s.validate().unwrap();
        if let Some(b) = s.theoretical_bound() {
            assert_eq!(s.makespan(), b, "{}", s.host_name());
        }
        s
    }

    #[test]
    fn theorem_4_macro_star_grid() {
        for (l, n) in [
            (2, 2),
            (3, 2),
            (2, 3),
            (3, 3),
            (4, 3),
            (5, 3),
            (4, 2),
            (2, 4),
        ] {
            check_bound(&SuperCayleyGraph::macro_star(l, n).unwrap());
        }
    }

    #[test]
    fn theorem_4_complete_rs_grid() {
        for (l, n) in [(2, 2), (3, 2), (4, 3), (5, 3), (6, 3)] {
            check_bound(&SuperCayleyGraph::complete_rotation_star(l, n).unwrap());
        }
    }

    #[test]
    fn theorem_5_mis_grid() {
        for (l, n) in [(3, 2), (4, 3), (5, 3)] {
            check_bound(&SuperCayleyGraph::macro_is(l, n).unwrap());
            check_bound(&SuperCayleyGraph::complete_rotation_is(l, n).unwrap());
        }
    }

    #[test]
    fn theorem_5_constant_is_loose_at_l_2_n_2() {
        // Reproduction finding: for MIS(2,2) the single box's 4-hop chain
        // forces the swap link's uses to times {1,4}, leaving no slot pair
        // for the other chain's exchange — the true optimum is 5, one more
        // than Theorem 5's max(2n, l+2) = 4. (The theorem's constant is an
        // upper bound argument that is loose at this smallest shape.)
        for host in [
            SuperCayleyGraph::macro_is(2, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
        ] {
            let s = AllPortSchedule::build(&host).unwrap();
            s.validate().unwrap();
            assert_eq!(s.theoretical_bound(), Some(4));
            assert_eq!(s.makespan(), 5, "{}", s.host_name());
        }
    }

    #[test]
    fn theorem_2_is_all_port_slowdown_2() {
        for k in [4, 6, 9] {
            let s = check_bound(&SuperCayleyGraph::insertion_selection(k).unwrap());
            assert_eq!(s.makespan(), 2);
        }
    }

    #[test]
    fn figure_1a_ms_4_3() {
        // Emulating a 13-star on MS(4,3): makespan max(6, 5) = 6.
        let s = check_bound(&SuperCayleyGraph::macro_star(4, 3).unwrap());
        assert_eq!(s.makespan(), 6);
        assert_eq!(s.num_dimensions(), 12);
        assert_eq!(s.total_hops(), 3 + 9 * 3); // 3 direct + 9 box dims × 3
    }

    #[test]
    fn figure_1b_ms_5_3_utilization_93_percent() {
        // Emulating a 16-star on MS(5,3): makespan max(6, 6) = 6, 39 hops
        // over 7 links × 6 steps = 92.9% ("93% used on the average").
        let s = check_bound(&SuperCayleyGraph::macro_star(5, 3).unwrap());
        assert_eq!(s.makespan(), 6);
        assert_eq!(s.total_hops(), 39);
        assert!((s.utilization() - 39.0 / 42.0).abs() < 1e-12);
        assert!(s.utilization() > 0.92 && s.utilization() < 0.94);
    }

    #[test]
    fn rotation_star_schedules_exist() {
        // No closed-form theorem, but a valid schedule must still come out.
        let s = AllPortSchedule::build(&SuperCayleyGraph::rotation_star(4, 2).unwrap()).unwrap();
        s.validate().unwrap();
        assert!(s.theoretical_bound().is_none());
        assert!(s.makespan() >= 4); // R link carries >= 2n = 4 hops... at least.
    }

    #[test]
    fn paper_form_matches_theorem_4_on_its_family() {
        // l = rn + 1 shapes plus the l <= n+1 reductions — the exact family
        // Theorem 4's proof constructs. Makespan must equal max(2n, l+1)
        // and agree with the general scheduler (ablation).
        for (l, n) in [
            (3usize, 2usize),
            (5, 2),
            (7, 2),
            (4, 3),
            (2, 2),
            (2, 3),
            (3, 3),
            (3, 4),
            (4, 4),
        ] {
            for host in [
                SuperCayleyGraph::macro_star(l, n).unwrap(),
                SuperCayleyGraph::complete_rotation_star(l, n).unwrap(),
            ] {
                let paper = AllPortSchedule::paper_form(&host).unwrap();
                paper.validate().unwrap();
                let bound = (2 * n).max(l + 1);
                assert_eq!(
                    paper.makespan(),
                    bound,
                    "paper form on {}",
                    paper.host_name()
                );
                let ours = AllPortSchedule::build(&host).unwrap();
                assert_eq!(ours.makespan(), paper.makespan(), "{}", paper.host_name());
                assert_eq!(ours.total_hops(), paper.total_hops());
            }
        }
    }

    #[test]
    fn paper_form_rejects_uncovered_shapes() {
        // l = 6, n = 3 is neither l <= n+1 nor l ≡ 1 (mod 3)... 6-1 = 5,
        // 5 % 3 != 0 → rejected; the general scheduler still handles it.
        let host = SuperCayleyGraph::macro_star(6, 3).unwrap();
        assert!(matches!(
            AllPortSchedule::paper_form(&host),
            Err(EmuError::InvalidSchedule { .. })
        ));
        assert!(AllPortSchedule::paper_form(&SuperCayleyGraph::macro_is(3, 2).unwrap()).is_err());
    }

    #[test]
    fn rotator_hosts_schedule_via_dfs() {
        // No closed-form theorem for the rotator classes (the insertion
        // cycles inflate the nucleus-link loads); the DFS still finds a
        // valid conflict-free schedule on small shapes.
        let s = AllPortSchedule::build(&SuperCayleyGraph::macro_rotator(2, 2).unwrap()).unwrap();
        s.validate().unwrap();
        assert!(s.theoretical_bound().is_none());
        assert!(s.makespan() >= 4);
    }

    #[test]
    fn render_contains_grid() {
        let s = AllPortSchedule::build(&SuperCayleyGraph::macro_star(4, 3).unwrap()).unwrap();
        let text = s.render();
        assert!(text.contains("Step  1"));
        assert!(text.contains("MS(4,3)"));
        assert!(text.contains("13-star"));
    }

    #[test]
    fn validation_catches_conflicts() {
        let mut s = AllPortSchedule::build(&SuperCayleyGraph::macro_star(2, 2).unwrap()).unwrap();
        // Corrupt: force two hops of different dims onto one (link, time).
        let (l0, t0) = {
            let h = s.dims[2].hops[0];
            (h.link, h.time)
        };
        s.dims[3].hops[0] = ScheduledHop { time: t0, link: l0 };
        assert!(s.validate().is_err());
    }
}
