//! Communication models, emulation schedules, and a network simulator for
//! super Cayley graphs (§3–§4 of the paper).
//!
//! * [`SdcReport`] — single-dimension-communication emulation costs
//!   (Theorems 1–3: slowdown 3 on `MS`/`Complete-RS`, 2 on `IS`, 4 on
//!   `MIS`/`Complete-RIS`);
//! * [`AllPortSchedule`] — conflict-free pipelined schedules emulating one
//!   all-port star step (Theorems 4–5, Figure 1), with validation,
//!   link-utilization statistics and an ASCII rendering of the Figure 1
//!   grid;
//! * [`SyncSim`] — a synchronous store-and-forward link-level simulator
//!   (all-port / single-port) with a shortest-path [`TableRouter`], used by
//!   the `scg-comm` crate to measure multinode-broadcast and total-exchange
//!   completion times. Supports mid-run fail-stop fault injection *and
//!   repair* with bounded retries, exponential backoff, per-packet TTLs,
//!   and live-lock detection, so degraded networks report drops instead
//!   of hanging;
//! * [`run_chaos`] — the self-healing emulator loop: replays a seeded
//!   [`FaultSchedule`](scg_graph::FaultSchedule) against live traffic,
//!   refreshing the [`TableRouter`] in place on every fault-set epoch
//!   change, and reports per-event MTTR plus windowed delivered-ratio
//!   degradation curves ([`ChaosReport`]).
//!
//! # Examples
//!
//! ```
//! use scg_core::SuperCayleyGraph;
//! use scg_emu::AllPortSchedule;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Figure 1b: emulating a 16-star on MS(5,3) takes max(2n, l+1) = 6
//! // steps and keeps the links ~93% busy.
//! let host = SuperCayleyGraph::macro_star(5, 3)?;
//! let schedule = scg_emu::AllPortSchedule::build(&host)?;
//! assert_eq!(schedule.makespan(), 6);
//! assert!(schedule.utilization() > 0.92);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
mod healing;
#[cfg(feature = "obs")]
mod obs_hooks;
mod schedule;
mod sdc;
mod sim;
mod traffic;

pub use error::EmuError;
pub use healing::{run_chaos, ChaosConfig, ChaosReport, CurveSample, EventRecovery};
pub use schedule::{AllPortSchedule, DimSchedule, ScheduledHop};
pub use sdc::{pipelined_dimension_cost, PipelinedCost, SdcReport};
pub use sim::{NextHop, Packet, PortModel, Router, SimStats, SyncSim, TableRouter};
pub use traffic::TrafficSummary;
