//! Graph substrate for the super Cayley graph library.
//!
//! Interconnection networks in this workspace materialize as dense,
//! contiguous-id graphs (node `i` of a Cayley graph is the permutation of
//! lexicographic rank `i`). This crate supplies the generic graph machinery:
//!
//! * [`DenseGraph`] — a compressed-sparse-row directed graph with an
//!   undirected view for inverse-closed generator sets;
//! * BFS, eccentricities, diameter, mean internodal distance, and distance
//!   distributions ([`DistanceStats`]);
//! * the universal (Moore-style) diameter lower bound `DL(d, N)` used by the
//!   paper's optimality arguments ([`moore_diameter_lower_bound`]);
//! * vertex-transitivity spot checks;
//! * a backtracking dilation-1 tree embedder ([`embed_tree`]) used to
//!   certify Corollary 4's tree-into-star premise;
//! * budget-limited Hamiltonian path search ([`hamiltonian_path`]) used by
//!   the linear-array mesh embeddings of Corollary 6;
//! * a fail-stop fault model ([`FaultSet`], [`SurvivorView`]) with exact
//!   max-flow connectivity audits ([`vertex_connectivity`],
//!   [`edge_connectivity`]) and survivor component censuses.
//!
//! # Examples
//!
//! ```
//! use scg_graph::DenseGraph;
//!
//! // A 4-cycle.
//! let g = DenseGraph::from_neighbor_fn(4, |u| vec![(u + 1) % 4, (u + 3) % 4]);
//! assert!(g.is_symmetric());
//! assert_eq!(g.bfs_distances(0)[2], 2);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod bounds;
mod chaos;
mod dense;
mod error;
mod fault;
mod hamiltonian;
#[cfg(feature = "obs")]
mod obs_hooks;
mod stats;
mod subgraph;
mod transitivity;

pub use bounds::{moore_diameter_lower_bound, moore_diameter_lower_bound_undirected};
pub use chaos::{ChaosEvent, ChaosSpec, FaultSchedule, TimedEvent};
pub use dense::DenseGraph;
pub use error::GraphError;
pub use fault::{edge_connectivity, vertex_connectivity, ComponentCensus, FaultSet, SurvivorView};
pub use hamiltonian::{hamiltonian_cycle, hamiltonian_path, SearchBudget};
pub use stats::DistanceStats;
pub use subgraph::{complete_binary_tree, embed_tree, embed_tree_randomized};
pub use transitivity::{eccentricity, looks_vertex_transitive};

/// Node identifier inside a [`DenseGraph`].
pub type NodeId = u32;

/// Distance value returned by BFS; [`UNREACHABLE`] marks disconnected pairs.
pub type Dist = u32;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: Dist = u32::MAX;
