use std::error::Error;
use std::fmt;

/// Error produced by graph constructors and algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphError {
    /// A node id was `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The graph order.
        num_nodes: usize,
    },
    /// An algorithm that requires a symmetric (undirected-viewable) graph was
    /// handed a graph with an unmatched directed edge.
    NotSymmetric,
    /// The guest handed to a tree algorithm is not a tree (wrong edge count
    /// or disconnected).
    NotATree,
    /// A search exhausted its step budget without an answer either way.
    BudgetExhausted,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::NotSymmetric => write!(f, "graph is not symmetric"),
            GraphError::NotATree => write!(f, "guest graph is not a tree"),
            GraphError::BudgetExhausted => write!(f, "search budget exhausted"),
        }
    }
}

impl Error for GraphError {}
