//! Budget-limited Hamiltonian path/cycle search.
//!
//! Star graphs are Hamiltonian; a Hamiltonian path is exactly a dilation-1
//! embedding of the `k!`-node linear array, which Corollary 6's mesh
//! embeddings build on. The search is exact backtracking with the
//! Warnsdorff least-free-degree heuristic, bounded by a [`SearchBudget`] so
//! callers stay in control of worst-case cost.

use crate::dense::DenseGraph;
use crate::error::GraphError;
use crate::NodeId;

/// A step budget shared across a backtracking search.
///
/// Each recursive extension costs one unit; when the budget hits zero the
/// search aborts with [`GraphError::BudgetExhausted`] so callers can
/// distinguish "no solution" from "didn't look long enough".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    remaining: u64,
}

impl SearchBudget {
    /// A budget of `steps` backtracking extensions.
    #[must_use]
    pub fn new(steps: u64) -> Self {
        SearchBudget { remaining: steps }
    }

    /// Remaining steps.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Consumes one step.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::BudgetExhausted`] when spent.
    pub fn spend(&mut self) -> Result<(), GraphError> {
        if self.remaining == 0 {
            return Err(GraphError::BudgetExhausted);
        }
        self.remaining -= 1;
        Ok(())
    }
}

/// Searches for a Hamiltonian path starting at `start`.
///
/// Returns the node sequence on success, `Ok(None)` if the (exhaustive)
/// search proved none exists from `start`, or
/// [`GraphError::BudgetExhausted`] if inconclusive.
///
/// # Errors
///
/// * [`GraphError::NodeOutOfRange`] — bad `start`;
/// * [`GraphError::BudgetExhausted`] — inconclusive within `budget`.
pub fn hamiltonian_path(
    graph: &DenseGraph,
    start: NodeId,
    budget: &mut SearchBudget,
) -> Result<Option<Vec<NodeId>>, GraphError> {
    search(graph, start, false, budget)
}

/// Searches for a Hamiltonian cycle through `start` (returned as a path whose
/// final node is adjacent to `start`; the closing edge is implied).
///
/// # Errors
///
/// Same as [`hamiltonian_path`].
pub fn hamiltonian_cycle(
    graph: &DenseGraph,
    start: NodeId,
    budget: &mut SearchBudget,
) -> Result<Option<Vec<NodeId>>, GraphError> {
    search(graph, start, true, budget)
}

fn search(
    graph: &DenseGraph,
    start: NodeId,
    cycle: bool,
    budget: &mut SearchBudget,
) -> Result<Option<Vec<NodeId>>, GraphError> {
    let n = graph.num_nodes();
    if start as usize >= n {
        return Err(GraphError::NodeOutOfRange {
            node: u64::from(start),
            num_nodes: n,
        });
    }
    let mut path = Vec::with_capacity(n);
    let mut used = vec![false; n];
    path.push(start);
    used[start as usize] = true;
    if extend(graph, start, cycle, &mut path, &mut used, budget)? {
        Ok(Some(path))
    } else {
        Ok(None)
    }
}

fn extend(
    graph: &DenseGraph,
    start: NodeId,
    cycle: bool,
    path: &mut Vec<NodeId>,
    used: &mut Vec<bool>,
    budget: &mut SearchBudget,
) -> Result<bool, GraphError> {
    if path.len() == graph.num_nodes() {
        // scg-allow(SCG001): the search seeds path with the start node; it is never empty
        let last = *path.last().expect("path non-empty");
        return Ok(!cycle || graph.edge_index(last, start).is_some());
    }
    budget.spend()?;
    // scg-allow(SCG001): the search seeds path with the start node; it is never empty
    let u = *path.last().expect("path non-empty");
    // Warnsdorff: try the neighbor with fewest free continuations first.
    let mut candidates: Vec<(usize, NodeId)> = graph
        .out_neighbors(u)
        .iter()
        .copied()
        .filter(|&v| !used[v as usize])
        .map(|v| {
            let free = graph
                .out_neighbors(v)
                .iter()
                .filter(|&&w| !used[w as usize])
                .count();
            (free, v)
        })
        .collect();
    candidates.sort_unstable();
    for (_, v) in candidates {
        path.push(v);
        used[v as usize] = true;
        if extend(graph, start, cycle, path, used, budget)? {
            return Ok(true);
        }
        used[v as usize] = false;
        path.pop();
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube3() -> DenseGraph {
        DenseGraph::from_neighbor_fn(8, |u| (0..3).map(|b| u ^ (1 << b)).collect())
    }

    #[test]
    fn cube_has_hamiltonian_cycle() {
        let g = cube3();
        let p = hamiltonian_cycle(&g, 0, &mut SearchBudget::new(100_000))
            .unwrap()
            .expect("hypercube is Hamiltonian");
        assert_eq!(p.len(), 8);
        for w in p.windows(2) {
            assert!(g.edge_index(w[0], w[1]).is_some());
        }
        assert!(g.edge_index(p[7], p[0]).is_some());
    }

    #[test]
    fn path_graph_has_path_only_from_ends() {
        let line = DenseGraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        assert!(hamiltonian_path(&line, 0, &mut SearchBudget::new(1000))
            .unwrap()
            .is_some());
        assert!(hamiltonian_path(&line, 1, &mut SearchBudget::new(1000))
            .unwrap()
            .is_none());
        assert!(hamiltonian_cycle(&line, 0, &mut SearchBudget::new(1000))
            .unwrap()
            .is_none());
    }

    #[test]
    fn budget_is_respected() {
        let g = cube3();
        let r = hamiltonian_cycle(&g, 0, &mut SearchBudget::new(1));
        assert_eq!(r.unwrap_err(), GraphError::BudgetExhausted);
    }

    #[test]
    fn bad_start_rejected() {
        let g = cube3();
        assert!(matches!(
            hamiltonian_path(&g, 99, &mut SearchBudget::new(10)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }
}
