//! Dilation-1 tree embedding by backtracking subgraph search.
//!
//! Corollary 4 of the paper rests on dilation-1 embeddings of complete binary
//! trees into star graphs (Bouabdallah et al.). The construction of that
//! cited paper is not reproducible from the citation alone, so we instead
//! *certify existence* on the checkable instances: this module performs an
//! exact backtracking search for the guest tree as a subgraph of the host.

use crate::dense::DenseGraph;
use crate::error::GraphError;
use crate::hamiltonian::SearchBudget;
use crate::NodeId;

/// Attempts to embed the tree `guest` into `host` with dilation 1 (i.e. as a
/// subgraph), rooting the guest at `guest_root` mapped onto `host_root`.
///
/// Returns the guest→host node map on success, `Ok(None)` if the search space
/// was exhausted (no embedding with this root pair exists), and
/// [`GraphError::BudgetExhausted`] if `budget` ran out first.
///
/// `guest` must be symmetric and a tree (`num_edges == 2·(num_nodes − 1)` and
/// connected).
///
/// # Errors
///
/// * [`GraphError::NotATree`] — `guest` is not a symmetric tree;
/// * [`GraphError::NodeOutOfRange`] — a root id is out of range;
/// * [`GraphError::BudgetExhausted`] — inconclusive within `budget`.
pub fn embed_tree(
    guest: &DenseGraph,
    host: &DenseGraph,
    guest_root: NodeId,
    host_root: NodeId,
    budget: &mut SearchBudget,
) -> Result<Option<Vec<NodeId>>, GraphError> {
    embed_tree_seeded(guest, host, guest_root, host_root, budget, None)
}

/// [`embed_tree`] with an optional xorshift seed perturbing the candidate
/// order (used by [`embed_tree_randomized`]).
fn embed_tree_seeded(
    guest: &DenseGraph,
    host: &DenseGraph,
    guest_root: NodeId,
    host_root: NodeId,
    budget: &mut SearchBudget,
    seed: Option<u64>,
) -> Result<Option<Vec<NodeId>>, GraphError> {
    let mut rng = seed;
    let gn = guest.num_nodes();
    if guest_root as usize >= gn {
        return Err(GraphError::NodeOutOfRange {
            node: u64::from(guest_root),
            num_nodes: gn,
        });
    }
    if host_root as usize >= host.num_nodes() {
        return Err(GraphError::NodeOutOfRange {
            node: u64::from(host_root),
            num_nodes: host.num_nodes(),
        });
    }
    if !guest.is_symmetric() || guest.num_edges() != 2 * (gn - 1) {
        return Err(GraphError::NotATree);
    }
    if gn > host.num_nodes() {
        return Ok(None);
    }

    // Rooted DFS order; children[g] lists each node's children, subtree[g]
    // counts descendants (used for pruning).
    let mut parent = vec![NodeId::MAX; gn];
    let mut order = Vec::with_capacity(gn);
    let mut stack = vec![guest_root];
    let mut seen = vec![false; gn];
    seen[guest_root as usize] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &v in guest.out_neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = u;
                stack.push(v);
            }
        }
    }
    if order.len() != gn {
        return Err(GraphError::NotATree);
    }
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); gn];
    for &v in &order {
        let p = parent[v as usize];
        if p != NodeId::MAX {
            children[p as usize].push(v);
        }
    }
    let mut subtree = vec![1usize; gn];
    for &v in order.iter().rev() {
        let p = parent[v as usize];
        if p != NodeId::MAX {
            subtree[p as usize] += subtree[v as usize];
        }
    }
    // Heavier subtrees first: fail fast on the hard branches.
    for ch in &mut children {
        ch.sort_by_key(|&c| std::cmp::Reverse(subtree[c as usize]));
    }

    let mut map = vec![NodeId::MAX; gn];
    let mut used = vec![false; host.num_nodes()];
    map[guest_root as usize] = host_root;
    used[host_root as usize] = true;

    // Process guest nodes in BFS-like order of `order` (parents before
    // children is all that matters; DFS order satisfies it).
    let result = place(
        guest, host, &children, &subtree, &order, 0, &mut map, &mut used, budget, &mut rng,
    )?;
    Ok(result.then_some(map))
}

#[allow(clippy::too_many_arguments)]
fn place(
    guest: &DenseGraph,
    host: &DenseGraph,
    children: &[Vec<NodeId>],
    subtree: &[usize],
    order: &[NodeId],
    idx: usize,
    map: &mut Vec<NodeId>,
    used: &mut Vec<bool>,
    budget: &mut SearchBudget,
    rng: &mut Option<u64>,
) -> Result<bool, GraphError> {
    // Find the next guest node (in order) that has children to place; we
    // place whole child lists at once to keep sibling choices coordinated.
    let Some(&g) = order.get(idx) else {
        return Ok(true);
    };
    budget.spend()?;
    let kids = &children[g as usize];
    if kids.is_empty() {
        return place(
            guest,
            host,
            children,
            subtree,
            order,
            idx + 1,
            map,
            used,
            budget,
            rng,
        );
    }
    let h = map[g as usize];
    debug_assert_ne!(h, NodeId::MAX, "parent placed before children");
    let mut free: Vec<NodeId> = host
        .out_neighbors(h)
        .iter()
        .copied()
        .filter(|&w| !used[w as usize])
        .collect();
    if free.len() < kids.len() {
        return Ok(false);
    }
    if let Some(state) = rng {
        // Fisher-Yates with a per-call xorshift stream: perturbs which
        // sibling placements are explored first.
        for i in (1..free.len()).rev() {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            let j = (*state % (i as u64 + 1)) as usize;
            free.swap(i, j);
        }
    }
    assign_children(
        guest, host, children, subtree, order, idx, kids, 0, &free, map, used, budget, rng,
    )
}

#[allow(clippy::too_many_arguments)]
fn assign_children(
    guest: &DenseGraph,
    host: &DenseGraph,
    children: &[Vec<NodeId>],
    subtree: &[usize],
    order: &[NodeId],
    idx: usize,
    kids: &[NodeId],
    kid_idx: usize,
    free: &[NodeId],
    map: &mut Vec<NodeId>,
    used: &mut Vec<bool>,
    budget: &mut SearchBudget,
    rng: &mut Option<u64>,
) -> Result<bool, GraphError> {
    if kid_idx == kids.len() {
        return place(
            guest,
            host,
            children,
            subtree,
            order,
            idx + 1,
            map,
            used,
            budget,
            rng,
        );
    }
    let kid = kids[kid_idx];
    for &cand in free {
        if used[cand as usize] {
            continue;
        }
        // Prune: the candidate must have enough (not-yet-used) neighbors to
        // host the kid's own children.
        let needed = children[kid as usize].len();
        if needed > 0 {
            let avail = host
                .out_neighbors(cand)
                .iter()
                .filter(|&&w| !used[w as usize])
                .count();
            if avail < needed {
                continue;
            }
        }
        map[kid as usize] = cand;
        used[cand as usize] = true;
        if assign_children(
            guest,
            host,
            children,
            subtree,
            order,
            idx,
            kids,
            kid_idx + 1,
            free,
            map,
            used,
            budget,
            rng,
        )? {
            return Ok(true);
        }
        used[cand as usize] = false;
        map[kid as usize] = NodeId::MAX;
    }
    Ok(false)
}

/// [`embed_tree`] with randomized candidate ordering and restarts: each
/// attempt perturbs the order in which host neighbors are tried (seeded
/// xorshift, deterministic per seed), escaping the deterministic search's
/// worst-case corners. Returns the first embedding found, `Ok(None)` if
/// any restart *exhaustively* proved non-existence, or
/// [`GraphError::BudgetExhausted`] if all restarts were inconclusive.
///
/// # Errors
///
/// As [`embed_tree`].
pub fn embed_tree_randomized(
    guest: &DenseGraph,
    host: &DenseGraph,
    guest_root: NodeId,
    host_root: NodeId,
    restarts: u32,
    budget_per_restart: u64,
) -> Result<Option<Vec<NodeId>>, GraphError> {
    for attempt in 0..restarts.max(1) {
        let seed = 0x9E37_79B9_97F4_A7C5_u64.wrapping_mul(u64::from(attempt) + 1) | 1;
        let mut budget = SearchBudget::new(budget_per_restart);
        match embed_tree_seeded(guest, host, guest_root, host_root, &mut budget, Some(seed)) {
            Ok(Some(map)) => return Ok(Some(map)),
            Ok(None) => return Ok(None), // exhaustive: no embedding exists
            Err(GraphError::BudgetExhausted) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(GraphError::BudgetExhausted)
}

/// Builds the complete binary tree of the given height as a symmetric
/// [`DenseGraph`] (height 0 is a single node; height `h` has `2^(h+1) − 1`
/// nodes). Node 0 is the root; node `i`'s children are `2i+1` and `2i+2`.
///
/// # Panics
///
/// Panics if `height > 30`.
#[must_use]
pub fn complete_binary_tree(height: u32) -> DenseGraph {
    assert!(height <= 30, "tree too large");
    let n = (1usize << (height + 1)) - 1;
    DenseGraph::from_neighbor_fn(n, |u| {
        let u = u as usize;
        let mut v = Vec::new();
        if u > 0 {
            v.push(((u - 1) / 2) as NodeId);
        }
        for c in [2 * u + 1, 2 * u + 2] {
            if c < n {
                v.push(c as NodeId);
            }
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamiltonian::SearchBudget;

    #[test]
    fn complete_binary_tree_shape() {
        let t = complete_binary_tree(3);
        assert_eq!(t.num_nodes(), 15);
        assert_eq!(t.num_edges(), 28);
        assert!(t.is_symmetric());
    }

    #[test]
    fn embeds_path_into_cycle() {
        // Path of 4 nodes into a 6-cycle.
        let guest =
            DenseGraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]).unwrap();
        let host = DenseGraph::from_neighbor_fn(6, |u| vec![(u + 1) % 6, (u + 5) % 6]);
        let map = embed_tree(&guest, &host, 0, 0, &mut SearchBudget::new(10_000))
            .unwrap()
            .expect("path embeds in cycle");
        // Every guest edge must be a host edge.
        for (a, b) in guest.edges() {
            assert!(host.edge_index(map[a as usize], map[b as usize]).is_some());
        }
    }

    #[test]
    fn rejects_when_no_embedding_exists() {
        // A 3-star (claw) cannot embed in a cycle (max degree 2).
        let guest =
            DenseGraph::from_edges(4, [(0, 1), (1, 0), (0, 2), (2, 0), (0, 3), (3, 0)]).unwrap();
        let host = DenseGraph::from_neighbor_fn(8, |u| vec![(u + 1) % 8, (u + 7) % 8]);
        let r = embed_tree(&guest, &host, 0, 0, &mut SearchBudget::new(10_000)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn rejects_non_tree_guest() {
        let triangle =
            DenseGraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]).unwrap();
        let host = DenseGraph::from_neighbor_fn(4, |u| vec![(u + 1) % 4, (u + 3) % 4]);
        assert_eq!(
            embed_tree(&triangle, &host, 0, 0, &mut SearchBudget::new(100)).unwrap_err(),
            GraphError::NotATree
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let guest = complete_binary_tree(2);
        let host = DenseGraph::from_neighbor_fn(32, |u| (0..5).map(|b| u ^ (1 << b)).collect());
        let r = embed_tree(&guest, &host, 0, 0, &mut SearchBudget::new(1));
        assert_eq!(r.unwrap_err(), GraphError::BudgetExhausted);
    }
}
