//! Seeded, deterministic fault schedules: the dynamic half of the fault
//! model.
//!
//! A [`FaultSchedule`] is a time-ordered list of [`ChaosEvent`]s — node and
//! link failures, repairs, undirected cable cuts — that a driver replays
//! against a [`FaultSet`] (and, in `scg-emu`, against a live simulator)
//! with [`FaultSchedule::apply_due`]. Canned shapes cover the lifecycle
//! zoo the paper's static theorems never see:
//!
//! * [`FaultSchedule::single_fault`] — one permanent node fault;
//! * [`FaultSchedule::burst`] — several simultaneous node faults (the
//!   `degree − 1` worst case of the connectivity theorems);
//! * [`FaultSchedule::flapping_link`] — an undirected link that fails and
//!   recovers on a fixed period;
//! * [`FaultSchedule::fault_then_repair`] — a transient node fault;
//! * [`FaultSchedule::random`] — a mixed schedule (permanent faults,
//!   transient faults, link flaps, correlated region faults drawn from a
//!   BFS ball) generated deterministically from one [`XorShift64`] seed.
//!
//! Everything here is a pure function of its inputs: the same seed and
//! spec produce the same event list, so whole chaos runs replay
//! byte-identically (pinned by `tests/faults.rs`).

use scg_perm::XorShift64;

use crate::{DenseGraph, FaultSet, NodeId, UNREACHABLE};

/// One fault-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosEvent {
    /// Fail-stop a node.
    FailNode(NodeId),
    /// Repair a failed node.
    RepairNode(NodeId),
    /// Fail the directed link `u → v`.
    FailLink(NodeId, NodeId),
    /// Repair the directed link `u → v`.
    RepairLink(NodeId, NodeId),
    /// Cut the cable `u ↔ v` (both directions).
    FailLinkUndirected(NodeId, NodeId),
    /// Splice the cable `u ↔ v` back (both directions).
    RepairLinkUndirected(NodeId, NodeId),
}

impl ChaosEvent {
    /// Whether this event degrades the network (as opposed to repairing
    /// it).
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            ChaosEvent::FailNode(_)
                | ChaosEvent::FailLink(_, _)
                | ChaosEvent::FailLinkUndirected(_, _)
        )
    }

    /// A stable label for metrics and tables.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosEvent::FailNode(_) => "fail_node",
            ChaosEvent::RepairNode(_) => "repair_node",
            ChaosEvent::FailLink(_, _) => "fail_link",
            ChaosEvent::RepairLink(_, _) => "repair_link",
            ChaosEvent::FailLinkUndirected(_, _) => "fail_link_undirected",
            ChaosEvent::RepairLinkUndirected(_, _) => "repair_link_undirected",
        }
    }

    /// The stable wire code of this event kind, used by `FAULT_REPORT`
    /// frames in `scg-serve` (and any other serialization): `0` =
    /// fail-node, `1` = repair-node, `2` = fail-link, `3` = repair-link,
    /// `4` = cut cable, `5` = splice cable. [`from_wire`](Self::from_wire)
    /// inverts it.
    #[must_use]
    pub fn kind_code(&self) -> u8 {
        match self {
            ChaosEvent::FailNode(_) => 0,
            ChaosEvent::RepairNode(_) => 1,
            ChaosEvent::FailLink(_, _) => 2,
            ChaosEvent::RepairLink(_, _) => 3,
            ChaosEvent::FailLinkUndirected(_, _) => 4,
            ChaosEvent::RepairLinkUndirected(_, _) => 5,
        }
    }

    /// The event's node operands in wire order: `(node, 0)` for node
    /// events, `(u, v)` for link events.
    #[must_use]
    pub fn wire_args(&self) -> (NodeId, NodeId) {
        match *self {
            ChaosEvent::FailNode(u) | ChaosEvent::RepairNode(u) => (u, 0),
            ChaosEvent::FailLink(u, v)
            | ChaosEvent::RepairLink(u, v)
            | ChaosEvent::FailLinkUndirected(u, v)
            | ChaosEvent::RepairLinkUndirected(u, v) => (u, v),
        }
    }

    /// Decodes a `(kind_code, u, v)` triple back into an event; `None`
    /// for an unknown kind code (the typed-error path of a wire decoder,
    /// never a panic).
    #[must_use]
    pub fn from_wire(kind_code: u8, u: NodeId, v: NodeId) -> Option<ChaosEvent> {
        match kind_code {
            0 => Some(ChaosEvent::FailNode(u)),
            1 => Some(ChaosEvent::RepairNode(u)),
            2 => Some(ChaosEvent::FailLink(u, v)),
            3 => Some(ChaosEvent::RepairLink(u, v)),
            4 => Some(ChaosEvent::FailLinkUndirected(u, v)),
            5 => Some(ChaosEvent::RepairLinkUndirected(u, v)),
            _ => None,
        }
    }

    /// Applies the event to a fault set. Returns whether the set changed
    /// (repairing a live node, for instance, does not).
    pub fn apply(&self, faults: &mut FaultSet) -> bool {
        let before = faults.epoch();
        match *self {
            ChaosEvent::FailNode(u) => {
                faults.fail_node(u);
            }
            ChaosEvent::RepairNode(u) => {
                faults.repair_node(u);
            }
            ChaosEvent::FailLink(u, v) => {
                faults.fail_link(u, v);
            }
            ChaosEvent::RepairLink(u, v) => {
                faults.repair_link(u, v);
            }
            ChaosEvent::FailLinkUndirected(u, v) => faults.fail_link_undirected(u, v),
            ChaosEvent::RepairLinkUndirected(u, v) => faults.repair_link_undirected(u, v),
        }
        faults.epoch() != before
    }
}

/// A [`ChaosEvent`] pinned to a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// The cycle at which the event fires (inclusive).
    pub at: u64,
    /// The event.
    pub event: ChaosEvent,
}

/// Specification for [`FaultSchedule::random`]: how much of each fault
/// flavor to draw, over what horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Events are drawn with firing cycles in `0..horizon`.
    pub horizon: u64,
    /// Node faults that never get repaired.
    pub permanent_node_faults: usize,
    /// Node faults repaired after a random delay in `repair_after`.
    pub transient_node_faults: usize,
    /// Undirected links that fail and recover once each.
    pub link_flaps: usize,
    /// Correlated region faults: all nodes of a BFS ball fail together
    /// and are repaired together.
    pub region_faults: usize,
    /// BFS-ball radius for region faults.
    pub region_radius: u32,
    /// Repair delay range `(min, max)` in cycles, inclusive of `min`.
    pub repair_after: (u64, u64),
    /// Nodes that are never failed (e.g. nodes carrying an embedding).
    pub exclude: Vec<NodeId>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            horizon: 256,
            permanent_node_faults: 1,
            transient_node_faults: 1,
            link_flaps: 1,
            region_faults: 0,
            region_radius: 1,
            repair_after: (16, 64),
            exclude: Vec::new(),
        }
    }
}

/// A replayable, time-ordered fault schedule with an application cursor.
///
/// Events are stored sorted by firing cycle (stable, so same-cycle events
/// keep their construction order); [`FaultSchedule::apply_due`] advances
/// the cursor, and [`FaultSchedule::reset`] rewinds it for an identical
/// replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<TimedEvent>,
    cursor: usize,
}

impl FaultSchedule {
    /// Builds a schedule from an event list (stably sorted by cycle).
    #[must_use]
    pub fn from_events(mut events: Vec<TimedEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events, cursor: 0 }
    }

    /// One permanent node fault at `at`.
    #[must_use]
    pub fn single_fault(at: u64, node: NodeId) -> Self {
        FaultSchedule::from_events(vec![TimedEvent {
            at,
            event: ChaosEvent::FailNode(node),
        }])
    }

    /// Several simultaneous permanent node faults at `at`.
    #[must_use]
    pub fn burst(at: u64, nodes: &[NodeId]) -> Self {
        FaultSchedule::from_events(
            nodes
                .iter()
                .map(|&u| TimedEvent {
                    at,
                    event: ChaosEvent::FailNode(u),
                })
                .collect(),
        )
    }

    /// An undirected link that flaps: fails at `start`, `start + 2 *
    /// period`, … and recovers one `period` after each failure, `flaps`
    /// times in total.
    #[must_use]
    pub fn flapping_link(u: NodeId, v: NodeId, start: u64, period: u64, flaps: usize) -> Self {
        let mut events = Vec::with_capacity(2 * flaps);
        for i in 0..flaps as u64 {
            let t = start + 2 * i * period;
            events.push(TimedEvent {
                at: t,
                event: ChaosEvent::FailLinkUndirected(u, v),
            });
            events.push(TimedEvent {
                at: t + period,
                event: ChaosEvent::RepairLinkUndirected(u, v),
            });
        }
        FaultSchedule::from_events(events)
    }

    /// A transient node fault: fails at `at`, repaired at `repair_at`.
    #[must_use]
    pub fn fault_then_repair(node: NodeId, at: u64, repair_at: u64) -> Self {
        FaultSchedule::from_events(vec![
            TimedEvent {
                at,
                event: ChaosEvent::FailNode(node),
            },
            TimedEvent {
                at: repair_at,
                event: ChaosEvent::RepairNode(node),
            },
        ])
    }

    /// A mixed random schedule over `graph`, deterministic in `seed`:
    /// permanent and transient node faults, undirected link flaps, and
    /// correlated region faults (every non-excluded node within
    /// `spec.region_radius` BFS hops of a random center fails at once and
    /// is repaired at once). Nodes in `spec.exclude` are never failed; the
    /// same seed and spec always produce the same event list.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has no selectable node or link for a requested
    /// fault flavor, or if `spec.repair_after` is an empty range.
    #[must_use]
    pub fn random(graph: &DenseGraph, spec: &ChaosSpec, seed: u64) -> Self {
        let n = graph.num_nodes();
        let selectable = (0..n as NodeId)
            .filter(|u| !spec.exclude.contains(u))
            .count();
        assert!(
            selectable > 0 || spec.permanent_node_faults + spec.transient_node_faults == 0,
            "no selectable node for the requested node faults"
        );
        assert!(
            spec.repair_after.1 >= spec.repair_after.0,
            "empty repair delay range"
        );
        let mut rng = XorShift64::new(seed);
        let pick_node = |rng: &mut XorShift64| loop {
            let u = rng.gen_range(n) as NodeId;
            if !spec.exclude.contains(&u) {
                return u;
            }
        };
        let repair_delay = |rng: &mut XorShift64| {
            spec.repair_after.0 + rng.gen_range_u64(spec.repair_after.1 - spec.repair_after.0 + 1)
        };
        let mut events = Vec::new();
        for _ in 0..spec.permanent_node_faults {
            events.push(TimedEvent {
                at: rng.gen_range_u64(spec.horizon),
                event: ChaosEvent::FailNode(pick_node(&mut rng)),
            });
        }
        for _ in 0..spec.transient_node_faults {
            let u = pick_node(&mut rng);
            let at = rng.gen_range_u64(spec.horizon);
            events.push(TimedEvent {
                at,
                event: ChaosEvent::FailNode(u),
            });
            events.push(TimedEvent {
                at: at + repair_delay(&mut rng),
                event: ChaosEvent::RepairNode(u),
            });
        }
        for _ in 0..spec.link_flaps {
            assert!(graph.num_edges() > 0, "no link to flap");
            let e = rng.gen_range(graph.num_edges());
            let (u, v) = graph.edge_endpoints(e);
            let at = rng.gen_range_u64(spec.horizon);
            events.push(TimedEvent {
                at,
                event: ChaosEvent::FailLinkUndirected(u, v),
            });
            events.push(TimedEvent {
                at: at + repair_delay(&mut rng),
                event: ChaosEvent::RepairLinkUndirected(u, v),
            });
        }
        for _ in 0..spec.region_faults {
            let center = pick_node(&mut rng);
            let at = rng.gen_range_u64(spec.horizon);
            let until = at + repair_delay(&mut rng);
            let dist = graph.bfs_distances(center);
            for u in 0..n as NodeId {
                let d = dist[u as usize];
                if d != UNREACHABLE && d <= spec.region_radius && !spec.exclude.contains(&u) {
                    events.push(TimedEvent {
                        at,
                        event: ChaosEvent::FailNode(u),
                    });
                    events.push(TimedEvent {
                        at: until,
                        event: ChaosEvent::RepairNode(u),
                    });
                }
            }
        }
        FaultSchedule::from_events(events)
    }

    /// The full event list, sorted by cycle.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The cycle of the last event (0 for an empty schedule).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at)
    }

    /// The cycle of the next unapplied event, if any.
    #[must_use]
    pub fn next_at(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Whether every event has been applied (or drained).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Rewinds the cursor for an identical replay.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Applies every event with `at <= now` that the cursor has not passed
    /// yet to `faults`, in order, and returns how many fired. Each applied
    /// event bumps the `scg_chaos_events_total{kind=…}` counter under the
    /// `obs` feature.
    pub fn apply_due(&mut self, now: u64, faults: &mut FaultSet) -> usize {
        let mut fired = 0;
        while let Some(te) = self.events.get(self.cursor) {
            if te.at > now {
                break;
            }
            te.event.apply(faults);
            #[cfg(feature = "obs")]
            crate::obs_hooks::chaos_event(te.event.kind());
            self.cursor += 1;
            fired += 1;
        }
        fired
    }

    /// Advances the cursor past every event with `at <= now` and returns
    /// that slice, *without* applying anything — for drivers (like the
    /// `scg-emu` self-healing loop) that must apply events to richer state
    /// than a bare [`FaultSet`].
    pub fn drain_due(&mut self, now: u64) -> &[TimedEvent] {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        &self.events[start..self.cursor]
    }

    /// The net fault set after replaying the whole schedule.
    #[must_use]
    pub fn final_faults(&self) -> FaultSet {
        let mut faults = FaultSet::new();
        for te in &self.events {
            te.event.apply(&mut faults);
        }
        faults
    }

    /// The peak number of concurrent faults anywhere in the replay,
    /// counting failed nodes plus failed links (an undirected cut counts
    /// once). This is what the `κ = degree` theorems bound: schedules that
    /// keep this below the degree never disconnect the survivors.
    #[must_use]
    pub fn peak_concurrent_faults(&self) -> usize {
        let mut faults = FaultSet::new();
        let mut peak = 0usize;
        let mut i = 0;
        while i < self.events.len() {
            let now = self.events[i].at;
            while i < self.events.len() && self.events[i].at == now {
                self.events[i].event.apply(&mut faults);
                i += 1;
            }
            peak = peak.max(faults.num_failed_nodes() + faults.failed_links().len());
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| {
            vec![(u + 1) % n as NodeId, (u + n as NodeId - 1) % n as NodeId]
        })
    }

    #[test]
    fn wire_codec_round_trips_every_kind() {
        let events = [
            ChaosEvent::FailNode(7),
            ChaosEvent::RepairNode(7),
            ChaosEvent::FailLink(3, 9),
            ChaosEvent::RepairLink(3, 9),
            ChaosEvent::FailLinkUndirected(0, 4),
            ChaosEvent::RepairLinkUndirected(0, 4),
        ];
        for (code, ev) in events.iter().enumerate() {
            assert_eq!(usize::from(ev.kind_code()), code);
            let (u, v) = ev.wire_args();
            assert_eq!(ChaosEvent::from_wire(ev.kind_code(), u, v), Some(*ev));
        }
        // Node events carry a zero second operand and ignore it on decode.
        assert_eq!(ChaosEvent::FailNode(7).wire_args(), (7, 0));
        assert_eq!(
            ChaosEvent::from_wire(0, 7, 99),
            Some(ChaosEvent::FailNode(7))
        );
        // Unknown kind codes are a typed decode failure, not a panic.
        for bad in 6..=u8::MAX {
            assert_eq!(ChaosEvent::from_wire(bad, 0, 0), None);
        }
    }

    #[test]
    fn canned_shapes_have_expected_events() {
        let s = FaultSchedule::single_fault(5, 3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.horizon(), 5);

        let b = FaultSchedule::burst(7, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(b.events().iter().all(|e| e.at == 7 && e.event.is_fault()));

        let f = FaultSchedule::flapping_link(0, 1, 10, 4, 3);
        assert_eq!(f.len(), 6);
        assert_eq!(f.final_faults(), FaultSet::new(), "flaps end repaired");

        let r = FaultSchedule::fault_then_repair(9, 2, 20);
        assert_eq!(r.final_faults(), FaultSet::new());
        assert_eq!(r.peak_concurrent_faults(), 1);
    }

    #[test]
    fn apply_due_fires_in_order_and_once() {
        let mut s = FaultSchedule::fault_then_repair(4, 3, 8);
        let mut faults = FaultSet::new();
        assert_eq!(s.apply_due(2, &mut faults), 0);
        assert_eq!(s.apply_due(3, &mut faults), 1);
        assert!(faults.node_failed(4));
        assert_eq!(s.apply_due(3, &mut faults), 0, "cursor does not re-fire");
        assert_eq!(s.next_at(), Some(8));
        assert_eq!(s.apply_due(100, &mut faults), 1);
        assert!(faults.is_empty());
        assert!(s.is_exhausted());
        s.reset();
        assert_eq!(s.apply_due(100, &mut faults), 2, "reset replays");
    }

    #[test]
    fn drain_due_returns_slice_without_applying() {
        let mut s = FaultSchedule::burst(5, &[1, 2]);
        assert!(s.drain_due(4).is_empty());
        let due = s.drain_due(5);
        assert_eq!(due.len(), 2);
        assert!(s.is_exhausted());
    }

    #[test]
    fn random_schedules_are_seed_deterministic() {
        let g = ring(12);
        let spec = ChaosSpec {
            horizon: 100,
            permanent_node_faults: 2,
            transient_node_faults: 2,
            link_flaps: 2,
            region_faults: 1,
            region_radius: 1,
            repair_after: (5, 10),
            exclude: vec![0, 1],
        };
        let a = FaultSchedule::random(&g, &spec, 42);
        let b = FaultSchedule::random(&g, &spec, 42);
        assert_eq!(a, b, "same seed, same schedule");
        let c = FaultSchedule::random(&g, &spec, 43);
        assert_ne!(a, c, "different seed diverges");
        // Exclusions are honored by every fault flavor that picks nodes.
        for te in a.events() {
            if let ChaosEvent::FailNode(u) | ChaosEvent::RepairNode(u) = te.event {
                assert!(u > 1, "excluded node {u} scheduled");
            }
        }
    }

    #[test]
    fn region_fault_fails_the_whole_ball_and_repairs_it() {
        let g = ring(10);
        let spec = ChaosSpec {
            horizon: 50,
            permanent_node_faults: 0,
            transient_node_faults: 0,
            link_flaps: 0,
            region_faults: 1,
            region_radius: 1,
            repair_after: (5, 5),
            exclude: Vec::new(),
        };
        let s = FaultSchedule::random(&g, &spec, 7);
        // Radius-1 ball on a ring: center + 2 neighbors, failed and
        // repaired together.
        assert_eq!(s.len(), 6);
        assert_eq!(s.peak_concurrent_faults(), 3);
        assert_eq!(s.final_faults(), FaultSet::new());
    }
}
