//! Vertex-transitivity spot checks.
//!
//! Cayley graphs are vertex-transitive (Akers & Krishnamurthy), which the
//! paper leans on throughout (single-source statistics, node-symmetric
//! algorithms). This check does not prove transitivity — that would require
//! exhibiting automorphisms — but compares the per-source distance profiles,
//! which are invariants every vertex-transitive graph must share across
//! sources. It is exact enough to catch any construction bug in a generator
//! set.

use crate::dense::DenseGraph;
use crate::{Dist, NodeId, UNREACHABLE};

/// Returns `true` if the distance histogram from each of `sample` evenly
/// spaced source nodes (always including node 0) is identical.
///
/// A `false` return definitively shows the graph is *not* vertex-transitive;
/// `true` means the sampled invariants are consistent with transitivity.
///
/// # Panics
///
/// Panics if the graph is empty.
#[must_use]
pub fn looks_vertex_transitive(graph: &DenseGraph, sample: usize) -> bool {
    let n = graph.num_nodes();
    assert!(n > 0, "empty graph");
    let reference = profile(graph, 0);
    let sample = sample.clamp(1, n);
    let stride = n / sample;
    (1..sample).all(|i| profile(graph, (i * stride.max(1)) as NodeId) == reference)
}

fn profile(graph: &DenseGraph, src: NodeId) -> Vec<u64> {
    let mut hist: Vec<u64> = Vec::new();
    for &d in &graph.bfs_distances(src) {
        if d == UNREACHABLE {
            continue;
        }
        let d = d as usize;
        if hist.len() <= d {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// The eccentricity (largest finite BFS distance) of `src`.
#[must_use]
pub fn eccentricity(graph: &DenseGraph, src: NodeId) -> Dist {
    graph
        .bfs_distances(src)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_transitive() {
        let ring = DenseGraph::from_neighbor_fn(8, |u| vec![(u + 1) % 8, (u + 7) % 8]);
        assert!(looks_vertex_transitive(&ring, 8));
        assert_eq!(eccentricity(&ring, 3), 4);
    }

    #[test]
    fn path_is_not_transitive() {
        let path = DenseGraph::from_neighbor_fn(5, |u| {
            let mut v = Vec::new();
            if u > 0 {
                v.push(u - 1);
            }
            if u < 4 {
                v.push(u + 1);
            }
            v
        });
        assert!(!looks_vertex_transitive(&path, 5));
    }
}
