//! `obs`-feature hooks: survivor-view audit timings.
//!
//! Compiled only with the `obs` cargo feature; with it off, none of this
//! exists and the audited functions carry zero instrumentation cost. The
//! hooks only *record* — they never change control flow, so audit results
//! are identical with and without the feature.

use scg_obs::{EventTrace, Registry, Timer};

/// Wall-time bucket bounds in microseconds: 1 µs .. 10 s, decades.
pub(crate) const MICROS_BOUNDS: [u64; 8] =
    [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Records one applied chaos event on `scg_chaos_events_total{kind=…}` and
/// the event trace.
pub(crate) fn chaos_event(kind: &'static str) {
    EventTrace::global().record("chaos.event", &[]);
    Registry::global()
        .counter("scg_chaos_events_total", &[("kind", kind)])
        .inc();
}

/// A drop-timer feeding `scg_fault_audit_micros{audit=…}` and emitting a
/// trace event when the audit finishes.
pub(crate) fn audit_timer(audit: &'static str) -> Timer {
    EventTrace::global().record("fault.audit", &[]);
    Registry::global()
        .counter("scg_fault_audits_total", &[("audit", audit)])
        .inc();
    Timer::new(Registry::global().histogram(
        "scg_fault_audit_micros",
        &[("audit", audit)],
        &MICROS_BOUNDS,
    ))
}
