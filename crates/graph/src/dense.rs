use std::collections::VecDeque;

use crate::error::GraphError;
use crate::{Dist, NodeId, UNREACHABLE};

/// A directed graph in compressed-sparse-row form with contiguous node ids
/// `0..num_nodes`.
///
/// All networks in this workspace are regular directed Cayley graphs, so the
/// CSR layout is both compact and cache-friendly. Out-neighbor lists are kept
/// sorted, which makes edge lookup a binary search and lets two graphs be
/// compared structurally with `==`.
///
/// # Examples
///
/// ```
/// use scg_graph::DenseGraph;
///
/// let ring = DenseGraph::from_neighbor_fn(5, |u| vec![(u + 1) % 5]);
/// assert_eq!(ring.num_edges(), 5);
/// assert_eq!(ring.out_neighbors(3), &[4]);
/// assert!(!ring.is_symmetric());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl DenseGraph {
    /// Builds a graph by evaluating `neighbors` for every node.
    ///
    /// Duplicate targets are retained (parallel edges are meaningful for
    /// multigraph Cayley constructions); each list is sorted.
    ///
    /// # Panics
    ///
    /// Panics if any returned neighbor id is `>= num_nodes`.
    #[must_use]
    pub fn from_neighbor_fn<F>(num_nodes: usize, mut neighbors: F) -> Self
    where
        F: FnMut(NodeId) -> Vec<NodeId>,
    {
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for u in 0..num_nodes {
            let mut out = neighbors(u as NodeId);
            out.sort_unstable();
            for &v in &out {
                assert!(
                    (v as usize) < num_nodes,
                    "neighbor {v} of node {u} out of range"
                );
            }
            targets.extend_from_slice(&out);
            offsets.push(targets.len());
        }
        DenseGraph { offsets, targets }
    }

    /// Builds a `degree`-regular graph in parallel: `fill(u, slot)` writes
    /// the `degree` out-neighbors of `u` into `slot`. Because the graph is
    /// regular, the CSR offsets are known up front (`u · degree`) and each
    /// node's target slice can be filled independently, so construction is
    /// chunked over scoped OS threads. Each list is sorted, exactly as
    /// [`DenseGraph::from_neighbor_fn`] does — the two constructors produce
    /// structurally equal graphs for the same neighbor sets.
    ///
    /// # Panics
    ///
    /// Panics if any written neighbor id is `>= num_nodes`.
    #[must_use]
    pub fn from_regular_fn_parallel<F>(num_nodes: usize, degree: usize, fill: F) -> Self
    where
        F: Fn(NodeId, &mut [NodeId]) + Sync,
    {
        let offsets = (0..=num_nodes).map(|u| u * degree).collect();
        let mut targets = vec![0 as NodeId; num_nodes * degree];
        if num_nodes > 0 && degree > 0 {
            let threads = std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(num_nodes);
            let chunk = num_nodes.div_ceil(threads);
            std::thread::scope(|scope| {
                for (ci, window) in targets.chunks_mut(chunk * degree).enumerate() {
                    let fill = &fill;
                    scope.spawn(move || {
                        let base = ci * chunk;
                        for (off, slot) in window.chunks_mut(degree).enumerate() {
                            let u = (base + off) as NodeId;
                            fill(u, slot);
                            slot.sort_unstable();
                            for &v in slot.iter() {
                                assert!(
                                    (v as usize) < num_nodes,
                                    "neighbor {v} of node {u} out of range"
                                );
                            }
                        }
                    });
                }
            });
        }
        DenseGraph { offsets, targets }
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is out of range.
    pub fn from_edges(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, GraphError> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); num_nodes];
        for (u, v) in edges {
            for x in [u, v] {
                if x as usize >= num_nodes {
                    return Err(GraphError::NodeOutOfRange {
                        node: u64::from(x),
                        num_nodes,
                    });
                }
            }
            adj[u as usize].push(v);
        }
        Ok(DenseGraph::from_neighbor_fn(num_nodes, |u| {
            std::mem::take(&mut adj[u as usize])
        }))
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted out-neighbor list of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Out-degree of `u`.
    #[must_use]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).len()
    }

    /// The CSR edge-index range of `u`'s out-edges: `out_neighbors(u)[i]`
    /// is the target of edge `edge_range(u).start + i`. Unlike
    /// [`DenseGraph::edge_index`], this is unambiguous in the presence of
    /// parallel edges.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn edge_range(&self, u: NodeId) -> std::ops::Range<usize> {
        let u = u as usize;
        self.offsets[u]..self.offsets[u + 1]
    }

    /// The CSR index of directed edge `(u, v)`, if present. Edge indices are
    /// dense in `0..num_edges()` and are what congestion accounting uses.
    /// With parallel edges, one of the duplicates' indices is returned.
    #[must_use]
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let base = self.offsets[u as usize];
        let list = self.out_neighbors(u);
        list.binary_search(&v).ok().map(|i| base + i)
    }

    /// The endpoints `(u, v)` of the directed edge with CSR index `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= num_edges()`.
    #[must_use]
    pub fn edge_endpoints(&self, e: usize) -> (NodeId, NodeId) {
        assert!(e < self.num_edges(), "edge index out of range");
        let u = match self.offsets.binary_search(&e) {
            // `e` may coincide with the offset of an empty run; advance to the
            // last node whose range starts at or before `e`.
            Ok(mut i) => {
                while self.offsets[i + 1] == e {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (u as NodeId, self.targets[e])
    }

    /// Iterates all directed edges in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.out_neighbors(u as NodeId)
                .iter()
                .map(move |&v| (u as NodeId, v))
        })
    }

    /// Whether every directed edge has an antiparallel partner, i.e. the
    /// graph can be viewed as undirected. Inverse-closed generator sets
    /// always produce symmetric Cayley graphs.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.edge_index(v, u).is_some())
    }

    /// Whether the graph is `d`-regular (every out-degree equals `d`).
    #[must_use]
    pub fn is_regular(&self) -> Option<usize> {
        let d = self.out_degree(0);
        (0..self.num_nodes())
            .all(|u| self.out_degree(u as NodeId) == d)
            .then_some(d)
    }

    /// BFS distances from `src` following out-edges; unreachable nodes get
    /// [`UNREACHABLE`](crate::UNREACHABLE).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Dist> {
        assert!((src as usize) < self.num_nodes(), "source out of range");
        let mut dist = vec![UNREACHABLE; self.num_nodes()];
        let mut queue = VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in self.out_neighbors(u) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// BFS predecessor array from `src`: `parent[v]` is the node from which
    /// `v` was first reached (`parent[src] = src`; unreachable nodes keep
    /// `NodeId::MAX`). Useful for extracting shortest paths.
    #[must_use]
    pub fn bfs_parents(&self, src: NodeId) -> Vec<NodeId> {
        assert!((src as usize) < self.num_nodes(), "source out of range");
        let mut parent = vec![NodeId::MAX; self.num_nodes()];
        let mut dist = vec![UNREACHABLE; self.num_nodes()];
        let mut queue = VecDeque::new();
        parent[src as usize] = src;
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in self.out_neighbors(u) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = dist[u as usize] + 1;
                    parent[v as usize] = u;
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// A shortest path `src → dst` (inclusive of both endpoints), or `None`
    /// if unreachable.
    #[must_use]
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let parent = self.bfs_parents(src);
        if parent[dst as usize] == NodeId::MAX {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The reverse graph (every edge flipped). For symmetric graphs this is
    /// structurally equal to `self`.
    #[must_use]
    pub fn reversed(&self) -> DenseGraph {
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_nodes()];
        for (u, v) in self.edges() {
            rev[v as usize].push(u);
        }
        DenseGraph::from_neighbor_fn(self.num_nodes(), |u| std::mem::take(&mut rev[u as usize]))
    }

    /// A 2-coloring by BFS layers if one exists (treating edges as
    /// undirected), i.e. whether the graph is bipartite. Cayley graphs of
    /// even-permutation-free generator sets (e.g. star graphs, whose
    /// generators are all transpositions) are bipartite by parity.
    #[must_use]
    pub fn bipartition(&self) -> Option<Vec<bool>> {
        let n = self.num_nodes();
        // "Uncolored" is `None`, not a sentinel value — same convention as
        // the emulator's `NextHop`, which retired the old `u8::MAX` slots.
        let mut color: Vec<Option<bool>> = vec![None; n];
        let rev = self.reversed();
        for start in 0..n {
            if color[start].is_some() {
                continue;
            }
            color[start] = Some(false);
            let mut queue = VecDeque::from([start as NodeId]);
            while let Some(u) = queue.pop_front() {
                let Some(cu) = color[u as usize] else {
                    continue;
                };
                for &v in self
                    .out_neighbors(u)
                    .iter()
                    .chain(rev.out_neighbors(u).iter())
                {
                    match color[v as usize] {
                        None => {
                            color[v as usize] = Some(!cu);
                            queue.push_back(v);
                        }
                        Some(c) if c == cu => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        Some(color.into_iter().map(|c| c == Some(true)).collect())
    }

    /// Whether every node is reachable from node 0 (for vertex-transitive
    /// graphs this is full strong connectivity).
    #[must_use]
    pub fn is_connected_from_zero(&self) -> bool {
        self.num_nodes() == 0 || self.bfs_distances(0).iter().all(|&d| d != UNREACHABLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| vec![(u + 1) % n as NodeId])
    }

    #[test]
    fn csr_basics() {
        let g = cycle(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(2), &[3]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.is_regular(), Some(1));
        assert!(!g.is_symmetric());
    }

    #[test]
    fn parallel_regular_matches_sequential() {
        let n = 97; // prime, so chunk boundaries never align with structure
        let neigh = |u: NodeId| vec![(u + 1) % 97, (u + 13) % 97, (u + 96) % 97];
        let seq = DenseGraph::from_neighbor_fn(n, neigh);
        let par = DenseGraph::from_regular_fn_parallel(n, 3, |u, slot| {
            slot.copy_from_slice(&neigh(u));
        });
        assert_eq!(par, seq);
        assert_eq!(par.is_regular(), Some(3));
    }

    #[test]
    fn parallel_regular_handles_degenerate_sizes() {
        let empty = DenseGraph::from_regular_fn_parallel(0, 3, |_, _| {});
        assert_eq!(empty.num_nodes(), 0);
        let isolated = DenseGraph::from_regular_fn_parallel(4, 0, |_, _| {});
        assert_eq!(isolated.num_edges(), 0);
        assert_eq!(isolated.num_nodes(), 4);
    }

    #[test]
    #[should_panic] // range assertion fires inside a scoped worker thread
    fn parallel_regular_validates_targets() {
        let _ = DenseGraph::from_regular_fn_parallel(3, 1, |_, slot| slot[0] = 9);
    }

    #[test]
    fn from_edges_validates() {
        assert!(DenseGraph::from_edges(2, [(0, 5)]).is_err());
        let g = DenseGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_index_roundtrip() {
        let g = DenseGraph::from_edges(4, [(0, 1), (0, 3), (1, 2), (3, 0)]).unwrap();
        for (u, v) in g.edges() {
            let e = g.edge_index(u, v).unwrap();
            assert_eq!(g.edge_endpoints(e), (u, v));
        }
        assert_eq!(g.edge_index(0, 2), None);
    }

    #[test]
    fn edge_endpoints_skips_isolated_nodes() {
        // Node 1 has no out-edges; endpoints of the edge after the empty run
        // must still resolve to node 2.
        let g = DenseGraph::from_edges(3, [(0, 1), (2, 0)]).unwrap();
        assert_eq!(g.edge_endpoints(1), (2, 0));
    }

    #[test]
    fn bfs_on_cycle() {
        let g = cycle(6);
        let d = g.bfs_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        assert!(g.is_connected_from_zero());
    }

    #[test]
    fn shortest_path_follows_parents() {
        let g = cycle(5);
        assert_eq!(g.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
        let disconnected = DenseGraph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(disconnected.shortest_path(0, 2), None);
        assert!(!disconnected.is_connected_from_zero());
    }

    #[test]
    fn reversed_flips_edges() {
        let g = cycle(4);
        let r = g.reversed();
        assert_eq!(r.out_neighbors(1), &[0]);
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn bipartition_of_even_cycle() {
        let g = DenseGraph::from_neighbor_fn(6, |u| vec![(u + 1) % 6, (u + 5) % 6]);
        let colors = g.bipartition().expect("even cycle is bipartite");
        for (u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
    }

    #[test]
    fn odd_cycle_is_not_bipartite() {
        let g = DenseGraph::from_neighbor_fn(5, |u| vec![(u + 1) % 5, (u + 4) % 5]);
        assert!(g.bipartition().is_none());
    }

    #[test]
    fn bipartition_handles_disconnected_graphs() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        assert!(g.bipartition().is_some());
    }

    #[test]
    fn symmetric_detection() {
        let undirected = DenseGraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        assert!(undirected.is_symmetric());
    }
}
