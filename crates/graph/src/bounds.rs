//! Universal diameter lower bounds.
//!
//! The paper's optimality arguments (Corollaries 2 and 3) compare super
//! Cayley graphs against *any* network of the same size and degree by way of
//! the universal diameter lower bound `DL(d, N)`: a node of out-degree `d`
//! can reach at most `d^t` new nodes at step `t`, so
//! `N <= 1 + d + d² + … + d^D` forces `D >= DL(d, N)`.

/// The smallest `D` with `1 + d + d² + … + d^D >= n` — the directed Moore
/// bound. Returns 0 when `n <= 1`.
///
/// # Panics
///
/// Panics if `d == 0` and `n > 1` (no such `D` exists).
#[must_use]
pub fn moore_diameter_lower_bound(d: u64, n: u64) -> u32 {
    if n <= 1 {
        return 0;
    }
    assert!(d >= 1, "a degree-0 graph cannot reach {n} nodes");
    let mut reach: u128 = 1;
    let mut frontier: u128 = 1;
    let mut depth = 0u32;
    while reach < u128::from(n) {
        frontier = frontier.saturating_mul(u128::from(d));
        reach = reach.saturating_add(frontier);
        depth += 1;
    }
    depth
}

/// The undirected Moore bound: smallest `D` with
/// `1 + d·( (d-1)^D - 1 ) / (d - 2) >= n` (for `d >= 3`), i.e. each step
/// beyond the first can only fan out `d - 1` ways.
///
/// Returns 0 when `n <= 1`.
///
/// # Panics
///
/// Panics if `d == 0` and `n > 1`.
#[must_use]
pub fn moore_diameter_lower_bound_undirected(d: u64, n: u64) -> u32 {
    if n <= 1 {
        return 0;
    }
    assert!(d >= 1, "a degree-0 graph cannot reach {n} nodes");
    let mut reach: u128 = 1;
    let mut frontier: u128 = 1;
    let mut depth = 0u32;
    while reach < u128::from(n) {
        let fanout = if depth == 0 {
            d
        } else {
            d.saturating_sub(1).max(1)
        };
        frontier = frontier.saturating_mul(u128::from(fanout));
        reach = reach.saturating_add(frontier);
        depth += 1;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert_eq!(moore_diameter_lower_bound(3, 0), 0);
        assert_eq!(moore_diameter_lower_bound(3, 1), 0);
        assert_eq!(moore_diameter_lower_bound_undirected(3, 1), 0);
    }

    #[test]
    fn directed_bound_matches_geometric_series() {
        // 1 + 2 + 4 = 7 ≥ 7 at D = 2; 8 needs D = 3.
        assert_eq!(moore_diameter_lower_bound(2, 7), 2);
        assert_eq!(moore_diameter_lower_bound(2, 8), 3);
        // degree 1: a ring; reach after D steps is D + 1.
        assert_eq!(moore_diameter_lower_bound(1, 10), 9);
    }

    #[test]
    fn undirected_bound_is_weaker_or_equal_fanout() {
        // Petersen graph: d = 3, N = 10, undirected Moore bound = 2 (1+3+6).
        assert_eq!(moore_diameter_lower_bound_undirected(3, 10), 2);
        // Directed bound for the same parameters is also 2 (1+3+9 = 13 ≥ 10).
        assert_eq!(moore_diameter_lower_bound(3, 10), 2);
        // But undirected grows slower: 1+3+6+12 = 22 < 23.
        assert_eq!(moore_diameter_lower_bound_undirected(3, 23), 4);
        assert_eq!(moore_diameter_lower_bound(3, 23), 3);
    }

    #[test]
    fn bounds_never_exceed_actual_small_examples() {
        // 5-cycle (d = 2, N = 5) has diameter 2; bound must be ≤ 2.
        assert!(moore_diameter_lower_bound(2, 5) <= 2);
    }

    #[test]
    fn saturating_arithmetic_handles_huge_n() {
        // Must terminate even with extreme parameters.
        assert!(moore_diameter_lower_bound(2, u64::MAX) >= 62);
        assert!(moore_diameter_lower_bound_undirected(1, 100) >= 1);
    }
}
