//! Fail-stop fault model: failed nodes and directed links, survivor views,
//! and exact connectivity audits.
//!
//! The paper's networks inherit the star/rotator property that (vertex)
//! connectivity equals node degree, so they tolerate up to `degree − 1`
//! arbitrary fail-stop failures without disconnecting the survivors. This
//! module supplies the machinery to check that computationally:
//!
//! * [`FaultSet`] — a set of failed nodes and failed directed links, with a
//!   seeded random sampler ([`FaultSet::random_nodes`],
//!   [`FaultSet::random_links`]);
//! * [`SurvivorView`] — a zero-copy view of a [`DenseGraph`] that filters
//!   failed nodes and links out of every neighbor scan;
//! * [`SurvivorView::vertex_connectivity`] /
//!   [`SurvivorView::edge_connectivity`] — exact Menger-style audits via
//!   unit-capacity max-flow with BFS augmenting paths;
//! * [`SurvivorView::component_census`] — how the survivor graph shatters
//!   once the fault budget is exceeded.
//!
//! The model is fail-stop, but no longer static: faults can be *repaired*
//! ([`FaultSet::repair_node`], [`FaultSet::repair_link`]) and merged
//! ([`FaultSet::merge`]), and every mutation bumps a monotonically
//! increasing [`FaultSet::epoch`] so routing-table consumers can detect
//! staleness without diffing sets. Timed fault/repair sequences (flapping
//! links, correlated region faults) live in the [`chaos`](crate::chaos)
//! module.
//!
//! # Examples
//!
//! ```
//! use scg_graph::{FaultSet, SurvivorView, DenseGraph};
//!
//! // An undirected 6-ring has connectivity 2 ...
//! let ring = DenseGraph::from_neighbor_fn(6, |u| vec![(u + 1) % 6, (u + 5) % 6]);
//! assert_eq!(scg_graph::vertex_connectivity(&ring), 2);
//!
//! // ... so one failed node leaves the survivors connected ...
//! let mut faults = FaultSet::new();
//! faults.fail_node(3);
//! assert!(SurvivorView::new(&ring, &faults).is_strongly_connected());
//!
//! // ... and two failures can shatter it.
//! faults.fail_node(0);
//! let census = SurvivorView::new(&ring, &faults).component_census();
//! assert_eq!(census.sizes, vec![2, 2]);
//! ```

use std::collections::{HashSet, VecDeque};

use scg_perm::cast::len_u32;
use scg_perm::XorShift64;

use crate::{DenseGraph, Dist, NodeId, UNREACHABLE};

/// A set of fail-stop faults: failed nodes and failed directed links.
///
/// A failed node blocks every link into and out of it; a failed link `(u,
/// v)` blocks only that direction (fail the antiparallel link too, or use
/// [`FaultSet::fail_link_undirected`], to model an undirected cable cut).
///
/// Every mutation that changes the set bumps [`FaultSet::epoch`], a
/// monotone counter that lets derived state (next-hop tables, plan-cache
/// entries) detect that it was built against an older version of *this*
/// fault set. Equality compares the faults only, never the epoch.
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    nodes: HashSet<NodeId>,
    links: HashSet<(NodeId, NodeId)>,
    epoch: u64,
}

impl PartialEq for FaultSet {
    fn eq(&self, other: &Self) -> bool {
        // The epoch is a staleness cursor, not part of the value: two sets
        // holding the same faults are equal however they got there.
        self.nodes == other.nodes && self.links == other.links
    }
}

impl Eq for FaultSet {}

impl FaultSet {
    /// An empty fault set at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// The mutation epoch: starts at 0 and increments on every call that
    /// actually changes the set (fail, repair, merge, clear). Consumers
    /// that bake this set into derived state (e.g. a survivor next-hop
    /// table) can remember the epoch they built against and compare.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Marks node `u` failed. Returns whether it was previously alive.
    pub fn fail_node(&mut self, u: NodeId) -> bool {
        let changed = self.nodes.insert(u);
        self.epoch += u64::from(changed);
        changed
    }

    /// Repairs node `u`. Returns whether it was failed.
    pub fn repair_node(&mut self, u: NodeId) -> bool {
        let changed = self.nodes.remove(&u);
        self.epoch += u64::from(changed);
        changed
    }

    /// Marks the directed link `u → v` failed. Returns whether it was
    /// previously alive.
    pub fn fail_link(&mut self, u: NodeId, v: NodeId) -> bool {
        let changed = self.links.insert((u, v));
        self.epoch += u64::from(changed);
        changed
    }

    /// Repairs the directed link `u → v`. Returns whether it was failed.
    pub fn repair_link(&mut self, u: NodeId, v: NodeId) -> bool {
        let changed = self.links.remove(&(u, v));
        self.epoch += u64::from(changed);
        changed
    }

    /// Marks both `u → v` and `v → u` failed (an undirected cable cut).
    pub fn fail_link_undirected(&mut self, u: NodeId, v: NodeId) {
        let changed = self.links.insert((u, v)) | self.links.insert((v, u));
        self.epoch += u64::from(changed);
    }

    /// Repairs both `u → v` and `v → u` (undoes an undirected cable cut).
    pub fn repair_link_undirected(&mut self, u: NodeId, v: NodeId) {
        let changed = self.links.remove(&(u, v)) | self.links.remove(&(v, u));
        self.epoch += u64::from(changed);
    }

    /// Unions `other`'s faults into this set. Returns whether anything new
    /// was added (the epoch bumps once if so).
    pub fn merge(&mut self, other: &FaultSet) -> bool {
        let (n0, l0) = (self.nodes.len(), self.links.len());
        self.nodes.extend(other.nodes.iter().copied());
        self.links.extend(other.links.iter().copied());
        let changed = self.nodes.len() != n0 || self.links.len() != l0;
        self.epoch += u64::from(changed);
        changed
    }

    /// Whether node `u` is failed.
    #[must_use]
    pub fn node_failed(&self, u: NodeId) -> bool {
        self.nodes.contains(&u)
    }

    /// Whether the directed link `u → v` itself is failed (endpoint health
    /// not considered; most callers want [`FaultSet::blocks`]).
    #[must_use]
    pub fn link_failed(&self, u: NodeId, v: NodeId) -> bool {
        self.links.contains(&(u, v))
    }

    /// Whether a hop `u → v` is unusable: the link is failed or either
    /// endpoint is a failed node.
    #[must_use]
    pub fn blocks(&self, u: NodeId, v: NodeId) -> bool {
        self.node_failed(u) || self.node_failed(v) || self.link_failed(u, v)
    }

    /// Number of failed nodes.
    #[must_use]
    pub fn num_failed_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of explicitly failed directed links (links blocked only
    /// because an endpoint died are not counted).
    #[must_use]
    pub fn num_failed_links(&self) -> usize {
        self.links.len()
    }

    /// Whether no fault has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }

    /// The failed nodes, sorted ascending.
    #[must_use]
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.nodes.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// The failed links, sorted ascending, with antiparallel pairs
    /// collapsed: a cut recorded by [`FaultSet::fail_link_undirected`]
    /// (both directions failed) is reported once as `(min, max)`, matching
    /// how it was failed, while a one-way cut keeps its direction. Use
    /// [`FaultSet::failed_links_directed`] for the raw directed set.
    #[must_use]
    pub fn failed_links(&self) -> Vec<(NodeId, NodeId)> {
        let mut out: Vec<(NodeId, NodeId)> = self
            .links
            .iter()
            .copied()
            .filter(|&(u, v)| u <= v || !self.links.contains(&(v, u)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Every explicitly failed directed link, sorted ascending — an
    /// undirected cut appears as both of its directions.
    #[must_use]
    pub fn failed_links_directed(&self) -> Vec<(NodeId, NodeId)> {
        let mut out: Vec<(NodeId, NodeId)> = self.links.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Forgets all faults (bumps the epoch if anything was recorded).
    pub fn clear(&mut self) {
        let changed = !self.is_empty();
        self.nodes.clear();
        self.links.clear();
        self.epoch += u64::from(changed);
    }

    /// Samples `count` distinct failed nodes uniformly from
    /// `0..num_nodes`, never picking a node listed in `exclude` (e.g. the
    /// source and destination of a route under test).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` candidate nodes exist.
    #[must_use]
    pub fn random_nodes(
        num_nodes: usize,
        count: usize,
        exclude: &[NodeId],
        rng: &mut XorShift64,
    ) -> FaultSet {
        let excluded: HashSet<NodeId> = exclude.iter().copied().collect();
        assert!(
            count <= num_nodes.saturating_sub(excluded.len()),
            "cannot sample {count} failed nodes from {num_nodes} candidates"
        );
        let mut set = FaultSet::new();
        while set.nodes.len() < count {
            let u = rng.gen_range(num_nodes) as NodeId;
            if !excluded.contains(&u) {
                set.nodes.insert(u);
            }
        }
        set
    }

    /// Samples `count` distinct failed directed links uniformly from the
    /// links of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has fewer than `count` directed links.
    #[must_use]
    pub fn random_links(graph: &DenseGraph, count: usize, rng: &mut XorShift64) -> FaultSet {
        let m = graph.num_edges();
        assert!(count <= m, "cannot sample {count} failed links from {m}");
        let mut set = FaultSet::new();
        let mut picked = HashSet::new();
        while picked.len() < count {
            let e = rng.gen_range(m);
            if picked.insert(e) {
                let (u, v) = graph.edge_endpoints(e);
                set.links.insert((u, v));
            }
        }
        set
    }
}

/// Census of the (weakly) connected components of a survivor graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentCensus {
    /// Component sizes, largest first. Empty iff no node survives.
    pub sizes: Vec<usize>,
}

impl ComponentCensus {
    /// Number of components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 if no node survives).
    #[must_use]
    pub fn largest(&self) -> usize {
        self.sizes.first().copied().unwrap_or(0)
    }

    /// Total surviving nodes.
    #[must_use]
    pub fn total(&self) -> usize {
        self.sizes.iter().sum()
    }
}

/// A read-only view of a [`DenseGraph`] with a [`FaultSet`] applied: failed
/// nodes disappear and blocked links are filtered out of every neighbor
/// scan. No CSR data is copied — the view borrows the graph and the faults.
#[derive(Debug, Clone, Copy)]
pub struct SurvivorView<'a> {
    graph: &'a DenseGraph,
    faults: &'a FaultSet,
}

impl<'a> SurvivorView<'a> {
    /// Creates a view of `graph` under `faults`.
    #[must_use]
    pub fn new(graph: &'a DenseGraph, faults: &'a FaultSet) -> Self {
        SurvivorView { graph, faults }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &'a DenseGraph {
        self.graph
    }

    /// The applied faults.
    #[must_use]
    pub fn faults(&self) -> &'a FaultSet {
        self.faults
    }

    /// Whether node `u` survives.
    #[must_use]
    pub fn is_alive(&self, u: NodeId) -> bool {
        !self.faults.node_failed(u)
    }

    /// Number of surviving nodes.
    #[must_use]
    pub fn num_live_nodes(&self) -> usize {
        (0..self.graph.num_nodes())
            .filter(|&u| self.is_alive(u as NodeId))
            .count()
    }

    /// The surviving nodes, ascending.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.graph.num_nodes() as NodeId).filter(move |&u| self.is_alive(u))
    }

    /// Surviving out-neighbors of `u` (empty if `u` itself is failed).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let alive = self.is_alive(u);
        self.graph
            .out_neighbors(u)
            .iter()
            .copied()
            .filter(move |&v| alive && !self.faults.blocks(u, v))
    }

    /// BFS distances from `src` over surviving out-links; failed and
    /// unreachable nodes get [`UNREACHABLE`]. A failed `src` reaches
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Dist> {
        let n = self.graph.num_nodes();
        assert!((src as usize) < n, "source out of range");
        let mut dist = vec![UNREACHABLE; n];
        if !self.is_alive(src) {
            return dist;
        }
        let mut queue = VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for v in self.out_neighbors(u) {
                if dist[v as usize] == UNREACHABLE {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether an explicit node path survives intact: every node on it is
    /// alive and every consecutive hop is unblocked. An empty path is not
    /// live; a single-node path is live iff its node is. Hops are *not*
    /// checked for host adjacency — pair with a validated path (e.g. an
    /// embedding hyperpath) when adjacency matters.
    #[must_use]
    pub fn path_is_live(&self, path: &[NodeId]) -> bool {
        match path {
            [] => false,
            [u] => self.is_alive(*u),
            _ => self.is_alive(path[0]) && path.windows(2).all(|w| !self.faults.blocks(w[0], w[1])),
        }
    }

    /// A shortest surviving path `src → dst` (inclusive), or `None` if no
    /// fault-free path exists.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    #[must_use]
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let n = self.graph.num_nodes();
        assert!(
            (src as usize) < n && (dst as usize) < n,
            "node out of range"
        );
        if !self.is_alive(src) || !self.is_alive(dst) {
            return None;
        }
        let mut parent = vec![NodeId::MAX; n];
        let mut queue = VecDeque::new();
        parent[src as usize] = src;
        queue.push_back(src);
        'bfs: while let Some(u) = queue.pop_front() {
            for v in self.out_neighbors(u) {
                if parent[v as usize] == NodeId::MAX {
                    parent[v as usize] = u;
                    if v == dst {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if parent[dst as usize] == NodeId::MAX && dst != src {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Whether every surviving node can reach and be reached from every
    /// other surviving node (strong connectivity of the survivor graph).
    /// Vacuously true when at most one node survives.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::audit_timer("strong_connectivity");
        let Some(root) = self.live_nodes().next() else {
            return true;
        };
        let live = self.num_live_nodes();
        let forward = self.bfs_distances(root);
        if self
            .live_nodes()
            .filter(|&u| forward[u as usize] != UNREACHABLE)
            .count()
            != live
        {
            return false;
        }
        // Reverse reachability: BFS over surviving in-links.
        let n = self.graph.num_nodes();
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (u, v) in self.graph.edges() {
            if !self.faults.blocks(u, v) {
                rev[v as usize].push(u);
            }
        }
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([root]);
        seen[root as usize] = true;
        let mut reached = 1usize;
        while let Some(v) = queue.pop_front() {
            for &u in &rev[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    reached += 1;
                    queue.push_back(u);
                }
            }
        }
        reached == live
    }

    /// Census of the weakly connected components of the survivor graph
    /// (links treated as undirected), sizes largest first.
    #[must_use]
    pub fn component_census(&self) -> ComponentCensus {
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::audit_timer("component_census");
        let n = self.graph.num_nodes();
        let mut undirected: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (u, v) in self.graph.edges() {
            if !self.faults.blocks(u, v) {
                undirected[u as usize].push(v);
                undirected[v as usize].push(u);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut sizes = Vec::new();
        for start in self.live_nodes() {
            if comp[start as usize] != usize::MAX {
                continue;
            }
            let id = sizes.len();
            let mut size = 0usize;
            comp[start as usize] = id;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                size += 1;
                for &v in &undirected[u as usize] {
                    if comp[v as usize] == usize::MAX {
                        comp[v as usize] = id;
                        queue.push_back(v);
                    }
                }
            }
            sizes.push(size);
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        ComponentCensus { sizes }
    }

    /// Exact vertex connectivity of the survivor graph: the minimum number
    /// of surviving nodes whose removal destroys strong connectivity
    /// (`num_live − 1` for complete survivor graphs, 0 when at most one
    /// node survives or the survivors are already disconnected).
    ///
    /// Computed Menger-style: unit node capacities via node splitting, one
    /// BFS-augmenting max-flow per candidate pair. Sources range over one
    /// fixed survivor and its neighborhood, which is sufficient because a
    /// minimum cut of size `κ ≤ δ` cannot swallow a node *and* its whole
    /// neighborhood.
    #[must_use]
    pub fn vertex_connectivity(&self) -> usize {
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::audit_timer("vertex_connectivity");
        let live: Vec<NodeId> = self.live_nodes().collect();
        if live.len() <= 1 {
            return 0;
        }
        // Split net: in(u) = 2u, out(u) = 2u + 1; internal caps 1,
        // link caps effectively infinite.
        let n = self.graph.num_nodes();
        let inf = len_u32(live.len());
        let mut net = FlowNet::new(2 * n);
        for &u in &live {
            net.add_edge(2 * u as usize, 2 * u as usize + 1, 1);
        }
        for (u, v) in self.graph.edges() {
            if !self.faults.blocks(u, v) {
                net.add_edge(2 * u as usize + 1, 2 * v as usize, inf);
            }
        }
        let v0 = live[0];
        let mut sources: Vec<NodeId> = vec![v0];
        for v in self.out_neighbors(v0) {
            if !sources.contains(&v) {
                sources.push(v);
            }
        }
        for (u, v) in self.graph.edges() {
            if v == v0 && !self.faults.blocks(u, v) && !sources.contains(&u) {
                sources.push(u);
            }
        }
        let mut best = live.len() - 1;
        for &s in &sources {
            for &t in &live {
                if t == s || best == 0 {
                    continue;
                }
                for (a, b) in [(s, t), (t, s)] {
                    let direct = self.graph.edge_index(a, b).is_some() && !self.faults.blocks(a, b);
                    if !direct {
                        let flow = net.max_flow(2 * a as usize + 1, 2 * b as usize, len_u32(best))
                            as usize;
                        best = best.min(flow);
                    }
                }
            }
        }
        best
    }

    /// Exact edge connectivity of the survivor graph: the minimum number of
    /// surviving directed links whose removal destroys strong connectivity.
    /// Unit link capacities, BFS-augmenting max-flow, one fixed survivor
    /// flowed against every other in both directions.
    #[must_use]
    pub fn edge_connectivity(&self) -> usize {
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::audit_timer("edge_connectivity");
        let live: Vec<NodeId> = self.live_nodes().collect();
        if live.len() <= 1 {
            return 0;
        }
        let mut net = FlowNet::new(self.graph.num_nodes());
        let mut degree_bound = usize::MAX;
        for &u in &live {
            let out = self.out_neighbors(u).count();
            degree_bound = degree_bound.min(out);
            for v in self.out_neighbors(u) {
                net.add_edge(u as usize, v as usize, 1);
            }
        }
        let v0 = live[0] as usize;
        let mut best = degree_bound;
        for &t in &live[1..] {
            if best == 0 {
                break;
            }
            best = best.min(net.max_flow(v0, t as usize, len_u32(best)) as usize);
            best = best.min(net.max_flow(t as usize, v0, len_u32(best)) as usize);
        }
        best
    }
}

/// Exact vertex connectivity of `g` (no faults applied); see
/// [`SurvivorView::vertex_connectivity`].
#[must_use]
pub fn vertex_connectivity(g: &DenseGraph) -> usize {
    let faults = FaultSet::new();
    SurvivorView::new(g, &faults).vertex_connectivity()
}

/// Exact edge connectivity of `g` (no faults applied); see
/// [`SurvivorView::edge_connectivity`].
#[must_use]
pub fn edge_connectivity(g: &DenseGraph) -> usize {
    let faults = FaultSet::new();
    SurvivorView::new(g, &faults).edge_connectivity()
}

/// A small unit-ish capacity flow network with BFS augmenting paths
/// (Edmonds–Karp). Flow values in this module are bounded by the node
/// degree, so the augmentation count stays tiny.
#[derive(Debug, Clone)]
struct FlowNet {
    adj: Vec<Vec<usize>>,
    to: Vec<usize>,
    cap: Vec<u32>,
    orig: Vec<u32>,
}

impl FlowNet {
    fn new(num_nodes: usize) -> Self {
        FlowNet {
            adj: vec![Vec::new(); num_nodes],
            to: Vec::new(),
            cap: Vec::new(),
            orig: Vec::new(),
        }
    }

    /// Adds a directed edge `u → v` with the given capacity (plus the
    /// zero-capacity residual partner at index `^1`).
    fn add_edge(&mut self, u: usize, v: usize, capacity: u32) {
        self.adj[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(capacity);
        self.orig.push(capacity);
        self.adj[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(0);
        self.orig.push(0);
    }

    /// Max flow `s → t`, stopping early once `bound` is reached (the caller
    /// only cares whether the flow is below its current best cut).
    fn max_flow(&mut self, s: usize, t: usize, bound: u32) -> u32 {
        self.cap.copy_from_slice(&self.orig);
        let mut flow = 0u32;
        let mut parent_edge = vec![usize::MAX; self.adj.len()];
        while flow < bound {
            parent_edge.iter_mut().for_each(|e| *e = usize::MAX);
            let mut queue = VecDeque::from([s]);
            parent_edge[s] = usize::MAX - 1; // visited marker for the source
            let mut found = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    if self.cap[e] > 0 && parent_edge[v] == usize::MAX && v != s {
                        parent_edge[v] = e;
                        if v == t {
                            found = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !found {
                break;
            }
            // Bottleneck along the path, then augment.
            let mut bottleneck = u32::MAX;
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            flow += bottleneck;
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected_ring(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| {
            vec![(u + 1) % n as NodeId, (u + n as NodeId - 1) % n as NodeId]
        })
    }

    fn complete(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| {
            (0..n as NodeId).filter(|&v| v != u).collect::<Vec<_>>()
        })
    }

    #[test]
    fn fault_set_basics() {
        let mut f = FaultSet::new();
        assert!(f.is_empty());
        assert!(f.fail_node(3));
        assert!(!f.fail_node(3));
        f.fail_link(0, 1);
        assert!(f.node_failed(3));
        assert!(f.link_failed(0, 1));
        assert!(!f.link_failed(1, 0));
        assert!(f.blocks(0, 1));
        assert!(f.blocks(3, 0), "failed node blocks its out-links");
        assert!(f.blocks(0, 3), "failed node blocks its in-links");
        assert!(!f.blocks(1, 2));
        assert_eq!(f.failed_nodes(), vec![3]);
        assert_eq!(f.failed_links(), vec![(0, 1)]);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn epoch_bumps_only_on_change() {
        let mut f = FaultSet::new();
        assert_eq!(f.epoch(), 0);
        assert!(f.fail_node(3));
        assert_eq!(f.epoch(), 1);
        assert!(!f.fail_node(3), "re-failing is a no-op");
        assert_eq!(f.epoch(), 1);
        assert!(f.fail_link(0, 1));
        assert_eq!(f.epoch(), 2);
        assert!(f.repair_link(0, 1));
        assert_eq!(f.epoch(), 3);
        assert!(!f.repair_link(0, 1), "re-repairing is a no-op");
        assert_eq!(f.epoch(), 3);
        assert!(f.repair_node(3));
        assert_eq!(f.epoch(), 4);
        f.clear();
        assert_eq!(f.epoch(), 4, "clearing an empty set is a no-op");
        f.fail_link_undirected(2, 5);
        assert_eq!(f.epoch(), 5, "an undirected cut is one mutation");
        f.repair_link_undirected(2, 5);
        assert_eq!(f.epoch(), 6);
    }

    #[test]
    fn equality_ignores_epoch() {
        let mut a = FaultSet::new();
        a.fail_node(1);
        a.repair_node(1);
        a.fail_node(1);
        let mut b = FaultSet::new();
        b.fail_node(1);
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a, b);
    }

    #[test]
    fn repair_restores_liveness() {
        let mut f = FaultSet::new();
        f.fail_node(2);
        f.fail_link(0, 1);
        assert!(f.blocks(0, 1));
        assert!(f.repair_node(2));
        assert!(!f.node_failed(2));
        assert!(f.repair_link(0, 1));
        assert!(!f.blocks(0, 1));
        assert!(f.is_empty());
    }

    #[test]
    fn merge_unions_and_bumps_once() {
        let mut a = FaultSet::new();
        a.fail_node(1);
        a.fail_link(0, 1);
        let mut b = FaultSet::new();
        b.fail_node(1); // overlap
        b.fail_node(2);
        b.fail_link_undirected(3, 4);
        let e = a.epoch();
        assert!(a.merge(&b));
        assert_eq!(a.epoch(), e + 1);
        assert_eq!(a.failed_nodes(), vec![1, 2]);
        assert!(a.link_failed(0, 1) && a.link_failed(3, 4) && a.link_failed(4, 3));
        // Merging a subset changes nothing.
        assert!(!a.merge(&b));
        assert_eq!(a.epoch(), e + 1);
    }

    #[test]
    fn failed_links_collapses_undirected_cuts() {
        let mut f = FaultSet::new();
        f.fail_link_undirected(5, 2); // recorded as (5,2) + (2,5)
        f.fail_link(7, 3); // one-way, direction preserved
        assert_eq!(f.failed_links(), vec![(2, 5), (7, 3)]);
        assert_eq!(f.failed_links_directed(), vec![(2, 5), (5, 2), (7, 3)]);
        assert_eq!(f.num_failed_links(), 3, "directed count is unchanged");
    }

    #[test]
    fn random_nodes_respects_exclusions() {
        let mut rng = XorShift64::new(1);
        for _ in 0..20 {
            let f = FaultSet::random_nodes(10, 4, &[0, 9], &mut rng);
            assert_eq!(f.num_failed_nodes(), 4);
            assert!(!f.node_failed(0));
            assert!(!f.node_failed(9));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn random_nodes_rejects_oversized_requests() {
        let mut rng = XorShift64::new(2);
        let _ = FaultSet::random_nodes(5, 5, &[0], &mut rng);
    }

    #[test]
    fn random_links_picks_real_links() {
        let g = undirected_ring(8);
        let mut rng = XorShift64::new(3);
        let f = FaultSet::random_links(&g, 5, &mut rng);
        assert_eq!(f.num_failed_links(), 5);
        for (u, v) in f.failed_links() {
            assert!(g.edge_index(u, v).is_some());
        }
    }

    #[test]
    fn survivor_view_filters_neighbors() {
        let g = undirected_ring(6);
        let mut f = FaultSet::new();
        f.fail_node(1);
        f.fail_link(0, 5);
        let view = SurvivorView::new(&g, &f);
        assert_eq!(view.num_live_nodes(), 5);
        assert_eq!(view.out_neighbors(0).count(), 0); // 1 dead, 0→5 cut
        assert_eq!(view.out_neighbors(5).collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(view.out_neighbors(1).count(), 0, "dead node has no links");
    }

    #[test]
    fn survivor_bfs_and_paths_avoid_faults() {
        let g = undirected_ring(8);
        let mut f = FaultSet::new();
        f.fail_node(1); // forces the long way round from 0 to 2
        let view = SurvivorView::new(&g, &f);
        let d = view.bfs_distances(0);
        assert_eq!(d[2], 6);
        assert_eq!(d[1], UNREACHABLE);
        let path = view.shortest_path(0, 2).unwrap();
        assert_eq!(path.len(), 7);
        assert!(!path.contains(&1));
        assert_eq!(view.shortest_path(0, 1), None);
    }

    #[test]
    fn path_liveness_tracks_faults() {
        let g = undirected_ring(6);
        let mut f = FaultSet::new();
        let view = SurvivorView::new(&g, &f);
        assert!(!view.path_is_live(&[]));
        assert!(view.path_is_live(&[3]));
        assert!(view.path_is_live(&[0, 1, 2]));
        f.fail_node(1);
        let view = SurvivorView::new(&g, &f);
        assert!(!view.path_is_live(&[0, 1, 2]), "interior node died");
        assert!(!view.path_is_live(&[1]), "failed singleton");
        assert!(view.path_is_live(&[2, 3, 4]));
        f.fail_link(3, 4);
        let view = SurvivorView::new(&g, &f);
        assert!(!view.path_is_live(&[2, 3, 4]), "directed link cut");
        assert!(view.path_is_live(&[4, 3, 2]), "reverse direction still up");
    }

    #[test]
    fn strong_connectivity_and_census() {
        let g = undirected_ring(6);
        let mut f = FaultSet::new();
        assert!(SurvivorView::new(&g, &f).is_strongly_connected());
        f.fail_node(0);
        assert!(SurvivorView::new(&g, &f).is_strongly_connected());
        f.fail_node(3);
        let view = SurvivorView::new(&g, &f);
        assert!(!view.is_strongly_connected());
        let census = view.component_census();
        assert_eq!(census.sizes, vec![2, 2]);
        assert_eq!(census.num_components(), 2);
        assert_eq!(census.largest(), 2);
        assert_eq!(census.total(), 4);
    }

    #[test]
    fn directed_cycle_is_strongly_connected_until_cut() {
        let g = DenseGraph::from_neighbor_fn(5, |u| vec![(u + 1) % 5]);
        let mut f = FaultSet::new();
        assert!(SurvivorView::new(&g, &f).is_strongly_connected());
        f.fail_link(2, 3);
        let view = SurvivorView::new(&g, &f);
        assert!(!view.is_strongly_connected());
        // Weakly the survivors are still one component.
        assert_eq!(view.component_census().sizes, vec![5]);
    }

    #[test]
    fn connectivity_of_reference_graphs() {
        assert_eq!(vertex_connectivity(&undirected_ring(7)), 2);
        assert_eq!(edge_connectivity(&undirected_ring(7)), 2);
        let dir = DenseGraph::from_neighbor_fn(6, |u| vec![(u + 1) % 6]);
        assert_eq!(vertex_connectivity(&dir), 1);
        assert_eq!(edge_connectivity(&dir), 1);
        assert_eq!(vertex_connectivity(&complete(5)), 4);
        assert_eq!(edge_connectivity(&complete(5)), 4);
    }

    #[test]
    fn connectivity_of_disconnected_graph_is_zero() {
        let g = DenseGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        assert_eq!(vertex_connectivity(&g), 0);
        assert_eq!(edge_connectivity(&g), 0);
    }

    #[test]
    fn connectivity_drops_under_faults() {
        let g = undirected_ring(8);
        let mut f = FaultSet::new();
        f.fail_link_undirected(0, 1);
        let view = SurvivorView::new(&g, &f);
        assert_eq!(view.edge_connectivity(), 1);
        assert_eq!(view.vertex_connectivity(), 1);
        f.fail_node(4);
        let view = SurvivorView::new(&g, &f);
        // 0–1 cut plus node 4 gone: the ring is now a path, still weakly
        // one piece but no longer 2-connected.
        assert_eq!(view.vertex_connectivity(), 0);
    }

    #[test]
    fn vertex_connectivity_matches_a_known_cut() {
        // Two triangles joined by a single articulation node 2.
        let g = DenseGraph::from_edges(
            5,
            [
                (0, 1),
                (1, 0),
                (0, 2),
                (2, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (2, 4),
                (4, 2),
                (3, 4),
                (4, 3),
            ],
        )
        .unwrap();
        assert_eq!(vertex_connectivity(&g), 1);
        // Edge-wise the cut must sever both bridge links out of node 2.
        assert_eq!(edge_connectivity(&g), 2);
    }

    #[test]
    fn hypercube_connectivity_equals_degree() {
        // Q3: 8 nodes, degree 3, κ = λ = 3.
        let g =
            DenseGraph::from_neighbor_fn(8, |u| (0..3).map(|b| u ^ (1 << b)).collect::<Vec<_>>());
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(edge_connectivity(&g), 3);
    }
}
