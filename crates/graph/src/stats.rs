use crate::dense::DenseGraph;
use crate::{Dist, NodeId, UNREACHABLE};

/// Distance statistics of a graph (diameter, mean internodal distance,
/// distance histogram).
///
/// For the vertex-transitive graphs this library studies, single-source
/// statistics from any node equal the all-pairs statistics; both
/// constructors are provided so the equivalence can itself be tested.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceStats {
    /// Largest finite distance encountered.
    pub diameter: Dist,
    /// Mean distance over all ordered reachable pairs with distinct
    /// endpoints.
    pub mean: f64,
    /// `histogram[d]` counts ordered pairs at distance `d`.
    pub histogram: Vec<u64>,
    /// Number of ordered pairs that were unreachable.
    pub unreachable_pairs: u64,
}

impl DistanceStats {
    /// Statistics of the BFS ball around a single source.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn single_source(graph: &DenseGraph, src: NodeId) -> Self {
        Self::from_distance_rows(std::iter::once(graph.bfs_distances(src)))
    }

    /// All-pairs statistics via one BFS per node (`O(N·E)`).
    #[must_use]
    pub fn all_pairs(graph: &DenseGraph) -> Self {
        Self::from_distance_rows((0..graph.num_nodes()).map(|u| graph.bfs_distances(u as NodeId)))
    }

    /// All-pairs statistics computed on `threads` OS threads (scoped; no
    /// external dependency). Produces exactly the same result as
    /// [`DistanceStats::all_pairs`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn all_pairs_parallel(graph: &DenseGraph, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        let n = graph.num_nodes();
        let chunk = n.div_ceil(threads.min(n.max(1)));
        let partials: Vec<DistanceStats> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for start in (0..n).step_by(chunk.max(1)) {
                let end = (start + chunk).min(n);
                handles.push(scope.spawn(move || {
                    Self::from_distance_rows((start..end).map(|u| graph.bfs_distances(u as NodeId)))
                }));
            }
            handles
                .into_iter()
                // scg-allow(SCG001): a panicking BFS worker must propagate, not be silently dropped
                .map(|h| h.join().expect("BFS thread"))
                .collect()
        });
        Self::merge(&partials)
    }

    /// All-pairs statistics on one thread per available CPU — the variant
    /// call sites should reach for by default.
    #[must_use]
    pub fn all_pairs_auto(graph: &DenseGraph) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::all_pairs_parallel(graph, threads)
    }

    /// Merges partial statistics (as produced from disjoint source sets).
    fn merge(parts: &[DistanceStats]) -> Self {
        let mut histogram: Vec<u64> = Vec::new();
        let mut unreachable_pairs = 0;
        for p in parts {
            if histogram.len() < p.histogram.len() {
                histogram.resize(p.histogram.len(), 0);
            }
            for (d, &c) in p.histogram.iter().enumerate() {
                histogram[d] += c;
            }
            unreachable_pairs += p.unreachable_pairs;
        }
        let diameter = (histogram.len().saturating_sub(1)) as Dist;
        let (mut total, mut pairs) = (0u128, 0u128);
        for (d, &count) in histogram.iter().enumerate().skip(1) {
            total += (d as u128) * u128::from(count);
            pairs += u128::from(count);
        }
        let mean = if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        };
        DistanceStats {
            diameter,
            mean,
            histogram,
            unreachable_pairs,
        }
    }

    fn from_distance_rows(rows: impl Iterator<Item = Vec<Dist>>) -> Self {
        let mut histogram: Vec<u64> = Vec::new();
        let mut unreachable_pairs = 0u64;
        for row in rows {
            for &d in &row {
                if d == UNREACHABLE {
                    unreachable_pairs += 1;
                } else {
                    let d = d as usize;
                    if histogram.len() <= d {
                        histogram.resize(d + 1, 0);
                    }
                    histogram[d] += 1;
                }
            }
        }
        let diameter = (histogram.len().saturating_sub(1)) as Dist;
        let (mut total, mut pairs) = (0u128, 0u128);
        for (d, &count) in histogram.iter().enumerate().skip(1) {
            total += (d as u128) * u128::from(count);
            pairs += u128::from(count);
        }
        let mean = if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        };
        DistanceStats {
            diameter,
            mean,
            histogram,
            unreachable_pairs,
        }
    }

    /// Number of ordered reachable pairs with distinct endpoints.
    #[must_use]
    pub fn reachable_pairs(&self) -> u64 {
        self.histogram.iter().skip(1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseGraph;

    fn undirected_path(n: usize) -> DenseGraph {
        DenseGraph::from_neighbor_fn(n, |u| {
            let mut v = Vec::new();
            if u > 0 {
                v.push(u - 1);
            }
            if (u as usize) + 1 < n {
                v.push(u + 1);
            }
            v
        })
    }

    #[test]
    fn path_graph_stats() {
        let g = undirected_path(4);
        let s = DistanceStats::all_pairs(&g);
        assert_eq!(s.diameter, 3);
        // Ordered pairs: 6 at distance 1, 4 at 2, 2 at 3 → mean = 20/12.
        assert_eq!(s.histogram[1], 6);
        assert_eq!(s.histogram[2], 4);
        assert_eq!(s.histogram[3], 2);
        assert!((s.mean - 20.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.unreachable_pairs, 0);
        assert_eq!(s.reachable_pairs(), 12);
    }

    #[test]
    fn single_source_matches_all_pairs_on_transitive_graph() {
        let ring = DenseGraph::from_neighbor_fn(6, |u| vec![(u + 1) % 6, (u + 5) % 6]);
        let single = DistanceStats::single_source(&ring, 0);
        let all = DistanceStats::all_pairs(&ring);
        assert_eq!(single.diameter, all.diameter);
        assert!((single.mean - all.mean).abs() < 1e-12);
    }

    #[test]
    fn parallel_all_pairs_matches_sequential() {
        let g =
            DenseGraph::from_neighbor_fn(50, |u| vec![(u + 1) % 50, (u + 7) % 50, (u + 49) % 50]);
        let seq = DistanceStats::all_pairs(&g);
        for threads in [1, 2, 3, 8, 64] {
            let par = DistanceStats::all_pairs_parallel(&g, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn auto_matches_sequential() {
        let g = undirected_path(23);
        assert_eq!(
            DistanceStats::all_pairs_auto(&g),
            DistanceStats::all_pairs(&g)
        );
    }

    #[test]
    fn unreachable_pairs_counted() {
        let g = DenseGraph::from_edges(3, [(0, 1)]).unwrap();
        let s = DistanceStats::single_source(&g, 0);
        assert_eq!(s.unreachable_pairs, 1);
        assert_eq!(s.diameter, 1);
    }
}
