//! Randomized property tests for the graph substrate over random graphs,
//! driven by the vendored deterministic PRNG in `scg-perm` (the workspace
//! builds offline, so `proptest` is not available).

use scg_graph::{moore_diameter_lower_bound, DenseGraph, DistanceStats, NodeId, UNREACHABLE};
use scg_perm::XorShift64;

const CASES: usize = 96;

/// Random sparse directed graph: 2..30 nodes, up to 90 random edges.
fn arb_graph(rng: &mut XorShift64) -> DenseGraph {
    let n = 2 + rng.gen_range(28);
    let m = rng.gen_range(90);
    let edges: Vec<(NodeId, NodeId)> = (0..m)
        .map(|_| (rng.gen_range(n) as NodeId, rng.gen_range(n) as NodeId))
        .collect();
    DenseGraph::from_edges(n, edges).expect("in range")
}

/// Random symmetric graph (each edge added both ways).
fn arb_symmetric(rng: &mut XorShift64) -> DenseGraph {
    let n = 2 + rng.gen_range(28);
    let m = rng.gen_range(60);
    let doubled: Vec<(NodeId, NodeId)> = (0..m)
        .map(|_| (rng.gen_range(n) as NodeId, rng.gen_range(n) as NodeId))
        .flat_map(|(u, v)| [(u, v), (v, u)])
        .collect();
    DenseGraph::from_edges(n, doubled).expect("in range")
}

#[test]
fn reverse_is_involutive() {
    let mut rng = XorShift64::new(21);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        assert_eq!(g.reversed().reversed(), g);
    }
}

#[test]
fn reverse_preserves_edge_count() {
    let mut rng = XorShift64::new(22);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        assert_eq!(g.num_edges(), g.reversed().num_edges());
    }
}

#[test]
fn edge_range_covers_out_neighbors() {
    let mut rng = XorShift64::new(23);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let mut total = 0usize;
        for u in 0..g.num_nodes() as NodeId {
            let r = g.edge_range(u);
            assert_eq!(r.len(), g.out_degree(u));
            total += r.len();
        }
        assert_eq!(total, g.num_edges());
    }
}

#[test]
fn bfs_distances_respect_triangle_inequality() {
    let mut rng = XorShift64::new(24);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let s = rng.gen_range(g.num_nodes()) as NodeId;
        let d = g.bfs_distances(s);
        for (u, v) in g.edges() {
            if d[u as usize] != UNREACHABLE {
                assert!(d[v as usize] <= d[u as usize] + 1, "edge ({u},{v})");
            }
        }
        assert_eq!(d[s as usize], 0);
    }
}

#[test]
fn shortest_path_length_matches_distance() {
    let mut rng = XorShift64::new(25);
    for _ in 0..CASES {
        let g = arb_graph(&mut rng);
        let s = rng.gen_range(g.num_nodes()) as NodeId;
        let t = rng.gen_range(g.num_nodes()) as NodeId;
        let d = g.bfs_distances(s)[t as usize];
        match g.shortest_path(s, t) {
            Some(path) => {
                assert_eq!(path.len() as u32 - 1, d);
                for w in path.windows(2) {
                    assert!(g.edge_index(w[0], w[1]).is_some());
                }
            }
            None => assert_eq!(d, UNREACHABLE),
        }
    }
}

#[test]
fn bipartition_certificate_is_proper() {
    let mut rng = XorShift64::new(26);
    for _ in 0..CASES {
        let g = arb_symmetric(&mut rng);
        if let Some(colors) = g.bipartition() {
            for (u, v) in g.edges() {
                if u != v {
                    assert_ne!(colors[u as usize], colors[v as usize]);
                }
            }
        }
        // A graph with a self-loop can never be bipartite.
    }
}

#[test]
fn symmetric_graphs_have_symmetric_distances() {
    let mut rng = XorShift64::new(27);
    for _ in 0..CASES {
        let g = arb_symmetric(&mut rng);
        let a = rng.gen_range(g.num_nodes()) as NodeId;
        let b = rng.gen_range(g.num_nodes()) as NodeId;
        assert_eq!(
            g.bfs_distances(a)[b as usize],
            g.bfs_distances(b)[a as usize]
        );
    }
}

#[test]
fn moore_bound_never_exceeds_true_diameter() {
    let mut rng = XorShift64::new(28);
    for _ in 0..CASES {
        let g = arb_symmetric(&mut rng);
        // Whenever the graph is connected and regular enough to compare.
        let stats = DistanceStats::all_pairs(&g);
        if stats.unreachable_pairs == 0 && g.num_nodes() > 1 {
            let dmax = (0..g.num_nodes())
                .map(|u| g.out_degree(u as NodeId))
                .max()
                .unwrap_or(1)
                .max(1);
            assert!(
                moore_diameter_lower_bound(dmax as u64, g.num_nodes() as u64)
                    <= stats.diameter.max(1)
            );
        }
    }
}

#[test]
fn parallel_statistics_agree_on_random_graphs() {
    let mut rng = XorShift64::new(29);
    for _ in 0..16 {
        let g = arb_symmetric(&mut rng);
        let seq = DistanceStats::all_pairs(&g);
        assert_eq!(DistanceStats::all_pairs_auto(&g), seq);
        assert_eq!(DistanceStats::all_pairs_parallel(&g, 3), seq);
    }
}
