//! Property-based tests for the graph substrate over random graphs.

use proptest::prelude::*;
use scg_graph::{
    moore_diameter_lower_bound, DenseGraph, DistanceStats, NodeId, UNREACHABLE,
};

/// Random sparse directed graph: n nodes, edges as (u, v) pairs.
fn arb_graph() -> impl Strategy<Value = DenseGraph> {
    (2usize..30).prop_flat_map(|n| {
        prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..90)
            .prop_map(move |edges| DenseGraph::from_edges(n, edges).expect("in range"))
    })
}

/// Random symmetric graph (each edge added both ways).
fn arb_symmetric() -> impl Strategy<Value = DenseGraph> {
    (2usize..30).prop_flat_map(|n| {
        prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..60).prop_map(move |edges| {
            let doubled: Vec<(NodeId, NodeId)> = edges
                .into_iter()
                .flat_map(|(u, v)| [(u, v), (v, u)])
                .collect();
            DenseGraph::from_edges(n, doubled).expect("in range")
        })
    })
}

proptest! {
    #[test]
    fn reverse_is_involutive(g in arb_graph()) {
        prop_assert_eq!(g.reversed().reversed(), g);
    }

    #[test]
    fn reverse_preserves_edge_count(g in arb_graph()) {
        prop_assert_eq!(g.num_edges(), g.reversed().num_edges());
    }

    #[test]
    fn edge_range_covers_out_neighbors(g in arb_graph()) {
        let mut total = 0usize;
        for u in 0..g.num_nodes() as NodeId {
            let r = g.edge_range(u);
            prop_assert_eq!(r.len(), g.out_degree(u));
            total += r.len();
        }
        prop_assert_eq!(total, g.num_edges());
    }

    #[test]
    fn bfs_distances_respect_triangle_inequality(g in arb_graph(), s in 0u32..30) {
        let n = g.num_nodes();
        let s = s % n as u32;
        let d = g.bfs_distances(s);
        for (u, v) in g.edges() {
            if d[u as usize] != UNREACHABLE {
                prop_assert!(d[v as usize] <= d[u as usize] + 1, "edge ({u},{v})");
            }
        }
        prop_assert_eq!(d[s as usize], 0);
    }

    #[test]
    fn shortest_path_length_matches_distance(g in arb_graph(), s in 0u32..30, t in 0u32..30) {
        let n = g.num_nodes() as u32;
        let (s, t) = (s % n, t % n);
        let d = g.bfs_distances(s)[t as usize];
        match g.shortest_path(s, t) {
            Some(path) => {
                prop_assert_eq!(path.len() as u32 - 1, d);
                for w in path.windows(2) {
                    prop_assert!(g.edge_index(w[0], w[1]).is_some());
                }
            }
            None => prop_assert_eq!(d, UNREACHABLE),
        }
    }

    #[test]
    fn bipartition_certificate_is_proper(g in arb_symmetric()) {
        if let Some(colors) = g.bipartition() {
            for (u, v) in g.edges() {
                if u != v {
                    prop_assert_ne!(colors[u as usize], colors[v as usize]);
                }
            }
        }
        // A graph with a self-loop can never be bipartite.
    }

    #[test]
    fn symmetric_graphs_have_symmetric_distances(g in arb_symmetric(), a in 0u32..30, b in 0u32..30) {
        let n = g.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        prop_assert_eq!(g.bfs_distances(a)[b as usize], g.bfs_distances(b)[a as usize]);
    }

    #[test]
    fn moore_bound_never_exceeds_true_diameter(g in arb_symmetric()) {
        // Whenever the graph is connected and regular enough to compare.
        let stats = DistanceStats::all_pairs(&g);
        if stats.unreachable_pairs == 0 && g.num_nodes() > 1 {
            let dmax = (0..g.num_nodes())
                .map(|u| g.out_degree(u as NodeId))
                .max()
                .unwrap_or(1)
                .max(1);
            prop_assert!(
                u32::from(moore_diameter_lower_bound(dmax as u64, g.num_nodes() as u64))
                    <= stats.diameter.max(1)
            );
        }
    }
}
