//! Zero-dependency observability core for the super-Cayley workspace.
//!
//! The workspace builds with no network access, so it cannot depend on
//! `prometheus`, `metrics`, or `tracing` — this crate vendors the small
//! subset those ecosystems would provide (the same spirit as the vendored
//! [`XorShift64`](https://docs.rs/scg-perm) PRNG):
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] — lock-free instruments built on
//!   relaxed atomics; increments are never lost, even under
//!   `std::thread::scope` stress (see the crate tests);
//! * [`Registry`] — a process-wide store of *labeled metric families*
//!   (`name` + sorted `label=value` pairs → shared handle), with a
//!   deterministic [`Snapshot`] view;
//! * [`Snapshot`] — an immutable copy of every registered metric, rendered
//!   as Prometheus-style plain text ([`Snapshot::to_text`]) or JSON
//!   ([`Snapshot::to_json`]), and parsed back from JSON
//!   ([`Snapshot::from_json`]) so exports round-trip losslessly;
//! * [`EventTrace`] — a bounded ring buffer of structured events and spans
//!   for after-the-fact inspection of a run;
//! * [`write_snapshot`] — the exporter the experiment binaries use to drop
//!   `<stem>.txt` / `<stem>.json` pairs under `results/`.
//!
//! Downstream crates (`scg-core`, `scg-emu`, `scg-graph`) instrument their
//! hot paths behind an `obs` cargo feature; with the feature off this crate
//! is not even compiled, so observability is zero-cost when disabled.
//!
//! # Examples
//!
//! ```
//! use scg_obs::{Registry, Snapshot};
//!
//! let reg = Registry::new();
//! reg.counter("requests_total", &[("class", "MS(3,2)")]).add(7);
//! reg.histogram("hops", &[], &[1, 2, 4, 8]).observe(3);
//!
//! let snap = reg.snapshot();
//! let json = snap.to_json();
//! assert_eq!(Snapshot::from_json(&json).unwrap(), snap);
//! assert!(snap.to_text().contains("requests_total{class=\"MS(3,2)\"} 7"));
//! ```

#![warn(missing_docs)]
// Library code must not panic on instrument handles; unit tests may.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
mod export;
pub mod json;
mod metrics;
mod registry;
mod snapshot;
mod trace;

pub use error::ObsError;
pub use export::write_snapshot;
pub use metrics::{Counter, Gauge, Histogram, Timer};
pub use registry::Registry;
pub use snapshot::{quantile_upper_bound, MetricSnapshot, MetricValue, Snapshot};
pub use trace::{EventTrace, SpanGuard, TraceEvent};
