//! The labeled metric registry.
//!
//! A registry maps a *family name* plus a sorted set of `label=value` pairs
//! to a shared metric handle. Re-requesting the same `(name, labels)`
//! returns the *same* `Arc`, so instrumentation sites anywhere in the
//! process accumulate into one instrument; distinct label sets under one
//! name form a family (e.g. `scg_route_hops{network="MS(2,2)"}` vs
//! `…{network="RS(2,2)"}`).
//!
//! The infallible accessors ([`Registry::counter`], [`Registry::gauge`],
//! [`Registry::histogram`]) never panic and never return an error: on a
//! kind collision they hand back a *detached* instrument that records
//! normally but is not part of any snapshot, because an observability layer
//! must not be able to take down the program it observes. Tests and
//! tooling use the `try_*` variants to see the collision.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::ObsError;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricSnapshot, MetricValue, Snapshot};

/// Canonical label set: sorted by key, so label order at the call site
/// never splits a family.
pub(crate) type LabelSet = Vec<(String, String)>;

fn canon_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut ls: LabelSet = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    ls
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Family {
    children: BTreeMap<LabelSet, Handle>,
}

/// A store of labeled metric families with a deterministic snapshot view.
///
/// Most instrumentation goes through the process-wide instance
/// ([`Registry::global`]); tests build their own.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Family>> {
        // A poisoned metrics mutex must not cascade: the data is a plain
        // map, valid regardless of where a panicking thread stopped.
        match self.families.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Result<Handle, ObsError> {
        if name.is_empty() {
            return Err(ObsError::BadName {
                name: name.to_string(),
                reason: "empty name",
            });
        }
        let ls = canon_labels(labels);
        let mut families = self.lock();
        let family = families.entry(name.to_string()).or_default();
        if let Some(existing) = family.children.get(&ls) {
            let fresh = make();
            if existing.kind() != fresh.kind() {
                return Err(ObsError::KindCollision {
                    name: name.to_string(),
                    existing: existing.kind(),
                    requested: fresh.kind(),
                });
            }
            return Ok(existing.clone());
        }
        // Family kind consistency across label sets.
        if let Some(peer) = family.children.values().next() {
            let fresh = make();
            if peer.kind() != fresh.kind() {
                return Err(ObsError::KindCollision {
                    name: name.to_string(),
                    existing: peer.kind(),
                    requested: fresh.kind(),
                });
            }
            family.children.insert(ls, fresh.clone());
            return Ok(fresh);
        }
        let fresh = make();
        family.children.insert(ls, fresh.clone());
        Ok(fresh)
    }

    /// The counter `(name, labels)`, creating it on first use.
    ///
    /// # Errors
    ///
    /// [`ObsError::KindCollision`] if `name` is already a gauge or
    /// histogram family; [`ObsError::BadName`] for an empty name.
    pub fn try_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<Arc<Counter>, ObsError> {
        match self.get_or_insert(name, labels, || Handle::Counter(Arc::new(Counter::new())))? {
            Handle::Counter(c) => Ok(c),
            // get_or_insert compared kinds already.
            _ => unreachable!("kind checked by get_or_insert"), // scg-allow(SCG001): get_or_insert returns ObsError on kind mismatch before this arm
        }
    }

    /// The counter `(name, labels)`; on any registration error returns a
    /// detached counter (records, but is invisible to snapshots) so
    /// instrumentation can never fail the host program.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.try_counter(name, labels)
            .unwrap_or_else(|_| Arc::new(Counter::new()))
    }

    /// The gauge `(name, labels)`, creating it on first use.
    ///
    /// # Errors
    ///
    /// As [`Registry::try_counter`].
    pub fn try_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Result<Arc<Gauge>, ObsError> {
        match self.get_or_insert(name, labels, || Handle::Gauge(Arc::new(Gauge::new())))? {
            Handle::Gauge(g) => Ok(g),
            _ => unreachable!("kind checked by get_or_insert"), // scg-allow(SCG001): get_or_insert returns ObsError on kind mismatch before this arm
        }
    }

    /// The gauge `(name, labels)`; detached on error, like
    /// [`Registry::counter`].
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.try_gauge(name, labels)
            .unwrap_or_else(|_| Arc::new(Gauge::new()))
    }

    /// The histogram `(name, labels)`, creating it with `bounds` on first
    /// use. A later request with different bounds returns the existing
    /// histogram — bucket layout is fixed by the first registration.
    ///
    /// # Errors
    ///
    /// As [`Registry::try_counter`]; additionally [`ObsError::BadName`] if
    /// `bounds` is empty or not strictly increasing (checked before
    /// construction so the infallible path cannot panic).
    pub fn try_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Result<Arc<Histogram>, ObsError> {
        if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ObsError::BadName {
                name: name.to_string(),
                reason: "histogram bounds must be non-empty and strictly increasing",
            });
        }
        match self.get_or_insert(name, labels, || {
            Handle::Histogram(Arc::new(Histogram::with_bounds(bounds)))
        })? {
            Handle::Histogram(h) => Ok(h),
            _ => unreachable!("kind checked by get_or_insert"), // scg-allow(SCG001): get_or_insert returns ObsError on kind mismatch before this arm
        }
    }

    /// The histogram `(name, labels)`; on any registration error returns a
    /// detached single-bucket histogram, like [`Registry::counter`].
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        self.try_histogram(name, labels, bounds)
            .unwrap_or_else(|_| Arc::new(Histogram::with_bounds(&[u64::MAX])))
    }

    /// Number of registered metrics (children across all families).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().values().map(|f| f.children.len()).sum()
    }

    /// Whether nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unregisters everything. Outstanding handles stay usable but
    /// detached.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// A deterministic point-in-time copy of every registered metric,
    /// sorted by name then label set.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let families = self.lock();
        let mut metrics = Vec::new();
        for (name, family) in families.iter() {
            for (labels, handle) in &family.children {
                let value = match handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        counts: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                };
                metrics.push(MetricSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    value,
                });
            }
        }
        Snapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_one_instrument() {
        let reg = Registry::new();
        let a = reg.counter("hits", &[("class", "MS")]);
        let b = reg.counter("hits", &[("class", "MS")]);
        a.inc();
        b.add(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn label_order_does_not_split_families() {
        let reg = Registry::new();
        let a = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn kind_collision_is_reported_by_try_and_absorbed_by_infallible() {
        let reg = Registry::new();
        reg.counter("metric", &[]).inc();
        let err = reg.try_gauge("metric", &[]).unwrap_err();
        assert!(matches!(
            err,
            ObsError::KindCollision {
                existing: "counter",
                requested: "gauge",
                ..
            }
        ));
        // Cross-label collisions within one family are also kind-checked.
        let err2 = reg
            .try_histogram("metric", &[("l", "v")], &[1])
            .unwrap_err();
        assert!(matches!(err2, ObsError::KindCollision { .. }));
        // The infallible path yields a working, detached instrument.
        let detached = reg.gauge("metric", &[]);
        detached.set(9);
        assert_eq!(detached.get(), 9);
        assert_eq!(reg.len(), 1, "detached instrument was not registered");
    }

    #[test]
    fn histogram_bounds_fixed_by_first_registration() {
        let reg = Registry::new();
        let a = reg.histogram("h", &[], &[1, 2]);
        let b = reg.histogram("h", &[], &[5, 10, 20]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.bounds(), &[1, 2]);
        assert!(reg.try_histogram("h", &[], &[]).is_err());
        assert!(reg.try_histogram("h2", &[], &[3, 3]).is_err());
    }

    #[test]
    fn empty_name_rejected() {
        let reg = Registry::new();
        assert!(matches!(
            reg.try_counter("", &[]),
            Err(ObsError::BadName { .. })
        ));
    }

    #[test]
    fn clear_detaches_but_does_not_break_handles() {
        let reg = Registry::new();
        let c = reg.counter("n", &[]);
        c.inc();
        reg.clear();
        assert!(reg.is_empty());
        c.inc();
        assert_eq!(c.get(), 2);
        assert!(reg.snapshot().metrics.is_empty());
    }
}
