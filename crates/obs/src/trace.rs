//! A bounded ring buffer of structured trace events.
//!
//! Metrics aggregate; traces remember *individual* occurrences — which
//! network was materialized, how long one connectivity audit took, when a
//! simulation bailed out on a live-lock. The buffer holds the most recent
//! `capacity` events; older ones are overwritten (and counted as
//! [`EventTrace::dropped`]), so tracing is safe to leave on in long runs.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One recorded event: a sequence number, a name, and integer fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic per-trace sequence number (0-based).
    pub seq: u64,
    /// Event name, e.g. `topology.materialize.end`.
    pub name: String,
    /// Structured payload: `(key, value)` pairs.
    pub fields: Vec<(String, i64)>,
}

#[derive(Debug, Default)]
struct TraceInner {
    buf: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct EventTrace {
    capacity: usize,
    inner: Mutex<TraceInner>,
}

/// Capacity of the process-wide trace.
const GLOBAL_CAPACITY: usize = 4096;

impl EventTrace {
    /// A trace holding at most `capacity` events (at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventTrace {
            capacity: capacity.max(1),
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// The process-wide trace used by the `obs`-feature hooks.
    #[must_use]
    pub fn global() -> &'static EventTrace {
        static GLOBAL: OnceLock<EventTrace> = OnceLock::new();
        GLOBAL.get_or_init(|| EventTrace::with_capacity(GLOBAL_CAPACITY))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records an event, returning its sequence number.
    pub fn record(&self, name: &str, fields: &[(&str, i64)]) -> u64 {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(TraceEvent {
            seq,
            name: name.to_string(),
            fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
        seq
    }

    /// Starts a span: records `<name>.start` now and `<name>.end` (with an
    /// `elapsed_us` field) when the returned guard drops.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.record(&format!("{name}.start"), &[]);
        SpanGuard {
            trace: self,
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// A copy of the buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().buf.iter().cloned().collect()
    }

    /// Number of currently buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten by the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Empties the buffer (sequence numbers keep counting).
    pub fn clear(&self) {
        self.lock().buf.clear();
    }
}

/// Guard returned by [`EventTrace::span`]; records the end event on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    trace: &'a EventTrace,
    name: String,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let us = i64::try_from(self.start.elapsed().as_micros()).unwrap_or(i64::MAX);
        self.trace
            .record(&format!("{}.end", self.name), &[("elapsed_us", us)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_fields() {
        let t = EventTrace::with_capacity(8);
        t.record("a", &[("x", 1)]);
        t.record("b", &[("y", -2), ("z", 3)]);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[0].seq, 0);
        assert_eq!(
            evs[1].fields,
            vec![("y".to_string(), -2), ("z".to_string(), 3)]
        );
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = EventTrace::with_capacity(3);
        for i in 0..5 {
            t.record("e", &[("i", i)]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let evs = t.events();
        assert_eq!(evs[0].seq, 2, "two oldest were overwritten");
        assert_eq!(evs[2].seq, 4);
    }

    #[test]
    fn span_emits_start_and_end() {
        let t = EventTrace::with_capacity(8);
        {
            let _g = t.span("phase");
            t.record("inside", &[]);
        }
        let names: Vec<String> = t.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["phase.start", "inside", "phase.end"]);
        let end = &t.events()[2];
        assert_eq!(end.fields[0].0, "elapsed_us");
        assert!(end.fields[0].1 >= 0);
    }

    #[test]
    fn clear_keeps_sequence_monotonic() {
        let t = EventTrace::with_capacity(4);
        t.record("a", &[]);
        t.clear();
        assert!(t.is_empty());
        let seq = t.record("b", &[]);
        assert_eq!(seq, 1);
    }
}
