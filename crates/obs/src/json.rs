//! A minimal hand-rolled JSON model and parser.
//!
//! The workspace builds offline — no serde — so the snapshot exporter
//! ([`Snapshot`](crate::Snapshot)) and the benchmark artifacts
//! (`results/BENCH_*.json`) share this one parser. It accepts exactly
//! the subset our encoders emit: objects, arrays, strings with
//! `\"`/`\\`/`\/`/`\n`/`\t`/`\r`/`\uXXXX` escapes, and integers (floats
//! are rejected by design — every number we export is an exact count or
//! a pair of integers).
//!
//! # Examples
//!
//! ```
//! use scg_obs::json::{parse, Json};
//!
//! let v = parse(r#"{"pairs": 64, "hosts": ["MS(3,2)"]}"#).expect("valid");
//! let obj = v.as_object(0).expect("object");
//! assert_eq!(obj["pairs"].as_u64(0).unwrap(), 64);
//! assert_eq!(obj["hosts"].as_array(0).unwrap()[0].as_string(0).unwrap(), "MS(3,2)");
//! ```

use std::collections::BTreeMap;

use crate::error::ObsError;

/// The minimal JSON value model our exporters need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `{...}` with string keys, sorted.
    Object(BTreeMap<String, Json>),
    /// `[...]`.
    Array(Vec<Json>),
    /// `"..."`.
    String(String),
    /// All numbers the encoders emit are integers; `i128` covers the
    /// full `u64` and `i64` ranges.
    Int(i128),
}

impl Json {
    /// The object map, or an [`ObsError::Json`] at offset `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::Json`] if this value is not an object.
    pub fn as_object(&self, at: usize) -> Result<&BTreeMap<String, Json>, ObsError> {
        match self {
            Json::Object(m) => Ok(m),
            _ => Err(ObsError::Json {
                at,
                reason: "expected object",
            }),
        }
    }

    /// The array items, or an [`ObsError::Json`] at offset `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::Json`] if this value is not an array.
    pub fn as_array(&self, at: usize) -> Result<&[Json], ObsError> {
        match self {
            Json::Array(v) => Ok(v),
            _ => Err(ObsError::Json {
                at,
                reason: "expected array",
            }),
        }
    }

    /// The string contents, or an [`ObsError::Json`] at offset `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::Json`] if this value is not a string.
    pub fn as_string(&self, at: usize) -> Result<&str, ObsError> {
        match self {
            Json::String(s) => Ok(s),
            _ => Err(ObsError::Json {
                at,
                reason: "expected string",
            }),
        }
    }

    /// The integer as a `u64`, or an [`ObsError::Json`] at offset `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::Json`] if this value is not an integer in
    /// `u64` range.
    pub fn as_u64(&self, at: usize) -> Result<u64, ObsError> {
        match self {
            Json::Int(i) => u64::try_from(*i).map_err(|_| ObsError::Json {
                at,
                reason: "integer out of u64 range",
            }),
            _ => Err(ObsError::Json {
                at,
                reason: "expected integer",
            }),
        }
    }

    /// The integer as an `i64`, or an [`ObsError::Json`] at offset `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::Json`] if this value is not an integer in
    /// `i64` range.
    pub fn as_i64(&self, at: usize) -> Result<i64, ObsError> {
        match self {
            Json::Int(i) => i64::try_from(*i).map_err(|_| ObsError::Json {
                at,
                reason: "integer out of i64 range",
            }),
            _ => Err(ObsError::Json {
                at,
                reason: "expected integer",
            }),
        }
    }

    /// Encodes this value back to JSON text that [`parse`] round-trips
    /// losslessly: object keys stay sorted (they live in a `BTreeMap`), and
    /// strings use exactly the escapes the parser accepts.
    ///
    /// ```
    /// use scg_obs::json::{parse, Json};
    ///
    /// let v = parse(r#"{"b": [1, -2], "a": "x\ny"}"#).expect("valid");
    /// assert_eq!(parse(&v.encode()).expect("round-trips"), v);
    /// ```
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    encode_str(out, k);
                    out.push_str(": ");
                    v.encode_into(out);
                }
                out.push('}');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::String(s) => encode_str(out, s),
            Json::Int(i) => {
                use std::fmt::Write as _;
                // Writing an integer into a `String` cannot fail.
                let _ = write!(out, "{i}"); // scg-allow(SCG005): fmt::Write to String is infallible
            }
        }
    }
}

/// Escapes `s` into `out` using only the escapes [`parse`] accepts.
fn encode_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                // Writing into a `String` cannot fail.
                let _ = write!(out, "\\u{:04x}", c as u32); // scg-allow(SCG005): fmt::Write to String is infallible
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`ObsError::Json`] with the byte offset and reason on any
/// malformed input, including floats (not part of our formats).
pub fn parse(input: &str) -> Result<Json, ObsError> {
    JsonParser::parse(input)
}

/// A recursive-descent parser over the encoders' JSON subset.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(input: &'a str) -> Result<Json, ObsError> {
        let mut p = JsonParser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }

    fn err(&self, reason: &'static str) -> ObsError {
        ObsError::Json {
            at: self.pos,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ObsError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected byte"))
        }
    }

    fn value(&mut self) -> Result<Json, ObsError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ObsError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ObsError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ObsError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or_else(|| self.err("unterminated escape"))? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex_str = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex_str, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe: operate on
                    // the str slice).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ObsError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the snapshot format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.err("integer overflow"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, -2, {"b": "c\nd"}], "e": {}}"#).expect("valid");
        let obj = v.as_object(0).unwrap();
        let a = obj["a"].as_array(0).unwrap();
        assert_eq!(a[0].as_u64(0).unwrap(), 1);
        assert_eq!(a[1].as_i64(0).unwrap(), -2);
        assert_eq!(
            a[2].as_object(0).unwrap()["b"].as_string(0).unwrap(),
            "c\nd"
        );
        assert!(obj["e"].as_object(0).unwrap().is_empty());
    }

    #[test]
    fn accessors_report_type_mismatches() {
        let v = parse("[1]").expect("valid");
        assert!(v.as_object(3).is_err());
        assert!(v.as_string(3).is_err());
        assert!(v.as_u64(3).is_err());
        let neg = parse("-5").expect("valid");
        assert!(neg.as_u64(0).is_err());
        assert_eq!(neg.as_i64(0).unwrap(), -5);
    }

    #[test]
    fn rejects_floats_and_trailing_data() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn encode_round_trips_escapes_and_nesting() {
        let v = Json::Object(BTreeMap::from([
            (
                "s".to_string(),
                Json::String("a\"b\\c\nd\te\rf\u{1}g".to_string()),
            ),
            (
                "arr".to_string(),
                Json::Array(vec![Json::Int(-7), Json::Int(i128::from(u64::MAX))]),
            ),
            ("empty".to_string(), Json::Object(BTreeMap::new())),
        ]));
        assert_eq!(parse(&v.encode()).unwrap(), v);
    }
}
