//! Point-in-time snapshots and their two wire formats.
//!
//! A [`Snapshot`] is an immutable, deterministic (sorted) copy of a
//! [`Registry`](crate::Registry). It renders to:
//!
//! * **plain text** — a Prometheus-flavored exposition, one sample per
//!   line with `# TYPE` headers and cumulative `_bucket{le=…}` lines for
//!   histograms, meant for `results/*.txt` files and eyeballs;
//! * **JSON** — a lossless structural encoding with a matching parser
//!   ([`Snapshot::from_json`]), so `snapshot → JSON → snapshot` is the
//!   identity (the round-trip test locks this down).
//!
//! Both encoders are hand-rolled: the workspace builds offline, so there
//! is no serde. Parsing goes through the shared [`crate::json`] module,
//! which accepts exactly the subset the encoder emits (objects, arrays,
//! strings with `\"`/`\\`/`\u` escapes, integers).

use crate::error::ObsError;
use crate::json;

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's full state.
    Histogram {
        /// Bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket (non-cumulative) counts; last entry is overflow.
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
    },
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// The histogram quantile estimate used for latency SLOs: the upper bound
/// of the first bucket at which the cumulative count reaches
/// `q_x1000 / 1000` of the total (`q_x1000 = 500` → p50, `990` → p99;
/// integer per-mille so callers never touch floats).
///
/// Bucketed data cannot resolve finer than a bucket, so this is the
/// standard conservative (over-)estimate: the true quantile is ≤ the
/// returned bound unless it falls in the overflow bucket, in which case
/// the largest finite bound is returned (the histogram only knows
/// "beyond the last bound"). Returns `None` for an empty histogram or
/// `q_x1000 > 1000`.
#[must_use]
pub fn quantile_upper_bound(
    bounds: &[u64],
    counts: &[u64],
    count: u64,
    q_x1000: u64,
) -> Option<u64> {
    if count == 0 || q_x1000 > 1000 || bounds.is_empty() {
        return None;
    }
    // Rank of the target observation, 1-based, rounded up: the smallest
    // rank whose cumulative share is ≥ q.
    let rank = (count * q_x1000).div_ceil(1000).max(1);
    let mut seen = 0u64;
    for (bound, bucket) in bounds.iter().zip(counts) {
        seen += bucket;
        if seen >= rank {
            return Some(*bound);
        }
    }
    bounds.last().copied() // target lives in the overflow bucket
}

/// One metric (family name + label set + value) in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Family name.
    pub name: String,
    /// Sorted `label = value` pairs.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

/// A deterministic copy of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Metrics sorted by `(name, labels)`.
    pub metrics: Vec<MetricSnapshot>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, v) in labels {
        let mut s = String::new();
        s.push_str(k);
        s.push_str("=\"");
        escape_into(&mut s, v);
        s.push('"');
        parts.push(s);
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Retains only metrics whose name starts with `prefix` — used to
    /// carve deterministic sub-snapshots (e.g. dropping wall-time
    /// histograms before comparing against a golden file).
    #[must_use]
    pub fn filter_prefix(&self, prefix: &str) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|m| m.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// Retains only metrics for which `keep` returns true.
    #[must_use]
    pub fn filter(&self, keep: impl Fn(&MetricSnapshot) -> bool) -> Snapshot {
        Snapshot {
            metrics: self.metrics.iter().filter(|m| keep(m)).cloned().collect(),
        }
    }

    /// The [`quantile_upper_bound`] of histogram family `name`, aggregated
    /// over every label child whose bucket layout matches the first child's
    /// (children with a different layout are skipped — bucket counts are
    /// only additive over a shared layout).
    ///
    /// This is how latency SLOs are read back out of an exported snapshot:
    /// `snap.quantile("scg_serve_batch_micros", 990)` is the p99 batch
    /// latency in microseconds. Returns `None` if the family is missing,
    /// empty, or not a histogram.
    #[must_use]
    pub fn quantile(&self, name: &str, q_x1000: u64) -> Option<u64> {
        let mut agg_bounds: Option<&[u64]> = None;
        let mut agg_counts: Vec<u64> = Vec::new();
        let mut agg_count = 0u64;
        for m in self.metrics.iter().filter(|m| m.name == name) {
            if let MetricValue::Histogram {
                bounds,
                counts,
                count,
                ..
            } = &m.value
            {
                match agg_bounds {
                    None => {
                        agg_bounds = Some(bounds);
                        agg_counts = counts.clone();
                        agg_count = *count;
                    }
                    Some(b) if b == bounds.as_slice() => {
                        for (a, c) in agg_counts.iter_mut().zip(counts) {
                            *a += c;
                        }
                        agg_count += count;
                    }
                    Some(_) => {}
                }
            }
        }
        quantile_upper_bound(agg_bounds?, &agg_counts, agg_count, q_x1000)
    }

    /// Prometheus-flavored plain-text exposition.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for m in &self.metrics {
            if last_family != Some(m.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(m.value.kind());
                out.push('\n');
                last_family = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&m.name);
                    out.push_str(&label_block(&m.labels, None));
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&m.name);
                    out.push_str(&label_block(&m.labels, None));
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let mut cum = 0u64;
                    for (i, b) in bounds.iter().enumerate() {
                        cum += counts.get(i).copied().unwrap_or(0);
                        out.push_str(&m.name);
                        out.push_str("_bucket");
                        out.push_str(&label_block(&m.labels, Some(("le", &b.to_string()))));
                        out.push_str(&format!(" {cum}\n"));
                    }
                    cum += counts.last().copied().unwrap_or(0);
                    out.push_str(&m.name);
                    out.push_str("_bucket");
                    out.push_str(&label_block(&m.labels, Some(("le", "+Inf"))));
                    out.push_str(&format!(" {cum}\n"));
                    out.push_str(&m.name);
                    out.push_str("_count");
                    out.push_str(&label_block(&m.labels, None));
                    out.push_str(&format!(" {count}\n"));
                    out.push_str(&m.name);
                    out.push_str("_sum");
                    out.push_str(&label_block(&m.labels, None));
                    out.push_str(&format!(" {sum}\n"));
                }
            }
        }
        out
    }

    /// Lossless JSON encoding; [`Snapshot::from_json`] inverts it.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_into(&mut out, &m.name);
            out.push_str("\",\"type\":\"");
            out.push_str(m.value.kind());
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":\"");
                escape_into(&mut out, v);
                out.push('"');
            }
            out.push('}');
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&format!(",\"value\":{v}")),
                MetricValue::Gauge(v) => out.push_str(&format!(",\"value\":{v}")),
                MetricValue::Histogram {
                    bounds,
                    counts,
                    count,
                    sum,
                } => {
                    let join = |xs: &[u64]| {
                        xs.iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    };
                    out.push_str(&format!(
                        ",\"bounds\":[{}],\"counts\":[{}],\"count\":{count},\"sum\":{sum}",
                        join(bounds),
                        join(counts)
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`ObsError::Json`] on malformed input or a structure the encoder
    /// would never emit.
    pub fn from_json(input: &str) -> Result<Snapshot, ObsError> {
        let value = json::parse(input)?;
        let top = value.as_object(0)?;
        let metrics_val = top.get("metrics").ok_or(ObsError::Json {
            at: 0,
            reason: "missing `metrics` array",
        })?;
        let mut metrics = Vec::new();
        for mv in metrics_val.as_array(0)? {
            let obj = mv.as_object(0)?;
            let name = obj
                .get("name")
                .ok_or(ObsError::Json {
                    at: 0,
                    reason: "metric missing `name`",
                })?
                .as_string(0)?
                .to_string();
            let kind = obj
                .get("type")
                .ok_or(ObsError::Json {
                    at: 0,
                    reason: "metric missing `type`",
                })?
                .as_string(0)?;
            let mut labels: Vec<(String, String)> = Vec::new();
            if let Some(lv) = obj.get("labels") {
                for (k, v) in lv.as_object(0)? {
                    labels.push((k.clone(), v.as_string(0)?.to_string()));
                }
            }
            labels.sort();
            let get_u64 = |key: &str| -> Result<u64, ObsError> {
                obj.get(key)
                    .ok_or(ObsError::Json {
                        at: 0,
                        reason: "missing numeric field",
                    })?
                    .as_u64(0)
            };
            let value = match kind {
                "counter" => MetricValue::Counter(get_u64("value")?),
                "gauge" => MetricValue::Gauge(
                    obj.get("value")
                        .ok_or(ObsError::Json {
                            at: 0,
                            reason: "missing gauge value",
                        })?
                        .as_i64(0)?,
                ),
                "histogram" => {
                    let nums = |key: &str| -> Result<Vec<u64>, ObsError> {
                        obj.get(key)
                            .ok_or(ObsError::Json {
                                at: 0,
                                reason: "missing histogram array",
                            })?
                            .as_array(0)?
                            .iter()
                            .map(|v| v.as_u64(0))
                            .collect()
                    };
                    MetricValue::Histogram {
                        bounds: nums("bounds")?,
                        counts: nums("counts")?,
                        count: get_u64("count")?,
                        sum: get_u64("sum")?,
                    }
                }
                _ => {
                    return Err(ObsError::Json {
                        at: 0,
                        reason: "unknown metric type",
                    })
                }
            };
            metrics.push(MetricSnapshot {
                name,
                labels,
                value,
            });
        }
        Ok(Snapshot { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_upper_bound_basics() {
        let bounds = [10u64, 100, 1000];
        // 10 observations: 5 in ≤10, 4 in ≤100, 1 in ≤1000, 0 overflow.
        let counts = [5u64, 4, 1, 0];
        assert_eq!(quantile_upper_bound(&bounds, &counts, 10, 0), Some(10));
        assert_eq!(quantile_upper_bound(&bounds, &counts, 10, 500), Some(10));
        assert_eq!(quantile_upper_bound(&bounds, &counts, 10, 501), Some(100));
        assert_eq!(quantile_upper_bound(&bounds, &counts, 10, 900), Some(100));
        assert_eq!(quantile_upper_bound(&bounds, &counts, 10, 990), Some(1000));
        assert_eq!(quantile_upper_bound(&bounds, &counts, 10, 1000), Some(1000));
        // Overflow observations saturate at the largest finite bound.
        let overflow = [0u64, 0, 0, 3];
        assert_eq!(quantile_upper_bound(&bounds, &overflow, 3, 500), Some(1000));
        // Empty histogram / out-of-range quantile.
        assert_eq!(quantile_upper_bound(&bounds, &[0, 0, 0, 0], 0, 500), None);
        assert_eq!(quantile_upper_bound(&bounds, &counts, 10, 1001), None);
        assert_eq!(quantile_upper_bound(&[], &[], 1, 500), None);
    }

    #[test]
    fn snapshot_quantile_aggregates_label_children() {
        let hist = |counts: Vec<u64>, count: u64| MetricValue::Histogram {
            bounds: vec![10, 100],
            counts,
            count,
            sum: 0,
        };
        let snap = Snapshot {
            metrics: vec![
                MetricSnapshot {
                    name: "lat".into(),
                    labels: vec![("op".into(), "a".into())],
                    value: hist(vec![9, 0, 0], 9),
                },
                MetricSnapshot {
                    name: "lat".into(),
                    labels: vec![("op".into(), "b".into())],
                    value: hist(vec![0, 1, 0], 1),
                },
                // A different layout is skipped, not mis-added.
                MetricSnapshot {
                    name: "lat".into(),
                    labels: vec![("op".into(), "c".into())],
                    value: MetricValue::Histogram {
                        bounds: vec![1],
                        counts: vec![100, 0],
                        count: 100,
                        sum: 0,
                    },
                },
            ],
        };
        // 10 aggregated observations, the 10th in the ≤100 bucket.
        assert_eq!(snap.quantile("lat", 900), Some(10));
        assert_eq!(snap.quantile("lat", 1000), Some(100));
        assert_eq!(snap.quantile("missing", 500), None);
    }

    fn sample() -> Snapshot {
        Snapshot {
            metrics: vec![
                MetricSnapshot {
                    name: "depth".into(),
                    labels: vec![],
                    value: MetricValue::Gauge(-3),
                },
                MetricSnapshot {
                    name: "hits".into(),
                    labels: vec![("class".into(), "MS\"(2,2)\"".into())],
                    value: MetricValue::Counter(41),
                },
                MetricSnapshot {
                    name: "hops".into(),
                    labels: vec![("net".into(), "RS(2,2)".into())],
                    value: MetricValue::Histogram {
                        bounds: vec![1, 2, 4],
                        counts: vec![5, 3, 2, 1],
                        count: 11,
                        sum: 23,
                    },
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let snap = sample();
        let json = snap.to_json();
        assert_eq!(Snapshot::from_json(&json).expect("parses"), snap);
    }

    #[test]
    fn text_renders_cumulative_buckets() {
        let text = sample().to_text();
        assert!(text.contains("# TYPE hops histogram"));
        assert!(text.contains("hops_bucket{net=\"RS(2,2)\",le=\"1\"} 5"));
        assert!(text.contains("hops_bucket{net=\"RS(2,2)\",le=\"4\"} 10"));
        assert!(text.contains("hops_bucket{net=\"RS(2,2)\",le=\"+Inf\"} 11"));
        assert!(text.contains("hops_count{net=\"RS(2,2)\"} 11"));
        assert!(text.contains("hops_sum{net=\"RS(2,2)\"} 23"));
        assert!(text.contains("depth -3"));
        // Quotes in label values are escaped.
        assert!(text.contains("hits{class=\"MS\\\"(2,2)\\\"\"} 41"));
    }

    #[test]
    fn text_rerender_after_json_round_trip_is_stable() {
        let snap = sample();
        let back = Snapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back.to_text(), snap.to_text());
    }

    #[test]
    fn filters_carve_sub_snapshots() {
        let snap = sample();
        assert_eq!(snap.filter_prefix("ho").metrics.len(), 1);
        let only_labeled = snap.filter(|m| !m.labels.is_empty());
        assert_eq!(only_labeled.metrics.len(), 2);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"metrics\":}",
            "{\"metrics\":[{\"name\":1}]}",
            "{\"metrics\":[]} trailing",
            "{\"metrics\":[{\"name\":\"x\",\"type\":\"counter\",\"value\":1.5}]}",
            "{\"metrics\":[{\"name\":\"x\",\"type\":\"counter\",\"value\":-1}]}",
            "{\"metrics\":[{\"name\":\"x\",\"type\":\"wat\",\"value\":1}]}",
        ] {
            assert!(Snapshot::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_labels_survive_the_round_trip() {
        let snap = Snapshot {
            metrics: vec![MetricSnapshot {
                name: "m".into(),
                labels: vec![("κ".into(), "π→σ\n".into())],
                value: MetricValue::Counter(1),
            }],
        };
        assert_eq!(Snapshot::from_json(&snap.to_json()).expect("parses"), snap);
    }
}
