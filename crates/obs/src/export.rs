//! Snapshot file exporter.
//!
//! The experiment binaries drop their metric snapshots under `results/` as
//! a text/JSON pair so the bench trajectory is both human-readable and
//! machine-parsable ([`Snapshot::from_json`](crate::Snapshot::from_json)
//! reads the `.json` side back).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::snapshot::Snapshot;

/// Writes `snap` as `<dir>/<stem>.txt` (plain text) and `<dir>/<stem>.json`
/// (JSON), creating `dir` if needed. Returns the two paths written.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the writes.
pub fn write_snapshot(dir: &Path, stem: &str, snap: &Snapshot) -> io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(dir)?;
    let txt = dir.join(format!("{stem}.txt"));
    let json = dir.join(format!("{stem}.json"));
    fs::write(&txt, snap.to_text())?;
    fs::write(&json, snap.to_json())?;
    Ok((txt, json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn writes_both_formats_and_round_trips() {
        let reg = Registry::new();
        reg.counter("exported_total", &[("side", "txt+json")])
            .add(5);
        let snap = reg.snapshot();

        let dir = std::env::temp_dir().join(format!("scg_obs_export_{}", std::process::id()));
        let (txt, json) = write_snapshot(&dir, "snap", &snap).expect("export");
        let txt_body = fs::read_to_string(&txt).expect("txt readable");
        let json_body = fs::read_to_string(&json).expect("json readable");
        assert!(txt_body.contains("exported_total{side=\"txt+json\"} 5"));
        assert_eq!(Snapshot::from_json(&json_body).expect("parses"), snap);
        fs::remove_dir_all(&dir).ok();
    }
}
