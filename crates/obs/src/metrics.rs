//! The three instruments: counter, gauge, fixed-bucket histogram.
//!
//! All three are built on relaxed atomics: updates from any number of
//! threads are individually atomic (`fetch_add` never loses an increment),
//! and the only ordering guarantee is the per-metric modification order —
//! exactly what a metrics layer needs, at the cost of one uncontended
//! atomic RMW per update.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // ord: Relaxed — independent counter snapshot; no other memory is published
    }
}

/// A value that can go up and down (queue depths, in-flight packets).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed); // ord: Relaxed — gauge value stands alone; readers need no ordering with other writes
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (running-maximum gauges
    /// such as peak queue depth).
    pub fn record_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed) // ord: Relaxed — independent gauge snapshot; no other memory is published
    }
}

/// A fixed-bucket cumulative-style histogram of `u64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]` (exclusive of earlier
/// buckets — counts are stored per-bucket and cumulated at snapshot time);
/// one implicit overflow bucket counts observations above the last bound.
/// Bounds are strictly increasing and fixed at construction, so concurrent
/// `observe` calls are a single atomic increment after a binary search.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing — bucket
    /// layouts are static configuration, and a malformed layout is a
    /// programming error best caught at construction.
    #[must_use]
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// `count` buckets of equal `width` starting at `start`:
    /// bounds `start, start+width, …`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `count == 0`.
    #[must_use]
    pub fn linear(start: u64, width: u64, count: usize) -> Self {
        assert!(width > 0 && count > 0, "degenerate linear layout");
        let bounds: Vec<u64> = (0..count as u64).map(|i| start + i * width).collect();
        Histogram::with_bounds(&bounds)
    }

    /// `count` geometrically growing buckets: bounds
    /// `start, start*factor, …`.
    ///
    /// # Panics
    ///
    /// Panics if `start == 0`, `factor < 2`, or `count == 0`.
    #[must_use]
    pub fn exponential(start: u64, factor: u64, count: usize) -> Self {
        assert!(
            start > 0 && factor >= 2 && count > 0,
            "degenerate exponential layout"
        );
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b = b.saturating_mul(factor);
        }
        bounds.dedup(); // saturation can repeat u64::MAX
        Histogram::with_bounds(&bounds)
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the overflow
    /// bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // ord: Relaxed — per-bucket snapshot; cross-bucket skew is acceptable for metrics
            .collect()
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ord: Relaxed — independent counter snapshot; no other memory is published
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // ord: Relaxed — independent counter snapshot; no other memory is published
    }

    /// The live [`quantile_upper_bound`](crate::quantile_upper_bound) of
    /// this histogram: the upper bound of the first bucket whose
    /// cumulative count reaches `q_x1000` per mille of the total
    /// (`500` → p50, `990` → p99). `None` when empty or `q_x1000 > 1000`.
    ///
    /// This is the estimator behind latency-SLO gauges: cheap enough to
    /// evaluate at scrape time, conservative in the usual bucketed sense
    /// (true quantile ≤ the returned bound, saturating at the largest
    /// finite bound for overflow observations).
    #[must_use]
    pub fn quantile_x1000(&self, q_x1000: u64) -> Option<u64> {
        crate::snapshot::quantile_upper_bound(
            &self.bounds,
            &self.bucket_counts(),
            self.count(),
            q_x1000,
        )
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }
}

/// A drop-guard that records elapsed wall-time into a histogram, in
/// microseconds. Used by the `obs`-feature hooks to time materializations
/// and connectivity audits without touching the early returns of the timed
/// function.
#[derive(Debug)]
pub struct Timer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Timer {
    /// Starts timing; the observation is recorded when the guard drops.
    #[must_use]
    pub fn new(hist: Arc<Histogram>) -> Self {
        Timer {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.hist.observe(micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_live_quantiles() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        assert_eq!(h.quantile_x1000(500), None);
        for v in [1u64, 2, 3, 4, 5, 50, 50, 50, 50, 500] {
            h.observe(v);
        }
        assert_eq!(h.quantile_x1000(500), Some(10));
        assert_eq!(h.quantile_x1000(900), Some(100));
        assert_eq!(h.quantile_x1000(990), Some(1000));
        h.observe(1_000_000); // overflow saturates at the last bound
        assert_eq!(h.quantile_x1000(1000), Some(1000));
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
        g.record_max(3);
        assert_eq!(g.get(), 3);
        g.record_max(-7); // never lowers
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::with_bounds(&[1, 2, 4, 8]);
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1000] {
            h.observe(v);
        }
        // <=1: {0,1}; <=2: {2}; <=4: {3,4}; <=8: {5,8}; overflow: {9,1000}.
        assert_eq!(h.bucket_counts(), vec![2, 1, 2, 2, 2]);
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 1032);
    }

    #[test]
    fn histogram_layout_constructors() {
        assert_eq!(Histogram::linear(10, 10, 3).bounds(), &[10, 20, 30]);
        assert_eq!(Histogram::exponential(1, 2, 5).bounds(), &[1, 2, 4, 8, 16]);
        // Saturating growth dedups to a single terminal bound.
        let h = Histogram::exponential(u64::MAX / 2, 4, 4);
        assert_eq!(h.bounds().last(), Some(&u64::MAX));
        assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::with_bounds(&[2, 1]);
    }

    #[test]
    fn histogram_mean() {
        let h = Histogram::with_bounds(&[10]);
        assert!(h.mean().abs() < f64::EPSILON);
        h.observe(2);
        h.observe(4);
        assert!((h.mean() - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn timer_records_into_histogram() {
        let h = Arc::new(Histogram::exponential(1, 10, 8));
        {
            let _t = Timer::new(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }
}
