//! Error type for registry and snapshot operations.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the fallible observability APIs.
///
/// The instrumentation helpers ([`Registry::counter`](crate::Registry) and
/// friends) deliberately never return these — a metrics layer must not be
/// able to crash the program it observes — but the `try_*` variants and the
/// JSON parser report them for tests and tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// A metric name was re-registered as a different kind (e.g. a counter
    /// re-requested as a histogram).
    KindCollision {
        /// The colliding metric family name.
        name: String,
        /// The kind already registered under `name`.
        existing: &'static str,
        /// The kind the caller asked for.
        requested: &'static str,
    },
    /// A metric name or label failed validation.
    BadName {
        /// The offending name.
        name: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A JSON snapshot failed to parse.
    Json {
        /// Byte offset of the failure.
        at: usize,
        /// What the parser expected.
        reason: &'static str,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::KindCollision {
                name,
                existing,
                requested,
            } => write!(
                f,
                "metric `{name}` already registered as a {existing}, requested as a {requested}"
            ),
            ObsError::BadName { name, reason } => {
                write!(f, "invalid metric or label name `{name}`: {reason}")
            }
            ObsError::Json { at, reason } => {
                write!(f, "snapshot JSON parse error at byte {at}: {reason}")
            }
        }
    }
}

impl Error for ObsError {}
