//! The deterministic metrics test harness: bucket-edge semantics, registry
//! collision behavior, snapshot round-trips, and a threaded stress test
//! proving no increment is ever lost under `std::thread::scope`.

use std::sync::Arc;

use scg_obs::{Histogram, ObsError, Registry, Snapshot};

/// Every value sits in exactly one bucket; edges are inclusive upper
/// bounds; the overflow bucket catches everything past the last bound.
#[test]
fn histogram_bucket_edges_exhaustively() {
    let bounds = [2u64, 5, 9];
    let h = Histogram::with_bounds(&bounds);
    for v in 0..=12 {
        h.observe(v);
    }
    // 0,1,2 -> <=2; 3,4,5 -> <=5; 6..=9 -> <=9; 10,11,12 -> overflow.
    assert_eq!(h.bucket_counts(), vec![3, 3, 4, 3]);
    assert_eq!(h.count(), 13);
    assert_eq!(h.sum(), (0..=12).sum::<u64>());
    // Exact edge values land in their own bucket, not the next one.
    let edge = Histogram::with_bounds(&bounds);
    for &b in &bounds {
        edge.observe(b);
    }
    assert_eq!(edge.bucket_counts(), vec![1, 1, 1, 0]);
}

/// Registering one name as two kinds — in any label order, across label
/// sets — is reported by the `try_*` API and absorbed (detached handle,
/// registry untouched) by the infallible API.
#[test]
fn registry_label_collisions() {
    let reg = Registry::new();
    let c = reg.counter("scg_requests_total", &[("class", "MS(2,2)")]);
    c.add(3);

    // Same family, different labels, wrong kind.
    assert!(matches!(
        reg.try_gauge("scg_requests_total", &[("class", "RS(2,2)")]),
        Err(ObsError::KindCollision {
            existing: "counter",
            requested: "gauge",
            ..
        })
    ));
    // Same labels, wrong kind.
    assert!(reg
        .try_histogram("scg_requests_total", &[("class", "MS(2,2)")], &[1, 2])
        .is_err());
    // Infallible path returns a detached instrument and leaves the
    // registry unchanged.
    let detached = reg.histogram("scg_requests_total", &[], &[1, 2]);
    detached.observe(1);
    assert_eq!(reg.len(), 1);
    assert_eq!(reg.snapshot().metrics.len(), 1);

    // Label *order* must not create a second child.
    let again = reg.counter("scg_requests_total", &[("class", "MS(2,2)")]);
    assert!(Arc::ptr_eq(&c, &again));
}

/// snapshot → JSON → snapshot is the identity, and the re-rendered text
/// is byte-identical — the exporter pair can never drift apart.
#[test]
fn snapshot_round_trip_text_and_json() {
    let reg = Registry::new();
    reg.counter("hits_total", &[("net", "MS(2,2)")]).add(17);
    reg.counter("hits_total", &[("net", "RS(2,2)")]).add(4);
    reg.gauge("queue_depth", &[]).set(-2);
    let h = reg.histogram("hops", &[("net", "MS(2,2)")], &[1, 2, 4, 8, 16]);
    for v in [0u64, 1, 3, 3, 7, 9, 40] {
        h.observe(v);
    }

    let snap = reg.snapshot();
    let parsed = Snapshot::from_json(&snap.to_json()).expect("round-trip parse");
    assert_eq!(parsed, snap);
    assert_eq!(parsed.to_text(), snap.to_text());
    assert_eq!(parsed.to_json(), snap.to_json());

    // The snapshot is deterministic: sorted by (name, labels).
    let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["hits_total", "hits_total", "hops", "queue_depth"]
    );
    assert_eq!(snap.metrics[0].labels[0].1, "MS(2,2)");
    assert_eq!(snap.metrics[1].labels[0].1, "RS(2,2)");
}

/// Relaxed atomics still mean atomic RMW: hammering one counter, one
/// gauge, and one histogram from many scoped threads loses nothing.
#[test]
fn threaded_stress_no_lost_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 25_000;

    let reg = Registry::new();
    let counter = reg.counter("stress_total", &[]);
    let gauge = reg.gauge("stress_balance", &[]);
    let hist = reg.histogram("stress_values", &[], &[8, 64, 512, 4096]);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = Arc::clone(&counter);
            let gauge = Arc::clone(&gauge);
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // Every thread adds and subtracts the same total, so
                    // the gauge must return to zero.
                    gauge.add(i as i64);
                    gauge.sub(i as i64);
                    hist.observe((t as u64 * PER_THREAD + i) % 5000);
                }
            });
        }
    });

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total);
    assert_eq!(gauge.get(), 0);
    assert_eq!(hist.count(), total);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), total);

    // The concurrent path and a sequential replay agree exactly.
    let replay = Histogram::with_bounds(&[8, 64, 512, 4096]);
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            replay.observe((t * PER_THREAD + i) % 5000);
        }
    }
    assert_eq!(hist.bucket_counts(), replay.bucket_counts());
    assert_eq!(hist.sum(), replay.sum());
}

/// Concurrent get-or-create on the same family returns handles that all
/// feed one instrument.
#[test]
fn threaded_registry_get_or_create_converges() {
    let reg = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let reg = &reg;
            scope.spawn(move || {
                for _ in 0..1_000 {
                    reg.counter("converge_total", &[("k", "v")]).inc();
                }
            });
        }
    });
    assert_eq!(reg.len(), 1);
    assert_eq!(reg.counter("converge_total", &[("k", "v")]).get(), 8_000);
}
