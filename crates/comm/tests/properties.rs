//! Property-based tests for the communication tasks.

use proptest::prelude::*;
use scg_comm::{
    gather_all_port, mnb_all_port, scatter_all_port, snb_all_port, te_all_port, te_sdc,
    te_single_port,
};
use scg_core::{CayleyNetwork, StarGraph, SuperCayleyGraph};

fn host_for(pick: u8) -> Box<dyn CayleyNetwork> {
    match pick % 6 {
        0 => Box::new(StarGraph::new(5).unwrap()),
        1 => Box::new(SuperCayleyGraph::macro_star(2, 2).unwrap()),
        2 => Box::new(SuperCayleyGraph::complete_rotation_star(2, 2).unwrap()),
        3 => Box::new(SuperCayleyGraph::insertion_selection(5).unwrap()),
        4 => Box::new(SuperCayleyGraph::macro_is(2, 2).unwrap()),
        _ => Box::new(SuperCayleyGraph::macro_rotator(2, 2).unwrap()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mnb_meets_bound_and_uses_links_evenly(pick in 0u8..6) {
        let net = host_for(pick);
        let r = mnb_all_port(net.as_ref(), 1_000).unwrap();
        prop_assert!(r.steps >= r.lower_bound, "{}", r.network);
        prop_assert!(r.optimality_ratio() <= 2.0, "{}", r.network);
        // Total informs across generators = N - 1.
        let total: u64 = r.generator_uses.iter().sum();
        prop_assert_eq!(total, r.num_nodes - 1);
    }

    #[test]
    fn te_model_ordering(pick in 0u8..6) {
        // All-port can never be slower than single-port, and single-port
        // meets the Σ dist volume bound within a small factor.
        let net = host_for(pick);
        let ap = te_all_port(net.as_ref(), 1_000, 1_000_000).unwrap();
        let sp = te_single_port(net.as_ref(), 1_000, 10_000_000).unwrap();
        let sdc = te_sdc(net.as_ref(), 1_000).unwrap();
        prop_assert!(ap.steps <= sp.steps, "{}", ap.network);
        prop_assert!(sp.steps >= sdc.steps, "single-port bound is Σ dist");
        prop_assert!(sp.optimality_ratio() < 3.0, "{}: {}", sp.network, sp.optimality_ratio());
        // Transmission volume is identical across models (same routes).
        prop_assert_eq!(ap.transmissions, sp.transmissions);
    }

    #[test]
    fn single_source_tasks_bounds(pick in 0u8..6) {
        let net = host_for(pick);
        let snb = snb_all_port(net.as_ref(), 1_000).unwrap();
        prop_assert!(snb.steps >= snb.lower_bound, "{}", snb.network);
        let sc = scatter_all_port(net.as_ref(), 1_000, 1_000_000).unwrap();
        prop_assert!(sc.steps >= sc.lower_bound);
        prop_assert!(sc.optimality_ratio() < 3.0, "{} scatter {}", sc.network, sc.steps);
        let ga = gather_all_port(net.as_ref(), 1_000, 1_000_000).unwrap();
        prop_assert!(ga.steps >= ga.lower_bound);
        // Scatter dominates SNB: personalized data is at least as hard as
        // one packet.
        prop_assert!(sc.steps + 1 >= snb.lower_bound);
    }
}
