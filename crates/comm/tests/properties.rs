//! Randomized tests for the communication tasks, exercising every host
//! class through the boxed-trait entry points. Driven by the vendored
//! deterministic PRNG (the workspace builds offline, so `proptest` is not
//! available).

use scg_comm::{
    gather_all_port, mnb_all_port, scatter_all_port, snb_all_port, te_all_port, te_sdc,
    te_single_port,
};
use scg_core::{CayleyNetwork, StarGraph, SuperCayleyGraph, SMALL_NET_CAP};

fn host_for(pick: u8) -> Box<dyn CayleyNetwork> {
    match pick % 6 {
        0 => Box::new(StarGraph::new(5).unwrap()),
        1 => Box::new(SuperCayleyGraph::macro_star(2, 2).unwrap()),
        2 => Box::new(SuperCayleyGraph::complete_rotation_star(2, 2).unwrap()),
        3 => Box::new(SuperCayleyGraph::insertion_selection(5).unwrap()),
        4 => Box::new(SuperCayleyGraph::macro_is(2, 2).unwrap()),
        _ => Box::new(SuperCayleyGraph::macro_rotator(2, 2).unwrap()),
    }
}

#[test]
fn mnb_meets_bound_and_uses_links_evenly() {
    for pick in 0u8..6 {
        let net = host_for(pick);
        let r = mnb_all_port(net.as_ref(), SMALL_NET_CAP).unwrap();
        assert!(r.steps >= r.lower_bound, "{}", r.network);
        assert!(r.optimality_ratio() <= 2.0, "{}", r.network);
        // Total informs across generators = N - 1.
        let total: u64 = r.generator_uses.iter().sum();
        assert_eq!(total, r.num_nodes - 1);
    }
}

#[test]
fn te_model_ordering() {
    for pick in 0u8..6 {
        // All-port can never be slower than single-port, and single-port
        // meets the Σ dist volume bound within a small factor.
        let net = host_for(pick);
        let ap = te_all_port(net.as_ref(), SMALL_NET_CAP, 1_000_000).unwrap();
        let sp = te_single_port(net.as_ref(), SMALL_NET_CAP, 10_000_000).unwrap();
        let sdc = te_sdc(net.as_ref(), SMALL_NET_CAP).unwrap();
        assert!(ap.steps <= sp.steps, "{}", ap.network);
        assert!(sp.steps >= sdc.steps, "single-port bound is Σ dist");
        assert!(
            sp.optimality_ratio() < 3.0,
            "{}: {}",
            sp.network,
            sp.optimality_ratio()
        );
        // Transmission volume is identical across models (same routes).
        assert_eq!(ap.transmissions, sp.transmissions);
    }
}

#[test]
fn single_source_tasks_bounds() {
    for pick in 0u8..6 {
        let net = host_for(pick);
        let snb = snb_all_port(net.as_ref(), SMALL_NET_CAP).unwrap();
        assert!(snb.steps >= snb.lower_bound, "{}", snb.network);
        let sc = scatter_all_port(net.as_ref(), SMALL_NET_CAP, 1_000_000).unwrap();
        assert!(sc.steps >= sc.lower_bound);
        assert!(
            sc.optimality_ratio() < 3.0,
            "{} scatter {}",
            sc.network,
            sc.steps
        );
        let ga = gather_all_port(net.as_ref(), SMALL_NET_CAP, 1_000_000).unwrap();
        assert!(ga.steps >= ga.lower_bound);
        // Scatter dominates SNB: personalized data is at least as hard as
        // one packet.
        assert!(sc.steps + 1 >= snb.lower_bound);
    }
}
