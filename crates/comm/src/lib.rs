//! Prototype communication tasks on star graphs and super Cayley graphs:
//! the multinode broadcast (MNB) and total exchange (TE) of Corollaries 2
//! and 3.
//!
//! Both tasks run on *any* [`CayleyNetwork`](scg_core::CayleyNetwork), so
//! the same code measures the star graph baseline and each super Cayley
//! host, exposing the degree-versus-distance trade-off the corollaries
//! quantify:
//!
//! * MNB: `Θ(N · log log N / log N)` on the star/IS,
//!   `Θ(N · √(log log N / log N))` on MS/Complete-RS/MIS/Complete-RIS with
//!   `l = Θ(n)` — both optimal for their degree ([`mnb_all_port`],
//!   [`mnb_sdc`]);
//! * TE: `Θ(N)` vs `Θ(N · √(log N / log log N))` ([`te_all_port`],
//!   [`te_sdc`]).
//!
//! The SDC implementations are **strictly optimal**: `N − 1` steps for the
//! MNB (a Hamiltonian-generator-word relay) and `Σ_w dist(w)` for the TE
//! (translated shortest paths), reproducing the Mišić–Jovanović constants
//! the paper invokes.
//!
//! # Examples
//!
//! ```
//! use scg_core::StarGraph;
//! use scg_comm::mnb_all_port;
//!
//! # fn main() -> Result<(), scg_comm::CommError> {
//! let star = StarGraph::new(5)?;
//! let report = mnb_all_port(&star, 1_000)?;
//! assert!(report.steps >= report.lower_bound);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
mod mnb;
mod permute;
mod snb;
mod te;

pub use error::CommError;
pub use mnb::{mnb_all_port, mnb_sdc, verify_sdc_relay, MnbReport};
pub use permute::{permutation_traffic, permute_route, PermuteReport};
pub use snb::{gather_all_port, scatter_all_port, snb_all_port, SnbReport};
pub use te::{te_all_port, te_sdc, te_single_port, TeReport};
