//! Permutation routing: every node sends to its image under a permutation
//! of the node set — the classic offline traffic pattern behind the
//! paper's congestion arguments.
//!
//! Routes are produced in bulk by [`scg_core::route_batch`] over the
//! host's compiled [`RoutePlan`](scg_core::RoutePlan) (shared through the
//! process-wide topology cache with the embedding and emulation layers),
//! so a workload of thousands of pairs costs no per-pair planning or
//! allocation. Since the packed-kernel rewrite the batch keeps each
//! pair's routing state in one `u64` lane (structure-of-arrays, `k ≤ 16`),
//! so the congestion sweeps here ride the word-parallel star-sort too. The report tallies the per-generator link loads — the
//! bottleneck generator count is the congestion proxy an offline
//! scheduler would pipeline against.

use scg_core::{
    route_batch, route_plan, star_diameter, star_distance_between, CayleyNetwork, Generator,
    SuperCayleyGraph,
};
use scg_perm::{Perm, XorShift64};

use crate::error::CommError;

/// Aggregate statistics of one routed permutation workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PermuteReport {
    /// Host network name.
    pub host: String,
    /// Number of source→destination pairs routed.
    pub pairs: usize,
    /// Total hops over all pairs.
    pub total_hops: usize,
    /// Longest single route.
    pub max_hops: usize,
    /// The worst-case route length the theorems allow:
    /// `star_dilation × star_diameter`.
    pub hop_bound: usize,
    /// Uses of the most-loaded generator across all routes — the
    /// bottleneck an offline link schedule contends with.
    pub bottleneck_load: usize,
}

impl PermuteReport {
    /// Mean hops per pair.
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.pairs as f64
        }
    }
}

/// A fixed-seed sampled permutation traffic pattern: `samples` random
/// labels, each paired with the next sample cyclically shifted by one —
/// a single-cycle permutation of the sample set, so every node is both a
/// source and a destination exactly once.
#[must_use]
pub fn permutation_traffic(k: usize, samples: usize, seed: u64) -> Vec<(Perm, Perm)> {
    let mut rng = XorShift64::new(seed);
    let labels: Vec<Perm> = (0..samples.max(2))
        .map(|_| Perm::random(k, &mut rng))
        .collect();
    (0..labels.len())
        .map(|i| (labels[i], labels[(i + 1) % labels.len()]))
        .collect()
}

/// Routes every pair of `traffic` on `host` over `threads` threads and
/// tallies the workload.
///
/// Every route obeys the Theorem 1–3 dilation bound against its pair's
/// star distance; the report additionally carries the absolute
/// `dilation × diameter` hop bound for context.
///
/// # Errors
///
/// * [`CommError::Core`] — a label's degree does not match the host.
pub fn permute_route(
    host: &SuperCayleyGraph,
    traffic: &[(Perm, Perm)],
    threads: usize,
) -> Result<PermuteReport, CommError> {
    let plan = route_plan(host)?;
    let routes = route_batch(host, traffic, threads)?;
    let mut loads: std::collections::HashMap<Generator, usize> = std::collections::HashMap::new();
    let mut total = 0usize;
    let mut max_hops = 0usize;
    for (route, (from, to)) in routes.iter().zip(traffic) {
        debug_assert!(
            route.len() as u32 <= plan.star_dilation() as u32 * star_distance_between(from, to)
        );
        total += route.len();
        max_hops = max_hops.max(route.len());
        for &g in route {
            *loads.entry(g).or_insert(0) += 1;
        }
    }
    Ok(PermuteReport {
        host: host.name(),
        pairs: traffic.len(),
        total_hops: total,
        max_hops,
        hop_bound: plan.star_dilation() * star_diameter(host.degree_k()) as usize,
        bottleneck_load: loads.values().copied().max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::{apply_path, scg_route};

    #[test]
    fn batch_workload_matches_sequential_routing() {
        let host = SuperCayleyGraph::macro_star(3, 2).unwrap();
        let traffic = permutation_traffic(7, 24, 0xC0FFEE);
        let report = permute_route(&host, &traffic, 4).unwrap();
        assert_eq!(report.pairs, 24);
        assert!(report.max_hops <= report.hop_bound);
        let sequential: usize = traffic
            .iter()
            .map(|(f, t)| scg_route(&host, f, t).unwrap().len())
            .sum();
        assert_eq!(report.total_hops, sequential);
    }

    #[test]
    fn traffic_is_a_single_cycle_and_routes_arrive() {
        let host = SuperCayleyGraph::insertion_selection(5).unwrap();
        let traffic = permutation_traffic(5, 10, 99);
        // Every sample appears once as source and once as destination.
        for (f, t) in &traffic {
            let path = scg_route(&host, f, t).unwrap();
            assert_eq!(apply_path(f, &path).unwrap(), *t);
        }
        let report = permute_route(&host, &traffic, 1).unwrap();
        assert!(report.bottleneck_load > 0);
        assert!(report.mean_hops() > 0.0);
    }
}
