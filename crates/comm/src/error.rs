use std::error::Error;
use std::fmt;

use scg_core::CoreError;
use scg_emu::EmuError;
use scg_graph::GraphError;

/// Error produced by communication-task algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Underlying network error (too large, invalid parameters, …).
    Core(CoreError),
    /// Underlying simulator error.
    Emu(EmuError),
    /// Underlying graph search error.
    Graph(GraphError),
    /// A schedule-construction search was inconclusive (e.g. the
    /// Hamiltonian-word search for the optimal SDC broadcast ran out of
    /// budget).
    SearchInconclusive,
    /// The algorithm failed to complete the task (a bug guard: some node
    /// ended up missing packets).
    Incomplete {
        /// Explanation of what was missing.
        reason: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Core(e) => write!(f, "network error: {e}"),
            CommError::Emu(e) => write!(f, "simulator error: {e}"),
            CommError::Graph(e) => write!(f, "graph error: {e}"),
            CommError::SearchInconclusive => write!(f, "search budget exhausted"),
            CommError::Incomplete { reason } => write!(f, "task incomplete: {reason}"),
        }
    }
}

impl Error for CommError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CommError::Core(e) => Some(e),
            CommError::Emu(e) => Some(e),
            CommError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CommError {
    fn from(e: CoreError) -> Self {
        CommError::Core(e)
    }
}

impl From<EmuError> for CommError {
    fn from(e: EmuError) -> Self {
        CommError::Emu(e)
    }
}

impl From<GraphError> for CommError {
    fn from(e: GraphError) -> Self {
        CommError::Graph(e)
    }
}
