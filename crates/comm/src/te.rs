//! The total exchange (TE): every node sends a distinct personalized packet
//! to every other node (Corollary 3).
//!
//! * Under the **SDC** model each node receives at most one packet per
//!   step, and routing offset `w`'s packets along translated shortest
//!   paths makes every receive useful, so the optimum is exactly
//!   `Σ_{w≠e} dist(e, w)` — `N` times the mean internodal distance, the
//!   `Θ(N·k)` behind Mišić–Jovanović's `(k+1)! + o((k+1)!)`.
//! * Under the **all-port** model the same packet-hop volume spreads over
//!   `d` links per node, giving the `Σ_w dist(w) / d` lower bound — the
//!   `Θ(N)` (star/IS) and `Θ(N·√(log N / log log N))` (MS etc.) of
//!   Corollary 3. [`te_all_port`] measures the actual completion time on
//!   the store-and-forward simulator with shortest-path table routing.

use scg_core::{materialize, CayleyNetwork};
use scg_emu::{Packet, PortModel, SyncSim, TableRouter};
use scg_graph::{NodeId, UNREACHABLE};

use crate::error::CommError;

/// Measured completion of a total exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct TeReport {
    /// Network name.
    pub network: String,
    /// Number of nodes `N`.
    pub num_nodes: u64,
    /// Node degree `d`.
    pub degree: usize,
    /// Steps taken (SDC: the exact optimum; all-port: simulator
    /// measurement).
    pub steps: u64,
    /// Model lower bound (`Σ_w dist(w)` SDC; `⌈Σ_w dist(w) / d⌉` all-port).
    pub lower_bound: u64,
    /// Total packet transmissions performed.
    pub transmissions: u64,
    /// Per-link traffic summary (all-port simulation only; `None` for the
    /// closed-form SDC optimum, whose translated-shortest-path traffic is
    /// uniform by vertex symmetry).
    pub traffic: Option<scg_emu::TrafficSummary>,
}

impl TeReport {
    /// `steps / lower_bound` — 1.0 means matching the volume bound.
    #[must_use]
    pub fn optimality_ratio(&self) -> f64 {
        self.steps as f64 / self.lower_bound as f64
    }
}

/// Distance sum `Σ_{w≠e} dist(e, w)` of a vertex-transitive network.
fn distance_sum(net: &(impl CayleyNetwork + ?Sized), cap: u64) -> Result<u64, CommError> {
    let mat = materialize(net, cap)?;
    let dist = mat.graph().bfs_distances(0);
    let mut sum = 0u64;
    for &d in &dist {
        if d == UNREACHABLE {
            return Err(CommError::Incomplete {
                reason: "network not strongly connected".into(),
            });
        }
        sum += u64::from(d);
    }
    Ok(sum)
}

/// The exact SDC total-exchange optimum: offset-by-offset translated
/// shortest-path routing costs `Σ_{w≠e} dist(w)` steps, which matches the
/// per-node receive bound (every receive is a packet's final or necessary
/// intermediate hop).
///
/// # Examples
///
/// ```
/// use scg_core::StarGraph;
///
/// # fn main() -> Result<(), scg_comm::CommError> {
/// let report = scg_comm::te_sdc(&StarGraph::new(4)?, 100)?;
/// assert_eq!(report.steps, 62); // Σ dist over the 4-star
/// assert_eq!(report.optimality_ratio(), 1.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CommError::Core`] — network exceeds `cap` nodes;
/// * [`CommError::Incomplete`] — network not strongly connected.
pub fn te_sdc(net: &(impl CayleyNetwork + ?Sized), cap: u64) -> Result<TeReport, CommError> {
    let sum = distance_sum(net, cap)?;
    Ok(TeReport {
        network: net.name(),
        num_nodes: net.num_nodes(),
        degree: net.node_degree(),
        steps: sum,
        lower_bound: sum,
        transmissions: net.num_nodes().saturating_mul(sum),
        traffic: None,
    })
}

/// All-port total exchange measured on the store-and-forward simulator:
/// all `N(N−1)` packets are injected at time zero and routed along
/// shortest paths (hash-balanced over ties).
///
/// # Errors
///
/// * [`CommError::Core`] — network exceeds `cap` nodes;
/// * [`CommError::Emu`] — simulator failure or `max_steps` exceeded.
pub fn te_all_port(
    net: &(impl CayleyNetwork + ?Sized),
    cap: u64,
    max_steps: u64,
) -> Result<TeReport, CommError> {
    te_simulated(net, cap, max_steps, PortModel::AllPort)
}

/// Single-port total exchange: as [`te_all_port`] but each node drives one
/// outgoing link per step, so the per-node send volume `Σ_w dist(w)`
/// governs (the same figure as the SDC optimum).
///
/// # Errors
///
/// As [`te_all_port`].
pub fn te_single_port(
    net: &(impl CayleyNetwork + ?Sized),
    cap: u64,
    max_steps: u64,
) -> Result<TeReport, CommError> {
    te_simulated(net, cap, max_steps, PortModel::SinglePort)
}

fn te_simulated(
    net: &(impl CayleyNetwork + ?Sized),
    cap: u64,
    max_steps: u64,
    model: PortModel,
) -> Result<TeReport, CommError> {
    let mat = materialize(net, cap)?;
    let graph = mat.graph();
    let router = TableRouter::new(graph)?;
    let mut sim = SyncSim::new(graph, model);
    let n = graph.num_nodes() as NodeId;
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                sim.inject(
                    src,
                    Packet {
                        src,
                        dst,
                        payload: 0,
                    },
                    &router,
                )?;
            }
        }
    }
    let stats = sim.run(&router, max_steps)?;
    let traffic = scg_emu::TrafficSummary::from_counts(sim.link_traffic().iter().copied());
    let sum = distance_sum(net, cap)?;
    let lower_bound = match model {
        PortModel::AllPort => sum.div_ceil(net.node_degree() as u64),
        PortModel::SinglePort => sum,
    };
    Ok(TeReport {
        network: net.name(),
        num_nodes: net.num_nodes(),
        degree: net.node_degree(),
        steps: stats.steps,
        lower_bound,
        transmissions: stats.transmissions,
        traffic: Some(traffic),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::{StarGraph, SuperCayleyGraph, SMALL_NET_CAP};

    #[test]
    fn te_sdc_matches_distance_sum_on_star() {
        let star = StarGraph::new(4).unwrap();
        let r = te_sdc(&star, 100).unwrap();
        // 4-star distance distribution from the identity: known histogram;
        // the sum must equal N × mean distance.
        let g = star.to_graph(100).unwrap();
        let stats = scg_graph::DistanceStats::single_source(&g, 0);
        let by_hist: u64 = stats
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        assert_eq!(r.steps, by_hist);
        assert_eq!(r.optimality_ratio(), 1.0);
    }

    #[test]
    fn te_all_port_on_star_is_near_volume_bound() {
        let star = StarGraph::new(5).unwrap();
        let r = te_all_port(&star, SMALL_NET_CAP, 100_000).unwrap();
        assert!(r.steps >= r.lower_bound);
        assert!(
            r.optimality_ratio() < 3.0,
            "TE too slow: {} vs bound {}",
            r.steps,
            r.lower_bound
        );
        // Shortest-path routing: transmissions equal N × Σ dist exactly.
        let sum = r.lower_bound * r.degree as u64;
        assert!(r.transmissions >= r.num_nodes * (sum / r.degree as u64) / 2);
    }

    #[test]
    fn te_all_port_on_super_cayley_hosts() {
        for host in [
            SuperCayleyGraph::macro_star(2, 2).unwrap(),
            SuperCayleyGraph::insertion_selection(5).unwrap(),
        ] {
            let r = te_all_port(&host, SMALL_NET_CAP, 100_000).unwrap();
            assert!(r.steps >= r.lower_bound, "{}", r.network);
            assert!(r.optimality_ratio() < 4.0, "{}", r.network);
        }
    }

    #[test]
    fn te_sdc_scales_with_degree_tradeoff() {
        // Corollary 3's shape: the star (higher degree) has smaller mean
        // distance than MS(2,2) (lower degree) on the same node set, so its
        // SDC TE optimum is smaller.
        let star = te_sdc(&StarGraph::new(5).unwrap(), SMALL_NET_CAP).unwrap();
        let ms = te_sdc(&SuperCayleyGraph::macro_star(2, 2).unwrap(), SMALL_NET_CAP).unwrap();
        assert!(star.steps < ms.steps);
    }
}
