//! The multinode broadcast (MNB): every node broadcasts one packet to all
//! other nodes (Corollary 2).
//!
//! On a vertex-transitive network, an MNB schedule is fully described by
//! the *relative* schedule of a single broadcast: source `u`'s packet
//! traverses link `(v, v·g)` at step `t` exactly when relative position
//! `w = u^{-1}v` transmits through generator `g` at step `t` in the
//! reference schedule. Two different broadcasts collide on a link iff two
//! distinct relative positions use the same generator at the same step — so
//! a conflict-free MNB is a single-source broadcast schedule in which
//! **each generator is used by at most one (relative) node per step**.
//!
//! * Under the **all-port** model, at most `d` new nodes learn the packet
//!   per step, so `T >= ⌈(N−1)/d⌉`; [`mnb_all_port`] builds a greedy
//!   matching-based schedule that approaches this bound (the Θ(N/d) of
//!   Corollary 2).
//! * Under the **single-dimension** (SDC) model each node receives at most
//!   one packet per step, so `T >= N − 1`; [`mnb_sdc`] achieves exactly
//!   `N − 1` — the strictly optimal completion time of Mišić & Jovanović —
//!   by relaying along a *Hamiltonian generator word* `g_1 … g_{N−1}`
//!   (prefix products visit every node): at step `t` every node `v`
//!   forwards the packet that originated at `v · w_{t-1}^{-1}` through
//!   `g_t`, and an easy induction shows it received exactly that packet the
//!   step before.

use scg_core::{materialize, CayleyNetwork};
use scg_graph::{hamiltonian_path, NodeId, SearchBudget};

use crate::error::CommError;

/// Measured completion of a multinode broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct MnbReport {
    /// Network name.
    pub network: String,
    /// Number of nodes `N`.
    pub num_nodes: u64,
    /// Node degree `d`.
    pub degree: usize,
    /// Steps the schedule takes.
    pub steps: u64,
    /// Model-specific lower bound (`⌈(N−1)/d⌉` all-port, `N−1` SDC).
    pub lower_bound: u64,
    /// Per-generator transmission counts of the reference schedule (empty
    /// for the SDC relay, whose per-step generator use is 1 by
    /// construction). By vertex symmetry this is also the per-link traffic.
    pub generator_uses: Vec<u64>,
}

impl MnbReport {
    /// `steps / lower_bound` — 1.0 means strictly optimal.
    #[must_use]
    pub fn optimality_ratio(&self) -> f64 {
        self.steps as f64 / self.lower_bound as f64
    }
}

/// Greedy all-port MNB: per step, each generator informs one new node
/// (chosen from the current frontier), which is the per-step maximum the
/// conflict-freedom argument allows.
///
/// # Examples
///
/// ```
/// use scg_core::StarGraph;
///
/// # fn main() -> Result<(), scg_comm::CommError> {
/// let report = scg_comm::mnb_all_port(&StarGraph::new(5)?, 1_000)?;
/// assert_eq!(report.steps, 30); // exactly ⌈119/4⌉ — the lower bound
/// # Ok(())
/// # }
/// ```
///
/// The returned step count satisfies `steps >= ⌈(N−1)/d⌉` and the schedule
/// is verified to inform every node.
///
/// # Errors
///
/// * [`CommError::Core`] — network exceeds `cap` nodes;
/// * [`CommError::Incomplete`] — internal guard (cannot happen on a
///   connected network).
pub fn mnb_all_port(net: &(impl CayleyNetwork + ?Sized), cap: u64) -> Result<MnbReport, CommError> {
    // CSR neighbor order is rank order, not generator order; the engine's
    // rank-transition tables give neighbor-by-generator directly.
    let mat = materialize(net, cap)?;
    let n = mat.num_nodes();
    let d = mat.node_degree();

    let mut informed = vec![false; n];
    informed[0] = true;
    let mut num_informed = 1usize;
    // Per generator, a cursor over the informed list to keep the scan
    // amortized linear.
    let mut holders: Vec<NodeId> = vec![0];
    let mut cursor = vec![0usize; d];
    let mut steps = 0u64;
    let mut generator_uses = vec![0u64; d];
    while num_informed < n {
        let mut newly: Vec<NodeId> = Vec::new();
        for gi in 0..d {
            // Advance this generator's cursor to a holder whose gi-neighbor
            // is uninformed.
            while cursor[gi] < holders.len() {
                let w = holders[cursor[gi]];
                let v = mat.neighbor_id(w, gi);
                if !informed[v as usize] {
                    informed[v as usize] = true;
                    newly.push(v);
                    generator_uses[gi] += 1;
                    break;
                }
                cursor[gi] += 1;
            }
        }
        if newly.is_empty() {
            return Err(CommError::Incomplete {
                reason: format!("{} nodes never informed", n - num_informed),
            });
        }
        num_informed += newly.len();
        holders.extend(newly);
        steps += 1;
    }
    Ok(MnbReport {
        network: net.name(),
        num_nodes: n as u64,
        degree: d,
        steps,
        lower_bound: ((n as u64) - 1).div_ceil(d as u64),
        generator_uses,
    })
}

/// Executes the Hamiltonian-word relay step by step on explicit per-node
/// packet sets and checks that after `N − 1` steps every node holds every
/// other node's packet — the executable counterpart of the induction in the
/// module docs. `word` is the node sequence of a Hamiltonian path from node
/// 0 (as produced inside [`mnb_sdc`]).
///
/// Memory is `Θ(N²)` bits, so keep `N` modest (tests use `N = 120`).
///
/// # Errors
///
/// Returns [`CommError::Incomplete`] if the relay leaves any node short of
/// a packet (i.e. `word` is not a valid Hamiltonian witness).
pub fn verify_sdc_relay(
    net: &(impl CayleyNetwork + ?Sized),
    word: &[NodeId],
) -> Result<(), CommError> {
    let n = net.num_nodes() as usize;
    if word.len() != n || word[0] != 0 {
        return Err(CommError::Incomplete {
            reason: "witness must visit all nodes starting at the identity".into(),
        });
    }
    let mat = materialize(net, n as u64)?;
    // Recover the generator word g_1..g_{N-1} from consecutive path nodes,
    // as generator *indices* into the engine's transition tables.
    let mut gens = Vec::with_capacity(n - 1);
    for w in word.windows(2) {
        let gi = (0..mat.node_degree())
            .find(|&g| mat.neighbor_id(w[0], g) == w[1])
            .ok_or_else(|| CommError::Incomplete {
                reason: "witness step is not a generator application".into(),
            })?;
        gens.push(gi);
    }
    // has[v][u] = node v holds the packet of source u; holding[v] = the
    // packet node v forwards next (starts with its own).
    let mut has = vec![vec![false; n]; n];
    let mut holding: Vec<usize> = (0..n).collect();
    for &gi in &gens {
        // Every node v sends `holding[v]` through g simultaneously.
        let table = mat.table(gi);
        let mut arrivals = vec![0usize; n];
        for v in 0..n {
            arrivals[table[v] as usize] = holding[v];
        }
        for v in 0..n {
            has[v][arrivals[v]] = true;
            holding[v] = arrivals[v];
        }
    }
    for (v, row) in has.iter().enumerate() {
        for (u, &got) in row.iter().enumerate() {
            if u != v && !got {
                return Err(CommError::Incomplete {
                    reason: format!("node {v} never received packet of {u}"),
                });
            }
        }
    }
    Ok(())
}

/// Strictly optimal SDC MNB in exactly `N − 1` steps via a Hamiltonian
/// generator word (see module docs). On networks of at most 1000 nodes the
/// relay is additionally executed packet-by-packet ([`verify_sdc_relay`]),
/// so the reported step count is certified, not argued.
///
/// # Errors
///
/// * [`CommError::Core`] — network exceeds `cap` nodes;
/// * [`CommError::SearchInconclusive`] — Hamiltonian-path search exhausted
///   `budget`;
/// * [`CommError::Incomplete`] — no Hamiltonian path from the identity
///   exists (not observed on any class in this crate).
pub fn mnb_sdc(
    net: &(impl CayleyNetwork + ?Sized),
    cap: u64,
    budget: &mut SearchBudget,
) -> Result<MnbReport, CommError> {
    let mat = materialize(net, cap)?;
    let graph = mat.graph();
    let n = graph.num_nodes();
    let path = match hamiltonian_path(graph, 0, budget) {
        Ok(Some(p)) => p,
        Ok(None) => {
            return Err(CommError::Incomplete {
                reason: "no Hamiltonian path from identity".into(),
            })
        }
        Err(scg_graph::GraphError::BudgetExhausted) => return Err(CommError::SearchInconclusive),
        Err(e) => return Err(e.into()),
    };
    // The word exists; the relay argument (module docs) delivers every
    // packet in exactly N − 1 steps. Verify the path is a valid witness:
    // every consecutive pair is a link, i.e. a generator application.
    for w in path.windows(2) {
        if graph.edge_index(w[0], w[1]).is_none() {
            return Err(CommError::Incomplete {
                reason: "hamiltonian witness broken".into(),
            });
        }
    }
    // For small networks, certify by executing the relay outright.
    if n <= 1000 {
        verify_sdc_relay(net, &path)?;
    }
    Ok(MnbReport {
        network: net.name(),
        num_nodes: n as u64,
        degree: net.node_degree(),
        steps: (n as u64) - 1,
        lower_bound: (n as u64) - 1,
        generator_uses: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::{StarGraph, SuperCayleyGraph, SMALL_NET_CAP};

    #[test]
    fn all_port_mnb_on_star_is_near_optimal() {
        let star = StarGraph::new(5).unwrap();
        let r = mnb_all_port(&star, SMALL_NET_CAP).unwrap();
        assert_eq!(r.num_nodes, 120);
        assert_eq!(r.lower_bound, 30); // ⌈119/4⌉
        assert!(r.steps >= r.lower_bound);
        assert!(
            r.optimality_ratio() < 1.5,
            "greedy MNB too far from optimal: {} vs {}",
            r.steps,
            r.lower_bound
        );
    }

    #[test]
    fn all_port_mnb_on_super_cayley_hosts() {
        for host in [
            SuperCayleyGraph::macro_star(2, 2).unwrap(),
            SuperCayleyGraph::insertion_selection(5).unwrap(),
            SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
        ] {
            let r = mnb_all_port(&host, SMALL_NET_CAP).unwrap();
            assert!(r.steps >= r.lower_bound, "{}", r.network);
            assert!(r.optimality_ratio() < 2.0, "{}", r.network);
        }
    }

    #[test]
    fn sdc_mnb_is_strictly_optimal() {
        let star = StarGraph::new(4).unwrap();
        let r = mnb_sdc(&star, 100, &mut SearchBudget::new(10_000_000)).unwrap();
        assert_eq!(r.steps, 23); // k! − 1, Mišić–Jovanović's constant
        assert_eq!(r.optimality_ratio(), 1.0);
    }

    #[test]
    fn sdc_mnb_on_insertion_selection_host() {
        // IS(5) has degree 2(k−1) = 8; the Warnsdorff search finds a
        // Hamiltonian word quickly. (Degree-3 MS(2,2) also admits one but
        // the exhaustive search is slow; the bench binary covers it.)
        let is5 = SuperCayleyGraph::insertion_selection(5).unwrap();
        let r = mnb_sdc(&is5, SMALL_NET_CAP, &mut SearchBudget::new(50_000_000)).unwrap();
        assert_eq!(r.steps, 119);
    }
}
