//! Single-source prototype tasks: single-node broadcast (SNB), scatter
//! (single-node personalized send), and gather.
//!
//! These are the remaining basic communication tasks of the paper's
//! reference set (Bertsekas & Tsitsiklis; Johnsson & Ho): the paper's MNB
//! and TE are their all-to-all counterparts. They complete the prototype
//! task suite and calibrate the simulator:
//!
//! * **SNB** floods one packet; under all-port flooding the completion time
//!   is exactly the source's eccentricity, lower-bounded by the Moore bound
//!   `DL(d, N)`;
//! * **scatter** sends `N − 1` personalized packets from one source, so the
//!   source's out-links bound the time by `⌈(N−1)/d⌉`;
//! * **gather** is the reverse (every node sends to one sink), bounded by
//!   the sink's in-links.

use scg_core::{materialize, CayleyNetwork};
use scg_emu::{Packet, PortModel, SyncSim, TableRouter};
use scg_graph::{moore_diameter_lower_bound, NodeId, UNREACHABLE};

use crate::error::CommError;

/// Measured completion of a single-source task.
#[derive(Debug, Clone, PartialEq)]
pub struct SnbReport {
    /// Network name.
    pub network: String,
    /// Number of nodes.
    pub num_nodes: u64,
    /// Node degree.
    pub degree: usize,
    /// Steps to completion.
    pub steps: u64,
    /// Task-specific lower bound.
    pub lower_bound: u64,
}

impl SnbReport {
    /// `steps / lower_bound`.
    #[must_use]
    pub fn optimality_ratio(&self) -> f64 {
        self.steps as f64 / self.lower_bound as f64
    }
}

/// Single-node broadcast by all-port flooding: completion time is the
/// eccentricity of the source (node 0), compared against the universal
/// Moore bound.
///
/// # Errors
///
/// * [`CommError::Core`] — network exceeds `cap` nodes;
/// * [`CommError::Incomplete`] — some node unreachable.
pub fn snb_all_port(net: &(impl CayleyNetwork + ?Sized), cap: u64) -> Result<SnbReport, CommError> {
    let mat = materialize(net, cap)?;
    let dist = mat.graph().bfs_distances(0);
    let mut ecc = 0u64;
    for &d in &dist {
        if d == UNREACHABLE {
            return Err(CommError::Incomplete {
                reason: "network not strongly connected".into(),
            });
        }
        ecc = ecc.max(u64::from(d));
    }
    Ok(SnbReport {
        network: net.name(),
        num_nodes: net.num_nodes(),
        degree: net.node_degree(),
        steps: ecc,
        lower_bound: u64::from(moore_diameter_lower_bound(
            net.node_degree() as u64,
            net.num_nodes(),
        )),
    })
}

/// Scatter: node 0 sends one personalized packet to every other node,
/// measured on the store-and-forward simulator with shortest-path routing.
///
/// # Errors
///
/// * [`CommError::Core`] — network exceeds `cap` nodes;
/// * [`CommError::Emu`] — simulation failure or `max_steps` exceeded.
pub fn scatter_all_port(
    net: &(impl CayleyNetwork + ?Sized),
    cap: u64,
    max_steps: u64,
) -> Result<SnbReport, CommError> {
    let mat = materialize(net, cap)?;
    let graph = mat.graph();
    let router = TableRouter::new(graph)?;
    let mut sim = SyncSim::new(graph, PortModel::AllPort);
    let n = graph.num_nodes() as NodeId;
    for dst in 1..n {
        sim.inject(
            0,
            Packet {
                src: 0,
                dst,
                payload: 0,
            },
            &router,
        )?;
    }
    let stats = sim.run(&router, max_steps)?;
    Ok(SnbReport {
        network: net.name(),
        num_nodes: net.num_nodes(),
        degree: net.node_degree(),
        steps: stats.steps,
        lower_bound: (net.num_nodes() - 1).div_ceil(net.node_degree() as u64),
    })
}

/// Gather: every node sends one packet to node 0.
///
/// # Errors
///
/// As [`scatter_all_port`].
pub fn gather_all_port(
    net: &(impl CayleyNetwork + ?Sized),
    cap: u64,
    max_steps: u64,
) -> Result<SnbReport, CommError> {
    let mat = materialize(net, cap)?;
    let graph = mat.graph();
    let router = TableRouter::new(graph)?;
    let mut sim = SyncSim::new(graph, PortModel::AllPort);
    let n = graph.num_nodes() as NodeId;
    for src in 1..n {
        sim.inject(
            src,
            Packet {
                src,
                dst: 0,
                payload: 0,
            },
            &router,
        )?;
    }
    let stats = sim.run(&router, max_steps)?;
    Ok(SnbReport {
        network: net.name(),
        num_nodes: net.num_nodes(),
        degree: net.node_degree(),
        steps: stats.steps,
        lower_bound: (net.num_nodes() - 1).div_ceil(net.node_degree() as u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::{StarGraph, SuperCayleyGraph, SMALL_NET_CAP};

    #[test]
    fn snb_time_is_eccentricity() {
        let star = StarGraph::new(5).unwrap();
        let r = snb_all_port(&star, SMALL_NET_CAP).unwrap();
        assert_eq!(r.steps, 6); // star diameter ⌊3·4/2⌋
        assert!(r.steps >= r.lower_bound);
    }

    #[test]
    fn scatter_is_source_link_bound() {
        let star = StarGraph::new(5).unwrap();
        let r = scatter_all_port(&star, SMALL_NET_CAP, 100_000).unwrap();
        assert_eq!(r.lower_bound, 30); // ⌈119/4⌉
        assert!(r.steps >= r.lower_bound);
        assert!(
            r.optimality_ratio() < 2.0,
            "scatter ratio {}",
            r.optimality_ratio()
        );
    }

    #[test]
    fn gather_mirrors_scatter_on_undirected_hosts() {
        let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let s = scatter_all_port(&ms, SMALL_NET_CAP, 100_000).unwrap();
        let g = gather_all_port(&ms, SMALL_NET_CAP, 100_000).unwrap();
        assert!(s.steps >= s.lower_bound);
        assert!(g.steps >= g.lower_bound);
        // Same volume through the mirrored bottleneck: times are close.
        let ratio = s.steps as f64 / g.steps as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "scatter {} vs gather {}",
            s.steps,
            g.steps
        );
    }

    #[test]
    fn snb_on_every_class() {
        for host in [
            SuperCayleyGraph::insertion_selection(5).unwrap(),
            SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
        ] {
            let r = snb_all_port(&host, SMALL_NET_CAP).unwrap();
            assert!(r.steps >= r.lower_bound, "{}", r.network);
        }
    }
}
