//! Randomized tests for generator algebra and routing. Driven by the
//! vendored deterministic PRNG (the workspace builds offline, so `proptest`
//! is not available).

use scg_core::{
    apply_path, scg_route, star_distance, star_distance_between, star_route, star_sort_sequence,
    CayleyNetwork, Generator, StarEmulation, SuperCayleyGraph,
};
use scg_perm::{factorial, Perm, XorShift64};

fn rand_perm(k: usize, rng: &mut XorShift64) -> Perm {
    Perm::from_rank(k, rng.gen_range_u64(factorial(k))).expect("rank in range")
}

/// Small (l, n) pairs for super Cayley hosts with k = nl + 1 <= 9.
const SHAPES: [(usize, usize); 5] = [(2, 2), (2, 3), (3, 2), (2, 4), (4, 2)];

#[test]
fn star_route_is_optimal_and_correct() {
    let mut rng = XorShift64::new(71);
    for _ in 0..64 {
        let k = 2 + rng.gen_range(7);
        let from = rand_perm(k, &mut rng);
        let to = rand_perm(k, &mut rng);
        let path = star_route(&from, &to);
        assert_eq!(apply_path(&from, &path).unwrap(), to);
        assert_eq!(path.len() as u32, star_distance_between(&from, &to));
        // Triangle inequality against any midpoint label via sort sequences.
        assert!(star_distance(&from) <= star_distance(&to) + path.len() as u32);
    }
}

#[test]
fn sort_sequence_uses_only_star_generators() {
    let mut rng = XorShift64::new(72);
    for _ in 0..64 {
        let k = 2 + rng.gen_range(7);
        let p = rand_perm(k, &mut rng);
        for g in star_sort_sequence(&p) {
            assert!(matches!(g, Generator::Transposition { .. }));
        }
    }
}

#[test]
fn star_expansion_commutes_with_any_start() {
    let mut rng = XorShift64::new(73);
    for (l, n) in SHAPES {
        let k = l * n + 1;
        for _ in 0..4 {
            let u = rand_perm(k, &mut rng);
            for host in [
                SuperCayleyGraph::macro_star(l, n).unwrap(),
                SuperCayleyGraph::complete_rotation_star(l, n).unwrap(),
                SuperCayleyGraph::macro_is(l, n).unwrap(),
                SuperCayleyGraph::rotation_is(l, n).unwrap(),
            ] {
                let emu = StarEmulation::new(&host).unwrap();
                for j in 2..=k {
                    let seq = emu.expand_star_link(j).unwrap();
                    assert_eq!(
                        apply_path(&u, &seq).unwrap(),
                        Generator::transposition(j).apply(&u).unwrap(),
                        "host {} link {}",
                        host.name(),
                        j
                    );
                }
            }
        }
    }
}

#[test]
fn scg_route_endpoint_and_bound() {
    let mut rng = XorShift64::new(74);
    for (l, n) in SHAPES {
        let k = l * n + 1;
        let host = SuperCayleyGraph::macro_star(l, n).unwrap();
        let emu = StarEmulation::new(&host).unwrap();
        for _ in 0..8 {
            let from = rand_perm(k, &mut rng);
            let to = rand_perm(k, &mut rng);
            let path = scg_route(&host, &from, &to).unwrap();
            assert_eq!(apply_path(&from, &path).unwrap(), to);
            assert!(
                path.len() as u32 <= emu.star_dilation() as u32 * star_distance_between(&from, &to)
            );
            // Every link on the path is a defined host generator.
            for g in &path {
                assert!(host.generators().contains(g));
            }
        }
    }
}

#[test]
fn tn_expansion_correct_for_random_pairs() {
    let mut rng = XorShift64::new(75);
    for host_pick in 0usize..4 {
        let host = match host_pick {
            0 => SuperCayleyGraph::macro_star(3, 2).unwrap(),
            1 => SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
            2 => SuperCayleyGraph::macro_is(3, 2).unwrap(),
            _ => SuperCayleyGraph::insertion_selection(7).unwrap(),
        };
        let k = host.degree_k();
        let emu = StarEmulation::new(&host).unwrap();
        for _ in 0..16 {
            let u = rand_perm(k, &mut rng);
            let i = 1 + rng.gen_range(k - 1);
            let j = i + 1 + rng.gen_range(k - i);
            let seq = emu.expand_tn_link(i, j).unwrap();
            assert_eq!(
                apply_path(&u, &seq).unwrap(),
                Generator::exchange(i, j).apply(&u).unwrap(),
                "host {} pair ({}, {})",
                host.name(),
                i,
                j
            );
        }
    }
}
