//! Property-based tests for generator algebra and routing.

use proptest::prelude::*;
use scg_core::{
    apply_path, scg_route, star_distance, star_distance_between, star_route,
    star_sort_sequence, CayleyNetwork, Generator, StarEmulation, SuperCayleyGraph,
};
use scg_perm::{factorial, Perm};

fn arb_perm(k: usize) -> impl Strategy<Value = Perm> {
    (0..factorial(k)).prop_map(move |r| Perm::from_rank(k, r).expect("rank in range"))
}

/// Small (l, n) pairs for super Cayley hosts with k = nl + 1 <= 9.
fn arb_shape() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        Just((2usize, 2usize)),
        Just((2, 3)),
        Just((3, 2)),
        Just((2, 4)),
        Just((4, 2)),
    ]
}

proptest! {
    #[test]
    fn star_route_is_optimal_and_correct(
        (from, to) in (2usize..=8).prop_flat_map(|k| (arb_perm(k), arb_perm(k)))
    ) {
        let path = star_route(&from, &to);
        prop_assert_eq!(apply_path(&from, &path).unwrap(), to);
        prop_assert_eq!(path.len() as u32, star_distance_between(&from, &to));
        // Triangle inequality against any midpoint label via sort sequences.
        prop_assert!(star_distance(&from) <= star_distance(&to) + path.len() as u32);
    }

    #[test]
    fn sort_sequence_uses_only_star_generators(p in (2usize..=8).prop_flat_map(arb_perm)) {
        for g in star_sort_sequence(&p) {
            let is_transposition = matches!(g, Generator::Transposition { .. });
            prop_assert!(is_transposition);
        }
    }

    #[test]
    fn star_expansion_commutes_with_any_start(
        ((l, n), seed) in (arb_shape(), any::<u64>())
    ) {
        let k = l * n + 1;
        let u = Perm::from_rank(k, seed % factorial(k)).unwrap();
        for host in [
            SuperCayleyGraph::macro_star(l, n).unwrap(),
            SuperCayleyGraph::complete_rotation_star(l, n).unwrap(),
            SuperCayleyGraph::macro_is(l, n).unwrap(),
            SuperCayleyGraph::rotation_is(l, n).unwrap(),
        ] {
            let emu = StarEmulation::new(&host).unwrap();
            for j in 2..=k {
                let seq = emu.expand_star_link(j).unwrap();
                prop_assert_eq!(
                    apply_path(&u, &seq).unwrap(),
                    Generator::transposition(j).apply(&u).unwrap(),
                    "host {} link {}", host.name(), j
                );
            }
        }
    }

    #[test]
    fn scg_route_endpoint_and_bound(
        ((l, n), a, b) in arb_shape().prop_flat_map(|(l, n)| {
            let k = l * n + 1;
            (Just((l, n)), 0..factorial(k), 0..factorial(k))
        })
    ) {
        let k = l * n + 1;
        let from = Perm::from_rank(k, a).unwrap();
        let to = Perm::from_rank(k, b).unwrap();
        let host = SuperCayleyGraph::macro_star(l, n).unwrap();
        let path = scg_route(&host, &from, &to).unwrap();
        prop_assert_eq!(apply_path(&from, &path).unwrap(), to);
        let emu = StarEmulation::new(&host).unwrap();
        prop_assert!(
            path.len() as u32 <= emu.star_dilation() as u32 * star_distance_between(&from, &to)
        );
        // Every link on the path is a defined host generator.
        for g in &path {
            prop_assert!(host.generators().contains(g));
        }
    }

    #[test]
    fn tn_expansion_correct_for_random_pairs(
        (host_pick, seed, pair) in (0usize..4, any::<u64>(), any::<u64>())
    ) {
        let host = match host_pick {
            0 => SuperCayleyGraph::macro_star(3, 2).unwrap(),
            1 => SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
            2 => SuperCayleyGraph::macro_is(3, 2).unwrap(),
            _ => SuperCayleyGraph::insertion_selection(7).unwrap(),
        };
        let k = host.degree_k();
        let u = Perm::from_rank(k, seed % factorial(k)).unwrap();
        let i = 1 + (pair % (k as u64 - 1)) as usize;
        let j = i + 1 + ((pair / 31) % (k - i) as u64) as usize;
        let emu = StarEmulation::new(&host).unwrap();
        let seq = emu.expand_tn_link(i, j).unwrap();
        prop_assert_eq!(
            apply_path(&u, &seq).unwrap(),
            Generator::exchange(i, j).apply(&u).unwrap(),
            "host {} pair ({}, {})", host.name(), i, j
        );
    }
}
