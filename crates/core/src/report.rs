//! Topological property reports for networks (the `tab_networks`
//! experiment): size, degree, diameter, mean distance, and the Moore bound
//! the paper's "optimal diameter" claims are measured against.

use std::fmt;

use scg_graph::{looks_vertex_transitive, moore_diameter_lower_bound, DistanceStats};

use crate::error::CoreError;
use crate::network::CayleyNetwork;
use crate::topology::materialize;

/// Measured topological properties of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Network name (e.g. `MS(3,2)`).
    pub name: String,
    /// Permutation degree `k`.
    pub k: usize,
    /// Number of nodes `k!`.
    pub num_nodes: u64,
    /// Node (out-)degree.
    pub degree: usize,
    /// Measured diameter.
    pub diameter: u32,
    /// Measured mean internodal distance.
    pub mean_distance: f64,
    /// Directed Moore lower bound `DL(d, N)` for the same size and degree.
    pub moore_bound: u32,
    /// Whether the generator set is inverse-closed (undirected view exists).
    pub inverse_closed: bool,
    /// Whether sampled distance profiles are consistent with vertex
    /// transitivity (they must be, for a Cayley graph).
    pub transitive_check: bool,
}

impl NetworkReport {
    /// Materializes the network and measures its properties.
    ///
    /// Distance statistics are taken single-source from the identity node,
    /// which equals the all-pairs statistics for vertex-transitive graphs
    /// (and the `transitive_check` field cross-checks that premise).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TooLarge`] if the network exceeds `cap` nodes.
    pub fn measure(net: &(impl CayleyNetwork + ?Sized), cap: u64) -> Result<Self, CoreError> {
        let mat = materialize(net, cap)?;
        let graph = mat.graph();
        let stats = DistanceStats::single_source(graph, 0);
        Ok(NetworkReport {
            name: net.name(),
            k: net.degree_k(),
            num_nodes: net.num_nodes(),
            degree: net.node_degree(),
            diameter: stats.diameter,
            mean_distance: stats.mean,
            moore_bound: moore_diameter_lower_bound(net.node_degree() as u64, net.num_nodes()),
            inverse_closed: net.is_inverse_closed(),
            transitive_check: looks_vertex_transitive(graph, 8),
        })
    }
}

impl fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} k={:<2} N={:<8} d={:<2} diam={:<3} mean={:<6.3} DL={:<3} {} {}",
            self.name,
            self.k,
            self.num_nodes,
            self.degree,
            self.diameter,
            self.mean_distance,
            self.moore_bound,
            if self.inverse_closed {
                "undirected"
            } else {
                "directed  "
            },
            if self.transitive_check {
                "transitive"
            } else {
                "NOT-TRANSITIVE"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{StarGraph, SuperCayleyGraph};
    use crate::topology::{DEFAULT_NET_CAP, SMALL_NET_CAP};

    #[test]
    fn star_5_report() {
        let r = NetworkReport::measure(&StarGraph::new(5).unwrap(), SMALL_NET_CAP).unwrap();
        assert_eq!(r.num_nodes, 120);
        assert_eq!(r.degree, 4);
        assert_eq!(r.diameter, 6); // ⌊3·4/2⌋
        assert!(r.inverse_closed);
        assert!(r.transitive_check);
        assert!(r.moore_bound <= r.diameter);
    }

    #[test]
    fn macro_star_2_2_report() {
        let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let r = NetworkReport::measure(&ms, SMALL_NET_CAP).unwrap();
        assert_eq!(r.num_nodes, 120);
        assert_eq!(r.degree, 3);
        assert!(r.transitive_check);
        assert!(r.diameter >= r.moore_bound);
        // Display renders all fields.
        let line = r.to_string();
        assert!(line.contains("MS(2,2)"));
        assert!(line.contains("undirected"));
    }

    #[test]
    fn too_large_is_rejected() {
        let ms = SuperCayleyGraph::macro_star(4, 3).unwrap(); // 13! nodes
        assert!(matches!(
            NetworkReport::measure(&ms, DEFAULT_NET_CAP),
            Err(CoreError::TooLarge { .. })
        ));
    }

    #[test]
    fn rotator_report_is_directed_but_transitive() {
        let mr = SuperCayleyGraph::macro_rotator(2, 2).unwrap();
        let r = NetworkReport::measure(&mr, SMALL_NET_CAP).unwrap();
        assert!(!r.inverse_closed);
        assert!(r.transitive_check);
    }
}
