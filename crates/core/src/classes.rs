//! The ten super Cayley graph classes of the paper, plus the classic Cayley
//! reference networks (star, bubble-sort, transposition network) they are
//! compared against.

use scg_perm::{Perm, MAX_DEGREE};

use crate::error::CoreError;
use crate::generator::Generator;
use crate::network::{dedup_by_action, CayleyNetwork};

/// How the balls of the leftmost box are moved (the nucleus generator set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NucleusKind {
    /// Transpositions `T_2 … T_{n+1}` (star-like nucleus).
    Transposition,
    /// Insertions `I_2 … I_{n+1}` only (rotator-like nucleus; directed).
    Insertion,
    /// Insertions and selections `I_i, I_i^{-1}` for `i = 2..=n+1`.
    InsertionSelection,
}

/// How boxes are moved (the super generator set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuperKind {
    /// No super generators (single-box games, `l = 1`).
    None,
    /// Swaps `S_{n,2} … S_{n,l}` (box 1 exchanges with any box).
    Swap,
    /// The single rotation `R` and its inverse `R^{-1} = R^{l-1}`.
    Rotation,
    /// The complete rotation set `R^1 … R^{l-1}`.
    CompleteRotation,
}

/// The ten named classes of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScgClass {
    /// `MS(l,n)`: transposition nucleus, swap super generators.
    MacroStar,
    /// `RS(l,n)`: transposition nucleus, `R^{±1}` super generators.
    RotationStar,
    /// `Complete-RS(l,n)`: transposition nucleus, all rotations.
    CompleteRotationStar,
    /// `MR(l,n)`: insertion nucleus, swap super generators.
    MacroRotator,
    /// `RR(l,n)`: insertion nucleus, `R^{±1}`.
    RotationRotator,
    /// `Complete-RR(l,n)`: insertion nucleus, all rotations.
    CompleteRotationRotator,
    /// `IS(k)`: one box, insertion + selection nucleus.
    InsertionSelection,
    /// `MIS(l,n)`: insertion + selection nucleus, swaps.
    MacroIs,
    /// `RIS(l,n)`: insertion + selection nucleus, `R^{±1}`.
    RotationIs,
    /// `Complete-RIS(l,n)`: insertion + selection nucleus, all rotations.
    CompleteRotationIs,
}

impl ScgClass {
    /// All ten classes, in the order the paper lists them.
    pub const ALL: [ScgClass; 10] = [
        ScgClass::MacroStar,
        ScgClass::RotationStar,
        ScgClass::CompleteRotationStar,
        ScgClass::MacroRotator,
        ScgClass::RotationRotator,
        ScgClass::CompleteRotationRotator,
        ScgClass::InsertionSelection,
        ScgClass::MacroIs,
        ScgClass::RotationIs,
        ScgClass::CompleteRotationIs,
    ];

    /// The nucleus generator family of the class.
    #[must_use]
    pub fn nucleus(self) -> NucleusKind {
        match self {
            ScgClass::MacroStar | ScgClass::RotationStar | ScgClass::CompleteRotationStar => {
                NucleusKind::Transposition
            }
            ScgClass::MacroRotator
            | ScgClass::RotationRotator
            | ScgClass::CompleteRotationRotator => NucleusKind::Insertion,
            ScgClass::InsertionSelection
            | ScgClass::MacroIs
            | ScgClass::RotationIs
            | ScgClass::CompleteRotationIs => NucleusKind::InsertionSelection,
        }
    }

    /// The super generator family of the class.
    #[must_use]
    pub fn super_kind(self) -> SuperKind {
        match self {
            ScgClass::MacroStar | ScgClass::MacroRotator | ScgClass::MacroIs => SuperKind::Swap,
            ScgClass::RotationStar | ScgClass::RotationRotator | ScgClass::RotationIs => {
                SuperKind::Rotation
            }
            ScgClass::CompleteRotationStar
            | ScgClass::CompleteRotationRotator
            | ScgClass::CompleteRotationIs => SuperKind::CompleteRotation,
            ScgClass::InsertionSelection => SuperKind::None,
        }
    }

    /// The paper's abbreviation, e.g. `"MS"`.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            ScgClass::MacroStar => "MS",
            ScgClass::RotationStar => "RS",
            ScgClass::CompleteRotationStar => "Complete-RS",
            ScgClass::MacroRotator => "MR",
            ScgClass::RotationRotator => "RR",
            ScgClass::CompleteRotationRotator => "Complete-RR",
            ScgClass::InsertionSelection => "IS",
            ScgClass::MacroIs => "MIS",
            ScgClass::RotationIs => "RIS",
            ScgClass::CompleteRotationIs => "Complete-RIS",
        }
    }
}

/// A super Cayley graph `SCG(l, n)`: the state-transition graph of the
/// ball-arrangement game with `l` boxes of `n` balls (plus one outside
/// ball), under one of the ten generator regimes of [`ScgClass`].
///
/// # Examples
///
/// ```
/// use scg_core::{CayleyNetwork, SuperCayleyGraph};
///
/// # fn main() -> Result<(), scg_core::CoreError> {
/// let ms = SuperCayleyGraph::macro_star(3, 2)?; // k = 7, 5040 nodes
/// assert_eq!(ms.num_nodes(), 5040);
/// assert_eq!(ms.node_degree(), 2 + 2); // n transpositions + (l-1) swaps
/// assert_eq!(ms.name(), "MS(3,2)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperCayleyGraph {
    class: ScgClass,
    l: usize,
    n: usize,
    generators: Vec<Generator>,
}

impl SuperCayleyGraph {
    /// Constructs a network of the given class with `l` boxes of `n` balls.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `n = 0`, if
    /// `k = nl + 1 > 20`, if a class with super generators is given `l < 2`,
    /// or if [`ScgClass::InsertionSelection`] is given `l != 1`.
    pub fn new(class: ScgClass, l: usize, n: usize) -> Result<Self, CoreError> {
        let invalid = CoreError::InvalidParameters { l, n };
        if n == 0 || l == 0 {
            return Err(invalid);
        }
        let k = n
            .checked_mul(l)
            .and_then(|nl| nl.checked_add(1))
            .ok_or(invalid)?;
        if k > MAX_DEGREE {
            return Err(invalid);
        }
        match class.super_kind() {
            SuperKind::None => {
                if l != 1 {
                    return Err(invalid);
                }
            }
            _ => {
                if l < 2 {
                    return Err(invalid);
                }
            }
        }

        let mut gens = Vec::new();
        match class.nucleus() {
            NucleusKind::Transposition => {
                gens.extend((2..=n + 1).map(Generator::transposition));
            }
            NucleusKind::Insertion => {
                gens.extend((2..=n + 1).map(Generator::insertion));
            }
            NucleusKind::InsertionSelection => {
                gens.extend((2..=n + 1).map(Generator::insertion));
                gens.extend((2..=n + 1).map(Generator::selection));
            }
        }
        match class.super_kind() {
            SuperKind::None => {}
            SuperKind::Swap => {
                gens.extend((2..=l).map(|i| Generator::swap(n, i)));
            }
            SuperKind::Rotation => {
                gens.push(Generator::rotation(n, 1));
                gens.push(Generator::rotation(n, l - 1));
            }
            SuperKind::CompleteRotation => {
                gens.extend((1..l).map(|i| Generator::rotation(n, i)));
            }
        }
        let generators = dedup_by_action(k, gens);
        Ok(SuperCayleyGraph {
            class,
            l,
            n,
            generators,
        })
    }

    /// The macro-star network `MS(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn macro_star(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::MacroStar, l, n)
    }

    /// The rotation-star network `RS(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn rotation_star(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::RotationStar, l, n)
    }

    /// The complete-rotation-star network `Complete-RS(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn complete_rotation_star(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::CompleteRotationStar, l, n)
    }

    /// The macro-rotator network `MR(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn macro_rotator(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::MacroRotator, l, n)
    }

    /// The rotation-rotator network `RR(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn rotation_rotator(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::RotationRotator, l, n)
    }

    /// The complete-rotation-rotator network `Complete-RR(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn complete_rotation_rotator(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::CompleteRotationRotator, l, n)
    }

    /// The `k`-dimensional insertion-selection network `IS(k)` (one box,
    /// `n = k − 1`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `k < 2` or `k > 20`.
    pub fn insertion_selection(k: usize) -> Result<Self, CoreError> {
        if k < 2 {
            return Err(CoreError::InvalidParameters { l: 1, n: 0 });
        }
        Self::new(ScgClass::InsertionSelection, 1, k - 1)
    }

    /// The macro-insertion-selection network `MIS(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn macro_is(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::MacroIs, l, n)
    }

    /// The rotation-insertion-selection network `RIS(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn rotation_is(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::RotationIs, l, n)
    }

    /// The complete-rotation-insertion-selection network
    /// `Complete-RIS(l, n)`.
    ///
    /// # Errors
    ///
    /// See [`SuperCayleyGraph::new`].
    pub fn complete_rotation_is(l: usize, n: usize) -> Result<Self, CoreError> {
        Self::new(ScgClass::CompleteRotationIs, l, n)
    }

    /// The network class.
    #[must_use]
    pub fn class(&self) -> ScgClass {
        self.class
    }

    /// Number of boxes `l` (the network is `l`-level).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.l
    }

    /// Balls per box `n` (the super-symbol size).
    #[must_use]
    pub fn box_size(&self) -> usize {
        self.n
    }
}

impl CayleyNetwork for SuperCayleyGraph {
    fn degree_k(&self) -> usize {
        self.n * self.l + 1
    }

    fn generators(&self) -> &[Generator] {
        &self.generators
    }

    fn name(&self) -> String {
        if self.class == ScgClass::InsertionSelection {
            format!("IS({})", self.degree_k())
        } else {
            format!("{}({},{})", self.class.abbrev(), self.l, self.n)
        }
    }
}

/// The `k`-dimensional star graph: generators `T_2 … T_k`.
///
/// # Examples
///
/// ```
/// use scg_core::{CayleyNetwork, StarGraph};
///
/// let s4 = StarGraph::new(4).expect("valid degree");
/// assert_eq!(s4.num_nodes(), 24);
/// assert_eq!(s4.node_degree(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarGraph {
    k: usize,
    generators: Vec<Generator>,
}

impl StarGraph {
    /// The `k`-star, `2 <= k <= 20`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] otherwise.
    pub fn new(k: usize) -> Result<Self, CoreError> {
        if !(2..=MAX_DEGREE).contains(&k) {
            return Err(CoreError::InvalidParameters { l: 1, n: k });
        }
        Ok(StarGraph {
            k,
            generators: (2..=k).map(Generator::transposition).collect(),
        })
    }
}

impl CayleyNetwork for StarGraph {
    fn degree_k(&self) -> usize {
        self.k
    }

    fn generators(&self) -> &[Generator] {
        &self.generators
    }

    fn name(&self) -> String {
        format!("{}-star", self.k)
    }
}

/// The `k`-dimensional bubble-sort graph: adjacent transpositions
/// `T_{1,2} … T_{k-1,k}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BubbleSortGraph {
    k: usize,
    generators: Vec<Generator>,
}

impl BubbleSortGraph {
    /// The `k`-dimensional bubble-sort graph, `2 <= k <= 20`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] otherwise.
    pub fn new(k: usize) -> Result<Self, CoreError> {
        if !(2..=MAX_DEGREE).contains(&k) {
            return Err(CoreError::InvalidParameters { l: 1, n: k });
        }
        Ok(BubbleSortGraph {
            k,
            generators: (1..k).map(|i| Generator::exchange(i, i + 1)).collect(),
        })
    }
}

impl CayleyNetwork for BubbleSortGraph {
    fn degree_k(&self) -> usize {
        self.k
    }

    fn generators(&self) -> &[Generator] {
        &self.generators
    }

    fn name(&self) -> String {
        format!("{}-bubble-sort", self.k)
    }
}

/// The `k`-dimensional transposition network `k-TN`: all `k(k-1)/2`
/// transpositions `T_{i,j}`. Contains the `k`-star and the `k`-dimensional
/// bubble-sort graph as subgraphs (Latifi & Srimani).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranspositionNetwork {
    k: usize,
    generators: Vec<Generator>,
}

impl TranspositionNetwork {
    /// The `k`-TN, `2 <= k <= 20`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] otherwise.
    pub fn new(k: usize) -> Result<Self, CoreError> {
        if !(2..=MAX_DEGREE).contains(&k) {
            return Err(CoreError::InvalidParameters { l: 1, n: k });
        }
        let mut generators = Vec::with_capacity(k * (k - 1) / 2);
        for i in 1..=k {
            for j in i + 1..=k {
                generators.push(Generator::exchange(i, j));
            }
        }
        Ok(TranspositionNetwork { k, generators })
    }
}

impl CayleyNetwork for TranspositionNetwork {
    fn degree_k(&self) -> usize {
        self.k
    }

    fn generators(&self) -> &[Generator] {
        &self.generators
    }

    fn name(&self) -> String {
        format!("{}-TN", self.k)
    }
}

/// Applies a generator sequence to a label, returning the endpoint.
///
/// # Errors
///
/// Propagates the first generator application failure.
pub fn apply_path(u: &Perm, path: &[Generator]) -> Result<Perm, CoreError> {
    let mut cur = *u;
    for g in path {
        cur = g.apply(&cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_star_generator_set() {
        let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
        assert_eq!(ms.degree_k(), 7);
        assert_eq!(ms.node_degree(), 4); // T2, T3, S2, S3
        assert!(ms.is_inverse_closed());
        assert_eq!(ms.name(), "MS(3,2)");
        assert_eq!(ms.levels(), 3);
        assert_eq!(ms.box_size(), 2);
    }

    #[test]
    fn rotation_star_degree() {
        // RS(4,2): T2, T3, R, R^-1 → degree 4.
        let rs = SuperCayleyGraph::rotation_star(4, 2).unwrap();
        assert_eq!(rs.node_degree(), 4);
        assert!(rs.is_inverse_closed());
        // l = 2 degenerates: R = R^{-1}.
        let rs2 = SuperCayleyGraph::rotation_star(2, 2).unwrap();
        assert_eq!(rs2.node_degree(), 3);
    }

    #[test]
    fn complete_rotation_star_degree_matches_macro_star() {
        for (l, n) in [(3, 2), (4, 3), (2, 4)] {
            let crs = SuperCayleyGraph::complete_rotation_star(l, n).unwrap();
            let ms = SuperCayleyGraph::macro_star(l, n).unwrap();
            assert_eq!(crs.node_degree(), ms.node_degree(), "l={l} n={n}");
        }
    }

    #[test]
    fn insertion_selection_keeps_parallel_i2_links() {
        // I_2 and I_2^{-1} have equal action but are kept as parallel links
        // (the paper's directed-multigraph convention): degree 2(k-1).
        let is5 = SuperCayleyGraph::insertion_selection(5).unwrap();
        assert_eq!(is5.node_degree(), 8);
        assert!(is5.is_inverse_closed());
        assert_eq!(is5.name(), "IS(5)");
    }

    #[test]
    fn rotator_classes_are_directed() {
        let mr = SuperCayleyGraph::macro_rotator(2, 3).unwrap();
        assert!(!mr.is_inverse_closed());
        let rr = SuperCayleyGraph::rotation_rotator(2, 2).unwrap();
        // n = 2 nucleus: I_2 (self-inverse), I_3 (not) → directed.
        assert!(!rr.is_inverse_closed());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SuperCayleyGraph::macro_star(1, 3).is_err());
        assert!(SuperCayleyGraph::macro_star(0, 3).is_err());
        assert!(SuperCayleyGraph::macro_star(2, 0).is_err());
        assert!(SuperCayleyGraph::macro_star(7, 3).is_err()); // k = 22 > 20
        assert!(SuperCayleyGraph::new(ScgClass::InsertionSelection, 2, 2).is_err());
        assert!(SuperCayleyGraph::insertion_selection(1).is_err());
    }

    #[test]
    fn star_graph_matches_macro_star_with_one_box_nucleus() {
        // MS with l boxes and the star have the same node set; spot-check
        // neighbor counts on the 7-star.
        let star = StarGraph::new(7).unwrap();
        assert_eq!(star.node_degree(), 6);
        assert_eq!(star.num_nodes(), 5040);
        assert!(star.is_inverse_closed());
    }

    #[test]
    fn tn_degree_and_name() {
        let tn = TranspositionNetwork::new(5).unwrap();
        assert_eq!(tn.node_degree(), 10);
        assert_eq!(tn.name(), "5-TN");
        assert!(tn.is_inverse_closed());
        let bs = BubbleSortGraph::new(5).unwrap();
        assert_eq!(bs.node_degree(), 4);
    }

    #[test]
    fn apply_path_walks_links() {
        let u = Perm::identity(7);
        let path = [
            Generator::swap(2, 3),
            Generator::transposition(2),
            Generator::swap(2, 3),
        ];
        let v = apply_path(&u, &path).unwrap();
        // This is the Theorem-1 emulation of T_6 on MS(3,2): k=7, j=6 →
        // j0 = 0, j1 = 2, box 3.
        assert_eq!(v, Generator::transposition(6).apply(&u).unwrap());
    }

    #[test]
    fn connectivity_matches_group_generation() {
        // The algebraic connectivity test (Schreier–Sims) agrees with BFS
        // reachability on every materializable class…
        for class in ScgClass::ALL {
            let net = if class == ScgClass::InsertionSelection {
                SuperCayleyGraph::insertion_selection(5).unwrap()
            } else {
                SuperCayleyGraph::new(class, 2, 2).unwrap()
            };
            let mat = crate::topology::materialize(&net, crate::topology::SMALL_NET_CAP).unwrap();
            let graph = mat.graph();
            assert_eq!(
                net.generates_symmetric_group(),
                graph.is_connected_from_zero(),
                "{}",
                net.name()
            );
            assert!(net.generates_symmetric_group(), "{}", net.name());
        }
    }

    #[test]
    fn all_classes_connected_beyond_materialization() {
        // …and certifies connectivity where BFS cannot go: k up to 19-20.
        for net in [
            SuperCayleyGraph::macro_star(6, 3).unwrap(), // k = 19
            SuperCayleyGraph::complete_rotation_star(9, 2).unwrap(), // k = 19
            SuperCayleyGraph::macro_rotator(4, 4).unwrap(), // k = 17
            SuperCayleyGraph::insertion_selection(20).unwrap(), // k = 20
            SuperCayleyGraph::rotation_is(6, 3).unwrap(), // k = 19
            SuperCayleyGraph::complete_rotation_rotator(9, 2).unwrap(),
        ] {
            assert!(net.generates_symmetric_group(), "{}", net.name());
        }
    }

    #[test]
    fn all_classes_construct_at_small_sizes() {
        for class in ScgClass::ALL {
            let net = if class == ScgClass::InsertionSelection {
                SuperCayleyGraph::insertion_selection(5).unwrap()
            } else {
                SuperCayleyGraph::new(class, 2, 2).unwrap()
            };
            assert_eq!(net.num_nodes(), 120);
            assert!(net.node_degree() >= 2);
        }
    }
}
