//! Classic guest topologies (hypercubes, meshes, linear arrays, rings) as
//! explicit graphs. These are the embedding guests of §5; they are not
//! Cayley graphs over `S_k`, so they materialize directly as
//! [`DenseGraph`]s.

use scg_graph::{DenseGraph, NodeId};

/// The `d`-dimensional hypercube (`2^d` nodes, ids are bit strings).
///
/// # Panics
///
/// Panics if `d > 25` (graph would not fit in memory).
///
/// # Examples
///
/// ```
/// let q3 = scg_core::hypercube(3);
/// assert_eq!(q3.num_nodes(), 8);
/// assert_eq!(q3.out_degree(0), 3);
/// ```
#[must_use]
pub fn hypercube(d: u32) -> DenseGraph {
    assert!(d <= 25, "hypercube dimension too large");
    let n = 1usize << d;
    DenseGraph::from_neighbor_fn(n, |u| (0..d).map(|b| u ^ (1 << b)).collect())
}

/// A multi-dimensional mesh (grid, no wraparound) with the given extents.
/// Node ids are mixed-radix encoded, dimension 0 fastest.
///
/// # Panics
///
/// Panics if the node count overflows `u32` or an extent is zero.
#[must_use]
pub fn mesh(extents: &[usize]) -> DenseGraph {
    assert!(extents.iter().all(|&e| e >= 1), "extent must be >= 1");
    let n: usize = extents.iter().product();
    assert!(u32::try_from(n).is_ok(), "mesh too large");
    DenseGraph::from_neighbor_fn(n, |u| {
        let mut coords = Vec::with_capacity(extents.len());
        let mut rem = u as usize;
        for &e in extents {
            coords.push(rem % e);
            rem /= e;
        }
        let mut out = Vec::new();
        let mut weight = 1usize;
        for (d, &e) in extents.iter().enumerate() {
            if coords[d] > 0 {
                out.push((u as usize - weight) as NodeId);
            }
            if coords[d] + 1 < e {
                out.push((u as usize + weight) as NodeId);
            }
            weight *= e;
        }
        out
    })
}

/// The `n`-node linear array (path graph).
#[must_use]
pub fn linear_array(n: usize) -> DenseGraph {
    mesh(&[n])
}

/// The `n`-node ring.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize) -> DenseGraph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    DenseGraph::from_neighbor_fn(n, |u| {
        vec![(u + 1) % n as NodeId, (u + n as NodeId - 1) % n as NodeId]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_graph::DistanceStats;

    #[test]
    fn hypercube_distance_is_hamming() {
        let q4 = hypercube(4);
        let d = q4.bfs_distances(0);
        for v in 0..16u32 {
            assert_eq!(d[v as usize], v.count_ones());
        }
        assert!(q4.is_symmetric());
    }

    #[test]
    fn mesh_2x3_structure() {
        let m = mesh(&[2, 3]);
        assert_eq!(m.num_nodes(), 6);
        // Corner (0,0) has 2 neighbors; center column nodes have 3.
        assert_eq!(m.out_degree(0), 2);
        assert_eq!(m.out_degree(2), 3);
        assert!(m.is_symmetric());
        let s = DistanceStats::all_pairs(&m);
        assert_eq!(s.diameter, 3); // (0,0) → (1,2)
    }

    #[test]
    fn linear_array_and_ring() {
        assert_eq!(linear_array(5).num_edges(), 8);
        let r = ring(5);
        assert_eq!(r.num_edges(), 10);
        assert!(r.is_symmetric());
    }

    #[test]
    fn degenerate_extents() {
        let m = mesh(&[1, 4]);
        assert_eq!(m.num_nodes(), 4);
        assert_eq!(m.num_edges(), 6); // a path of 4
    }
}
