use std::error::Error;
use std::fmt;

use scg_perm::PermError;

/// Error produced by network constructors and routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreError {
    /// Parameters do not define a valid network of the requested class
    /// (e.g. `l < 2` for a class that needs super generators, or
    /// `nl + 1 > MAX_DEGREE`).
    InvalidParameters {
        /// Number of boxes.
        l: usize,
        /// Balls per box.
        n: usize,
    },
    /// A generator was applied to a permutation it is not valid for.
    Perm(PermError),
    /// Routing was requested between permutations of different degree, or of
    /// a degree not matching the network.
    DegreeMismatch {
        /// Degree the network expects.
        expected: usize,
        /// Degree encountered.
        found: usize,
    },
    /// The network is too large to materialize as an explicit graph.
    TooLarge {
        /// Number of nodes of the network.
        num_nodes: u64,
        /// The caller-supplied cap.
        cap: u64,
    },
    /// No routing strategy applies (and BFS was not requested).
    NoRoute,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoreError::InvalidParameters { l, n } => {
                write!(
                    f,
                    "parameters l={l}, n={n} do not define this network class"
                )
            }
            CoreError::Perm(e) => write!(f, "permutation error: {e}"),
            CoreError::DegreeMismatch { expected, found } => {
                write!(
                    f,
                    "expected permutations of degree {expected}, found {found}"
                )
            }
            CoreError::TooLarge { num_nodes, cap } => {
                write!(
                    f,
                    "network with {num_nodes} nodes exceeds materialization cap {cap}"
                )
            }
            CoreError::NoRoute => write!(f, "no routing strategy available"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Perm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PermError> for CoreError {
    fn from(e: PermError) -> Self {
        CoreError::Perm(e)
    }
}
