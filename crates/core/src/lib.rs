//! Super Cayley graphs: the network classes, generator algebra, and routing
//! of *Routing and Embeddings in Super Cayley Graphs* (Yeh, Varvarigos &
//! Lee, PaCT 1999).
//!
//! A **super Cayley graph** is a Cayley graph over the symmetric group `S_k`
//! (`k = nl + 1`) whose generators come in two kinds, mirroring the moves of
//! the *ball-arrangement game* with `l` boxes of `n` balls plus one outside
//! ball:
//!
//! * **nucleus generators** permute the leftmost `n + 1` symbols (the
//!   outside ball and the leftmost box);
//! * **super generators** permute whole super-symbols (move boxes).
//!
//! This crate implements:
//!
//! * the generator algebra ([`Generator`]): transpositions `T_i`, exchanges
//!   `T_{i,j}`, insertions `I_i`, selections `I_i^{-1}`, swaps `S_{n,i}`,
//!   rotations `R^i_n`;
//! * the ten network classes of §2.2 ([`SuperCayleyGraph`], [`ScgClass`])
//!   and the classic Cayley references ([`StarGraph`], [`BubbleSortGraph`],
//!   [`TranspositionNetwork`]);
//! * non-Cayley guest topologies ([`hypercube`], [`mesh`], [`linear_array`],
//!   [`ring`]);
//! * optimal star-graph routing ([`star_route`], [`star_distance`]) and the
//!   Theorem 1/2/3/6/7 generator expansions ([`StarEmulation`]) that carry
//!   star and transposition-network algorithms onto super Cayley graphs;
//! * exact BFS routing ([`bfs_route`]) and measured property reports
//!   ([`NetworkReport`]).
//!
//! # Examples
//!
//! Route between two nodes of a macro-star network by emulating the optimal
//! star route (Theorem 1 guarantees a slowdown of at most 3):
//!
//! ```
//! use scg_core::{apply_path, scg_route, SuperCayleyGraph};
//! use scg_perm::Perm;
//!
//! # fn main() -> Result<(), scg_core::CoreError> {
//! let ms = SuperCayleyGraph::macro_star(3, 2)?;
//! let from = Perm::from_symbols(&[7, 6, 5, 4, 3, 2, 1])?;
//! let to = Perm::identity(7);
//! let path = scg_route(&ms, &from, &to)?;
//! assert_eq!(apply_path(&from, &path)?, to);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod classes;
mod classic;
mod error;
mod generator;
mod network;
#[cfg(feature = "obs")]
mod obs_hooks;
mod report;
mod routing;
mod topology;

pub use classes::{
    apply_path, BubbleSortGraph, NucleusKind, ScgClass, StarGraph, SuperCayleyGraph, SuperKind,
    TranspositionNetwork,
};
pub use classic::{hypercube, linear_array, mesh, ring};
pub use error::CoreError;
pub use generator::Generator;
pub use network::CayleyNetwork;
pub use report::NetworkReport;
pub use routing::{
    bfs_route, bubble_distance, bubble_sort_sequence, rotator_sort_sequence, route_batch,
    scg_route, scg_route_faulty, scg_route_faulty_ids, scg_route_faulty_with, star_diameter,
    star_dimension_parts, star_distance, star_distance_between, star_route, star_sort_sequence,
    tn_distance, tn_sort_sequence, BatchState, RouteBuf, RoutePlan, RoutedPath, StarEmulation,
    MIN_PAIRS_PER_THREAD,
};
pub use topology::{
    materialize, route_plan, Materialized, ShardedTopology, TopologyCache, DEFAULT_NET_CAP,
    SMALL_NET_CAP,
};
