//! The nucleus and super generators of the ball-arrangement game.
//!
//! A super Cayley graph is a Cayley graph over `S_k` whose generator set
//! mixes *nucleus generators* (rearrange the leftmost `n + 1` symbols — the
//! outside ball plus the leftmost box) and *super generators* (permute whole
//! super-symbols — move boxes). The concrete generators used by the paper's
//! ten network classes are:
//!
//! | generator | kind | action on `U = u_1 … u_k` |
//! |---|---|---|
//! | `T_i` ([`Generator::Transposition`]) | nucleus | swap `u_1 ↔ u_i`, `2 ≤ i ≤ n+1` |
//! | `T_{i,j}` ([`Generator::Exchange`]) | (reference networks) | swap `u_i ↔ u_j` |
//! | `I_i` ([`Generator::Insertion`]) | nucleus | `u_1…u_i ↦ u_2…u_i u_1` |
//! | `I_i^{-1}` ([`Generator::Selection`]) | nucleus | `u_1…u_i ↦ u_i u_1…u_{i-1}` |
//! | `S_{n,i}` ([`Generator::Swap`]) | super | exchange super-symbols 1 and `i` |
//! | `R^i_n` ([`Generator::Rotation`]) | super | rotate `u_2…u_k` right by `n·i` |

use std::fmt;

use scg_perm::cast::sym_u8;
use scg_perm::{Perm, PermError};

/// One generator of a (super) Cayley graph, acting on node labels.
///
/// # Examples
///
/// ```
/// use scg_core::Generator;
/// use scg_perm::Perm;
///
/// # fn main() -> Result<(), scg_core::CoreError> {
/// let u = Perm::identity(5);
/// let v = Generator::transposition(3).apply(&u)?;
/// assert_eq!(v.symbols(), &[3, 2, 1, 4, 5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Generator {
    /// Star-graph transposition `T_i`: swaps positions 1 and `i` (`i ≥ 2`).
    Transposition {
        /// Target position (`2..=k`).
        i: u8,
    },
    /// General transposition `T_{i,j}` (`1 ≤ i < j`): swaps positions `i`
    /// and `j`. Used by transposition networks and bubble-sort graphs, and
    /// as the *guest* edge labels in Theorem 6.
    Exchange {
        /// First position.
        i: u8,
        /// Second position (`> i`).
        j: u8,
    },
    /// Insertion `I_i`: cyclic left shift of the leftmost `i` symbols.
    Insertion {
        /// Prefix length (`2..=k`).
        i: u8,
    },
    /// Selection `I_i^{-1}`: cyclic right shift of the leftmost `i` symbols.
    Selection {
        /// Prefix length (`2..=k`).
        i: u8,
    },
    /// Swap `S_{n,i}`: exchanges super-symbol 1 with super-symbol `i`
    /// (`2 ≤ i ≤ l`), an involution.
    Swap {
        /// Super-symbol (box) size.
        n: u8,
        /// Box index to exchange with box 1.
        i: u8,
    },
    /// Rotation `R^i_n`: cyclic right shift of `u_2 … u_k` by `n·i`
    /// positions — boxes move `i` places toward the tail, wrapping.
    Rotation {
        /// Super-symbol (box) size.
        n: u8,
        /// Number of box positions to rotate by (`1..l`).
        i: u8,
    },
}

impl Generator {
    /// `T_i` (swap positions 1 and `i`).
    #[must_use]
    pub fn transposition(i: usize) -> Self {
        Generator::Transposition { i: sym_u8(i) }
    }

    /// `T_{i,j}`; the arguments may come in either order.
    ///
    /// # Panics
    ///
    /// Panics if `i == j`.
    #[must_use]
    pub fn exchange(i: usize, j: usize) -> Self {
        assert_ne!(i, j, "T_{{i,i}} is not a generator");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        Generator::Exchange {
            i: sym_u8(i),
            j: sym_u8(j),
        }
    }

    /// `I_i`.
    #[must_use]
    pub fn insertion(i: usize) -> Self {
        Generator::Insertion { i: sym_u8(i) }
    }

    /// `I_i^{-1}`.
    #[must_use]
    pub fn selection(i: usize) -> Self {
        Generator::Selection { i: sym_u8(i) }
    }

    /// `S_{n,i}`.
    #[must_use]
    pub fn swap(n: usize, i: usize) -> Self {
        Generator::Swap {
            n: sym_u8(n),
            i: sym_u8(i),
        }
    }

    /// `R^i_n`, with `i` reduced modulo `l` (callers pass `1..l`).
    #[must_use]
    pub fn rotation(n: usize, i: usize) -> Self {
        Generator::Rotation {
            n: sym_u8(n),
            i: sym_u8(i),
        }
    }

    /// Applies the generator to a node label, yielding the neighbor reached
    /// through this link.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`PermError`] if the generator's indices do not
    /// fit the label's degree (e.g. `T_9` on a degree-5 permutation).
    pub fn apply(&self, u: &Perm) -> Result<Perm, PermError> {
        match *self {
            Generator::Transposition { i } => u.swapped(1, i as usize),
            Generator::Exchange { i, j } => u.swapped(i as usize, j as usize),
            Generator::Insertion { i } => u.prefix_rotated_left(i as usize),
            Generator::Selection { i } => u.prefix_rotated_right(i as usize),
            Generator::Swap { n, i } => u.blocks_swapped(n as usize, i as usize),
            Generator::Rotation { n, i } => {
                let k = u.degree();
                if n == 0 || !(k - 1).is_multiple_of(n as usize) {
                    return Err(PermError::PositionOutOfRange {
                        position: n as usize,
                        degree: k,
                    });
                }
                Ok(u.suffix_rotated_right(n as usize * i as usize))
            }
        }
    }

    /// The inverse generator, given the permutation degree `k` (needed to
    /// reduce rotation exponents modulo `l`).
    ///
    /// Transpositions, exchanges and swaps are involutions; insertions and
    /// selections invert each other; `R^i` inverts to `R^{l-i}`.
    #[must_use]
    pub fn inverse(&self, k: usize) -> Generator {
        match *self {
            Generator::Transposition { .. }
            | Generator::Exchange { .. }
            | Generator::Swap { .. } => *self,
            Generator::Insertion { i } => Generator::Selection { i },
            Generator::Selection { i } => Generator::Insertion { i },
            Generator::Rotation { n, i } => {
                let l = (k - 1) / n as usize;
                let inv = (l - (i as usize % l)) % l;
                Generator::Rotation { n, i: sym_u8(inv) }
            }
        }
    }

    /// Whether this generator is a nucleus generator (permutes only the
    /// leftmost `n + 1` symbols) as opposed to a super generator.
    ///
    /// [`Generator::Exchange`] is classified as a nucleus move of the
    /// degenerate one-box game (it permutes individual balls).
    #[must_use]
    pub fn is_nucleus(&self) -> bool {
        !matches!(self, Generator::Swap { .. } | Generator::Rotation { .. })
    }

    /// The generator as an element of `S_k`: the permutation `g` with
    /// `apply(u) = u ∘ g`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Generator::apply`].
    pub fn as_perm(&self, k: usize) -> Result<Perm, PermError> {
        self.apply(&Perm::identity(k))
    }
}

impl Generator {
    /// Parses the compact [`Display`](fmt::Display) notation back into a
    /// generator. Swap and rotation labels omit the box size, so it must be
    /// supplied: `T3`, `T2,5`, `I4`, `I-4`, `S2` (needs `n`), `R^2` (needs
    /// `n`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed labels.
    pub fn parse_with_box_size(label: &str, n: usize) -> Result<Self, String> {
        let label = label.trim();
        let err = || format!("cannot parse generator `{label}`");
        let num = |s: &str| s.parse::<usize>().map_err(|_| err());
        if let Some(rest) = label.strip_prefix("I-") {
            return Ok(Generator::selection(num(rest)?));
        }
        if let Some(rest) = label.strip_prefix('I') {
            return Ok(Generator::insertion(num(rest)?));
        }
        if let Some(rest) = label.strip_prefix("R^") {
            return Ok(Generator::rotation(n, num(rest)?));
        }
        if let Some(rest) = label.strip_prefix('S') {
            return Ok(Generator::swap(n, num(rest)?));
        }
        if let Some(rest) = label.strip_prefix('T') {
            return match rest.split_once(',') {
                Some((a, b)) => {
                    let (a, b) = (num(a)?, num(b)?);
                    if a == b {
                        return Err(err());
                    }
                    Ok(Generator::exchange(a, b))
                }
                None => Ok(Generator::transposition(num(rest)?)),
            };
        }
        Err(err())
    }

    /// Parses a whitespace-separated move sequence, e.g. `"S2 T3 S2"`.
    ///
    /// # Errors
    ///
    /// Reports the first malformed label.
    pub fn parse_sequence(labels: &str, n: usize) -> Result<Vec<Self>, String> {
        labels
            .split_whitespace()
            .map(|tok| Self::parse_with_box_size(tok, n))
            .collect()
    }
}

impl fmt::Display for Generator {
    /// Compact labels matching the paper's notation: `T3`, `T2,5`, `I4`,
    /// `I-4` (selection), `S2`, `R2` / `R-2` style exponents are printed as
    /// `R^2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Generator::Transposition { i } => write!(f, "T{i}"),
            Generator::Exchange { i, j } => write!(f, "T{i},{j}"),
            Generator::Insertion { i } => write!(f, "I{i}"),
            Generator::Selection { i } => write!(f, "I-{i}"),
            Generator::Swap { i, .. } => write!(f, "S{i}"),
            Generator::Rotation { i, .. } => write!(f, "R^{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_invert(/* every kind */) {
        let k = 7;
        let u = Perm::from_rank(k, 1234).unwrap();
        let gens = [
            Generator::transposition(4),
            Generator::exchange(3, 6),
            Generator::insertion(5),
            Generator::selection(5),
            Generator::swap(3, 2),
            Generator::rotation(2, 1),
            Generator::rotation(2, 2),
        ];
        for g in gens {
            let v = g.apply(&u).unwrap();
            let back = g.inverse(k).apply(&v).unwrap();
            assert_eq!(back, u, "inverse of {g} failed");
        }
    }

    #[test]
    fn exchange_normalizes_order() {
        assert_eq!(Generator::exchange(5, 2), Generator::exchange(2, 5));
    }

    #[test]
    #[should_panic(expected = "not a generator")]
    fn exchange_rejects_equal_positions() {
        let _ = Generator::exchange(3, 3);
    }

    #[test]
    fn transposition_is_insertion_then_selection() {
        // T_i = I^{-1}_{i-1} ∘ I_i  (the identity behind Theorems 2, 3, 5).
        let k = 6;
        for i in 3..=k {
            let u = Perm::from_rank(k, 421).unwrap();
            let via_t = Generator::transposition(i).apply(&u).unwrap();
            let via_is = Generator::selection(i - 1)
                .apply(&Generator::insertion(i).apply(&u).unwrap())
                .unwrap();
            assert_eq!(via_t, via_is);
        }
        // Degenerate case: T_2 = I_2.
        let u = Perm::from_rank(k, 99).unwrap();
        assert_eq!(
            Generator::transposition(2).apply(&u).unwrap(),
            Generator::insertion(2).apply(&u).unwrap()
        );
    }

    #[test]
    fn rotation_composes_additively() {
        // R^a ∘ R^b = R^{a+b mod l}.
        let (n, l) = (2usize, 3usize);
        let k = n * l + 1;
        let u = Perm::from_rank(k, 1000).unwrap();
        let a = Generator::rotation(n, 1);
        let b = Generator::rotation(n, 2);
        let both = b.apply(&a.apply(&u).unwrap()).unwrap();
        assert_eq!(both, u); // 1 + 2 ≡ 0 (mod 3)
    }

    #[test]
    fn apply_rejects_mismatched_degree() {
        let u = Perm::identity(4);
        assert!(Generator::transposition(9).apply(&u).is_err());
        assert!(Generator::swap(3, 2).apply(&u).is_err()); // 4 != 3l+1
        assert!(Generator::rotation(2, 1).apply(&u).is_err()); // 3 % 2 != 0
    }

    #[test]
    fn as_perm_right_action_matches_apply() {
        let k = 7;
        let u = Perm::from_rank(k, 2025).unwrap();
        for g in [
            Generator::transposition(3),
            Generator::insertion(6),
            Generator::swap(2, 3),
            Generator::rotation(3, 1),
        ] {
            let gp = g.as_perm(k).unwrap();
            assert_eq!(u.compose(&gp), g.apply(&u).unwrap(), "right action of {g}");
        }
    }

    #[test]
    fn parse_roundtrips_display() {
        let n = 3;
        for g in [
            Generator::transposition(4),
            Generator::exchange(2, 6),
            Generator::insertion(5),
            Generator::selection(5),
            Generator::swap(n, 2),
            Generator::rotation(n, 2),
        ] {
            let label = g.to_string();
            assert_eq!(
                Generator::parse_with_box_size(&label, n).unwrap(),
                g,
                "label {label}"
            );
        }
        assert!(Generator::parse_with_box_size("X7", n).is_err());
        assert!(Generator::parse_with_box_size("T", n).is_err());
        assert!(Generator::parse_with_box_size("T3,3", n).is_err());
        let seq = Generator::parse_sequence("S2 T3  S2", n).unwrap();
        assert_eq!(seq.len(), 3);
        assert!(Generator::parse_sequence("S2 bogus", n).is_err());
    }

    #[test]
    fn generator_orders_match_algebra() {
        // T and S are involutions; I_j has order j; R^1 has order l.
        let k = 7;
        assert_eq!(Generator::transposition(5).as_perm(k).unwrap().order(), 2);
        assert_eq!(Generator::exchange(2, 6).as_perm(k).unwrap().order(), 2);
        assert_eq!(Generator::swap(3, 2).as_perm(k).unwrap().order(), 2);
        for j in 2..=k {
            assert_eq!(
                Generator::insertion(j).as_perm(k).unwrap().order(),
                j as u64,
                "I_{j}"
            );
        }
        // k = 7, n = 2 → l = 3 boxes; R has order 3.
        assert_eq!(Generator::rotation(2, 1).as_perm(k).unwrap().order(), 3);
        // n = 3 → l = 2 boxes; R has order 2.
        assert_eq!(Generator::rotation(3, 1).as_perm(k).unwrap().order(), 2);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Generator::transposition(3).to_string(), "T3");
        assert_eq!(Generator::exchange(2, 5).to_string(), "T2,5");
        assert_eq!(Generator::insertion(4).to_string(), "I4");
        assert_eq!(Generator::selection(4).to_string(), "I-4");
        assert_eq!(Generator::swap(3, 2).to_string(), "S2");
        assert_eq!(Generator::rotation(3, 2).to_string(), "R^2");
    }
}
