//! The topology engine: cached, table-driven materialization.
//!
//! Every layer of the workspace — routing reports, communication schedules,
//! embeddings, emulation — needs the same two artifacts from a
//! [`CayleyNetwork`]: the rank-indexed [`DenseGraph`] and, for per-generator
//! algorithms, the map `rank(u) → rank(g·u)` for each generator `g`. Before
//! this engine existed, each call site rebuilt both from scratch with an
//! unrank/apply/rank round trip per node per generator.
//!
//! The engine makes materialization a single shared path:
//!
//! * [`Materialized`] — a clone-cheap handle bundling the graph
//!   (`Arc<DenseGraph>`), the per-generator rank-transition tables, and the
//!   node-id codec (rank ↔ label);
//! * [`TopologyCache`] — a keyed cache so repeated materializations of the
//!   same network return the *same* `Arc`s; [`materialize`] goes through the
//!   process-wide cache;
//! * construction is parallel end to end: the transition tables are built by
//!   chunked lexicographic sweeps (`scg_perm::rank_transition_tables`) and
//!   the CSR graph by [`DenseGraph::from_regular_fn_parallel`].
//!
//! # Examples
//!
//! ```
//! use scg_core::{materialize, SuperCayleyGraph, SMALL_NET_CAP};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), scg_core::CoreError> {
//! let ms = SuperCayleyGraph::macro_star(3, 2)?;
//! let a = materialize(&ms, SMALL_NET_CAP * 10)?;
//! let b = materialize(&ms, SMALL_NET_CAP * 10)?;
//! assert!(Arc::ptr_eq(a.graph(), b.graph())); // cache hit, shared storage
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use scg_graph::{DenseGraph, NodeId};
use scg_perm::{factorial, rank_transition_tables, Perm, PermAction, MAX_TABLE_DEGREE};

use crate::classes::{ScgClass, SuperCayleyGraph};
use crate::error::CoreError;
use crate::network::CayleyNetwork;
use crate::routing::RoutePlan;

/// Materialization cap for quick interactive checks and unit tests: admits
/// `k ≤ 6` (`6! = 720` nodes).
pub const SMALL_NET_CAP: u64 = 1_000;

/// Default materialization cap for experiments and tabulations: admits
/// `k ≤ 9` (`9! = 362 880` nodes).
pub const DEFAULT_NET_CAP: u64 = 1_000_000;

/// A materialized Cayley network: the rank-indexed graph plus the
/// per-generator rank-transition tables, all behind `Arc`s so the handle is
/// clone-cheap and cache-shareable.
#[derive(Debug, Clone)]
pub struct Materialized {
    name: String,
    k: usize,
    graph: Arc<DenseGraph>,
    /// Generator-major: `tables[g][rank(u)] = rank(g·u)`.
    tables: Arc<Vec<Vec<NodeId>>>,
}

impl Materialized {
    /// Materializes `net` without consulting any cache.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TooLarge`] if `k! > cap`, or if `k` exceeds
    /// [`MAX_TABLE_DEGREE`] (rank-transition tables store `u32` ranks).
    pub fn build<N: CayleyNetwork + ?Sized>(net: &N, cap: u64) -> Result<Self, CoreError> {
        let n = net.num_nodes();
        if n > cap {
            return Err(CoreError::TooLarge { num_nodes: n, cap });
        }
        let k = net.degree_k();
        if k > MAX_TABLE_DEGREE {
            return Err(CoreError::TooLarge {
                num_nodes: n,
                cap: factorial(MAX_TABLE_DEGREE),
            });
        }
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::materialize_timer(&net.name(), n);
        type BoxedAction = Box<dyn Fn(&Perm) -> Perm + Sync>;
        let gens = net.generators().to_vec();
        let actions: Vec<BoxedAction> = gens
            .iter()
            .map(|&g| {
                // scg-allow(SCG001): generator lists are validated against degree k at construction
                Box::new(move |p: &Perm| g.apply(p).expect("validated generator")) as BoxedAction
            })
            .collect();
        let refs: Vec<PermAction<'_>> = actions.iter().map(|b| b.as_ref() as _).collect();
        let tables = rank_transition_tables(k, &refs);
        let graph = DenseGraph::from_regular_fn_parallel(n as usize, tables.len(), |u, slot| {
            for (g, table) in tables.iter().enumerate() {
                slot[g] = table[u as usize];
            }
        });
        Ok(Materialized {
            name: net.name(),
            k,
            graph: Arc::new(graph),
            tables: Arc::new(tables),
        })
    }

    /// The network name this handle was materialized from, e.g. `MS(3,2)`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The permutation degree `k`.
    #[must_use]
    pub fn degree_k(&self) -> usize {
        self.k
    }

    /// Number of nodes, `k!`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of generators (the regular node degree).
    #[must_use]
    pub fn node_degree(&self) -> usize {
        self.tables.len()
    }

    /// The shared rank-indexed graph. Clone the `Arc` to keep the graph
    /// alive without copying it.
    #[must_use]
    pub fn graph(&self) -> &Arc<DenseGraph> {
        &self.graph
    }

    /// A survivor view of the network under `faults` — the one-liner the
    /// fault-lifecycle drivers use between chaos events.
    #[must_use]
    pub fn survivor_view<'a>(
        &'a self,
        faults: &'a scg_graph::FaultSet,
    ) -> scg_graph::SurvivorView<'a> {
        scg_graph::SurvivorView::new(&self.graph, faults)
    }

    /// All rank-transition tables, generator-major:
    /// `tables()[g][u] = rank(g · unrank(u))`. Returned as the shared
    /// `Arc` so callers can keep the tables alive without copying them.
    #[must_use]
    pub fn tables(&self) -> &Arc<Vec<Vec<NodeId>>> {
        &self.tables
    }

    /// The transition table of generator index `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn table(&self, g: usize) -> &[NodeId] {
        &self.tables[g]
    }

    /// The neighbor reached from node `u` through generator index `g` — a
    /// single array load, no permutation arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `g` or `u` is out of range.
    #[must_use]
    pub fn neighbor_id(&self, u: NodeId, g: usize) -> NodeId {
        self.tables[g][u as usize]
    }

    /// The node id (lexicographic rank) of a label.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DegreeMismatch`] if the label's degree differs
    /// from the network's.
    pub fn node_id(&self, u: &Perm) -> Result<NodeId, CoreError> {
        if u.degree() != self.k {
            return Err(CoreError::DegreeMismatch {
                expected: self.k,
                found: u.degree(),
            });
        }
        Ok(u.rank() as NodeId)
    }

    /// The label of a node id.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError::Perm`] error if `id >= k!`.
    pub fn node_label(&self, id: NodeId) -> Result<Perm, CoreError> {
        Ok(Perm::from_rank(self.k, u64::from(id))?)
    }
}

/// A keyed cache of [`Materialized`] networks.
///
/// Keys are `(name, k)` — network names encode the class and its parameters
/// (e.g. `MS(3,2)`), so equal keys mean equal networks. Hits clone the
/// stored handle, so every consumer of the same network shares one graph and
/// one table set (`Arc` pointer equality, verified by the cross-crate
/// topology test).
///
/// Most callers want the process-wide instance via [`materialize`] or
/// [`TopologyCache::global`]; separate instances are useful in tests.
#[derive(Debug, Default)]
pub struct TopologyCache {
    entries: Mutex<HashMap<(String, usize), Materialized>>,
    /// Compiled route planners. Kept separate from `entries` because
    /// plans cost `O(k²)` to build (no node-count cap applies) and are
    /// wanted for networks far too large to materialize; keyed by the
    /// Copy `(class, l, n)` triple so the hot `scg_route` lookup never
    /// formats a name `String`.
    plans: Mutex<HashMap<(ScgClass, usize, usize), Arc<RoutePlan>>>,
}

impl TopologyCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        TopologyCache::default()
    }

    /// The process-wide cache used by [`materialize`].
    #[must_use]
    pub fn global() -> &'static TopologyCache {
        static GLOBAL: OnceLock<TopologyCache> = OnceLock::new();
        GLOBAL.get_or_init(TopologyCache::new)
    }

    /// Materializes `net`, returning the cached handle if this network was
    /// materialized before. The cap is checked *before* the cache lookup, so
    /// error semantics do not depend on cache state.
    ///
    /// # Errors
    ///
    /// As [`Materialized::build`].
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking builder.
    pub fn materialize<N: CayleyNetwork + ?Sized>(
        &self,
        net: &N,
        cap: u64,
    ) -> Result<Materialized, CoreError> {
        let n = net.num_nodes();
        if n > cap {
            return Err(CoreError::TooLarge { num_nodes: n, cap });
        }
        let key = (net.name(), net.degree_k());
        // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        if let Some(hit) = self.entries.lock().expect("cache lock").get(&key) {
            #[cfg(feature = "obs")]
            crate::obs_hooks::cache_hit(&key.0);
            return Ok(hit.clone());
        }
        #[cfg(feature = "obs")]
        crate::obs_hooks::cache_miss(&key.0);
        // Build outside the lock: concurrent first materializations of
        // *different* networks should not serialize. A racing duplicate
        // build of the same network is discarded in favor of the first
        // insert, preserving Arc identity for all callers.
        let built = Materialized::build(net, cap)?;
        let mut entries = self.entries.lock().expect("cache lock"); // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        Ok(entries.entry(key).or_insert(built).clone())
    }

    /// The compiled [`RoutePlan`] for `net`, building and caching it on
    /// first use. Hits clone the stored `Arc`, so every consumer of the
    /// same network shares one arena.
    ///
    /// Unlike [`materialize`](TopologyCache::materialize) there is no
    /// node-count cap: a plan costs `O(k²)` link expansions regardless of
    /// the `k!` node count.
    ///
    /// # Errors
    ///
    /// As [`RoutePlan::build`].
    ///
    /// # Panics
    ///
    /// Panics if the plan-cache mutex was poisoned by a panicking builder.
    pub fn route_plan(&self, net: &SuperCayleyGraph) -> Result<Arc<RoutePlan>, CoreError> {
        let key = (net.class(), net.levels(), net.box_size());
        // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        if let Some(hit) = self.plans.lock().expect("plan cache lock").get(&key) {
            #[cfg(feature = "obs")]
            crate::obs_hooks::plan_cache_hit(&net.name());
            return Ok(Arc::clone(hit));
        }
        #[cfg(feature = "obs")]
        crate::obs_hooks::plan_cache_miss(&net.name());
        // Build outside the lock, first insert wins (as in materialize).
        let built = Arc::new(RoutePlan::build(net)?);
        let mut plans = self.plans.lock().expect("plan cache lock"); // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        Ok(Arc::clone(plans.entry(key).or_insert(built)))
    }

    /// Number of cached networks.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len() // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
    }

    /// Number of cached route plans.
    ///
    /// # Panics
    ///
    /// Panics if the plan-cache mutex was poisoned.
    #[must_use]
    pub fn num_plans(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len() // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached handles (outstanding `Arc`s stay alive).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn clear(&self) {
        let mut entries = self.entries.lock().expect("cache lock"); // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        #[cfg(feature = "obs")]
        crate::obs_hooks::cache_evicted(entries.len() as u64);
        entries.clear();
        drop(entries);
        self.plans.lock().expect("plan cache lock").clear(); // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
    }
}

/// A per-core family of independent [`TopologyCache`] shards.
///
/// Serving route requests from many connections on many cores through the
/// single process-wide cache would put one mutex on every hot-path lookup.
/// `ShardedTopology` gives each core (shard) its *own* cache instance;
/// callers pin each connection to one shard and resolve plans and
/// materializations through it, so steady-state lookups never touch a lock
/// another core is waiting on. The price is one duplicate plan/graph build
/// per shard that uses a given network — plans are `O(k²)` and the handles
/// are `Arc`-shared within a shard, so duplication across shards is cheap
/// and bounded by the shard count.
///
/// # Examples
///
/// ```
/// use scg_core::{ShardedTopology, SuperCayleyGraph};
///
/// # fn main() -> Result<(), scg_core::CoreError> {
/// let topo = ShardedTopology::new(4);
/// let ms = SuperCayleyGraph::macro_star(3, 2)?;
/// // Connection 11 is pinned to shard 11 % 4 = 3; repeated lookups hit
/// // the same shard-local cache.
/// let a = topo.shard(11).route_plan(&ms)?;
/// let b = topo.shard(11).route_plan(&ms)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedTopology {
    shards: Vec<TopologyCache>,
}

impl ShardedTopology {
    /// A family of `num_shards` empty caches (at least one).
    #[must_use]
    pub fn new(num_shards: usize) -> Self {
        ShardedTopology {
            shards: (0..num_shards.max(1))
                .map(|_| TopologyCache::new())
                .collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The cache pinned to `key` — any stable per-connection or per-core
    /// index; reduction modulo the shard count is done here so callers can
    /// pass a raw connection counter.
    #[must_use]
    pub fn shard(&self, key: usize) -> &TopologyCache {
        &self.shards[key % self.shards.len()]
    }

    /// Drops every shard's cached handles (outstanding `Arc`s stay alive).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.clear();
        }
    }
}

/// Materializes `net` through the process-wide [`TopologyCache`].
///
/// # Errors
///
/// As [`Materialized::build`].
pub fn materialize<N: CayleyNetwork + ?Sized>(
    net: &N,
    cap: u64,
) -> Result<Materialized, CoreError> {
    TopologyCache::global().materialize(net, cap)
}

/// The compiled [`RoutePlan`] for `net` through the process-wide
/// [`TopologyCache`] — one plan per network per process, shared by
/// routing, communication, embedding, and emulation.
///
/// # Errors
///
/// As [`RoutePlan::build`].
pub fn route_plan(net: &SuperCayleyGraph) -> Result<Arc<RoutePlan>, CoreError> {
    TopologyCache::global().route_plan(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{StarGraph, SuperCayleyGraph};

    #[test]
    fn engine_matches_direct_materialization() {
        let star = StarGraph::new(5).unwrap();
        let direct = star.to_graph(SMALL_NET_CAP).unwrap();
        let engine = Materialized::build(&star, SMALL_NET_CAP).unwrap();
        assert_eq!(*engine.graph().as_ref(), direct);
        assert_eq!(engine.num_nodes(), 120);
        assert_eq!(engine.node_degree(), 4);
    }

    #[test]
    fn tables_agree_with_neighbor() {
        let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
        let m = Materialized::build(&ms, DEFAULT_NET_CAP).unwrap();
        for r in [0u32, 1, 17, 5039] {
            let u = m.node_label(r).unwrap();
            for g in 0..ms.node_degree() {
                let v = ms.neighbor(&u, g);
                assert_eq!(m.neighbor_id(r, g), m.node_id(&v).unwrap());
            }
        }
    }

    #[test]
    fn cache_returns_shared_arcs() {
        let cache = TopologyCache::new();
        let star = StarGraph::new(4).unwrap();
        let a = cache.materialize(&star, SMALL_NET_CAP).unwrap();
        let b = cache.materialize(&star, SMALL_NET_CAP).unwrap();
        assert!(Arc::ptr_eq(a.graph(), b.graph()));
        assert!(Arc::ptr_eq(&a.tables, &b.tables));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        // Handles from before the clear stay valid.
        assert_eq!(a.num_nodes(), 24);
    }

    #[test]
    fn cap_is_checked_before_cache() {
        let cache = TopologyCache::new();
        let star = StarGraph::new(5).unwrap();
        cache.materialize(&star, SMALL_NET_CAP).unwrap();
        // A hit for the same network must still respect a tighter cap.
        let err = cache.materialize(&star, 10).unwrap_err();
        assert!(matches!(
            err,
            CoreError::TooLarge {
                num_nodes: 120,
                cap: 10
            }
        ));
    }

    #[test]
    fn plan_cache_returns_shared_arcs() {
        let cache = TopologyCache::new();
        let ms = SuperCayleyGraph::macro_star(3, 2).unwrap();
        let a = cache.route_plan(&ms).unwrap();
        let b = cache.route_plan(&ms).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.num_plans(), 1);
        // Plans are not capped by node count: k = 13 (6 227 020 800
        // nodes) compiles instantly.
        let big = SuperCayleyGraph::macro_star(6, 2).unwrap();
        let plan = cache.route_plan(&big).unwrap();
        assert_eq!(plan.degree_k(), 13);
        assert_eq!(cache.num_plans(), 2);
        cache.clear();
        assert_eq!(cache.num_plans(), 0);
        assert_eq!(a.degree_k(), 7); // handles outlive the clear
    }

    #[test]
    fn sharded_topology_pins_and_isolates() {
        let topo = ShardedTopology::new(3);
        assert_eq!(topo.num_shards(), 3);
        let ms = SuperCayleyGraph::macro_star(2, 2).unwrap();
        // Same shard → shared Arc; different shard → independent build.
        let a = topo.shard(1).route_plan(&ms).unwrap();
        let b = topo.shard(4).route_plan(&ms).unwrap(); // 4 % 3 == 1
        let c = topo.shard(2).route_plan(&ms).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(topo.shard(0).num_plans(), 0);
        let m1 = topo.shard(1).materialize(&ms, SMALL_NET_CAP).unwrap();
        let m2 = topo.shard(1).materialize(&ms, SMALL_NET_CAP).unwrap();
        assert!(Arc::ptr_eq(m1.graph(), m2.graph()));
        topo.clear();
        assert_eq!(topo.shard(1).num_plans(), 0);
        assert!(topo.shard(1).is_empty());
        // Zero shards clamps to one.
        assert_eq!(ShardedTopology::new(0).num_shards(), 1);
    }

    #[test]
    fn codec_validates_degree() {
        let star = StarGraph::new(4).unwrap();
        let m = Materialized::build(&star, SMALL_NET_CAP).unwrap();
        assert!(m.node_id(&Perm::identity(5)).is_err());
        assert!(m.node_label(24).is_err());
        let u = Perm::from_rank(4, 7).unwrap();
        assert_eq!(m.node_label(m.node_id(&u).unwrap()).unwrap(), u);
    }
}
