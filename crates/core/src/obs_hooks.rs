//! `obs`-feature hooks: topology-cache and routing metrics.
//!
//! Compiled only with the `obs` cargo feature. Hooks are record-only —
//! they never branch on metric state, so routing decisions and cache
//! behavior are identical with and without the feature. Families are
//! labeled by network name (`network="MS(2,2)"`), so the per-class
//! histograms the golden tests pin down come straight from here.

use scg_obs::{EventTrace, Registry, Timer};

/// Wall-time bucket bounds in microseconds: 1 µs .. 10 s, decades.
const MICROS_BOUNDS: [u64; 8] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Hop-count bucket bounds: tight low end (paper dilations are single
/// digits at k = 5), powers of two above.
pub(crate) const HOPS_BOUNDS: [u64; 10] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32];

/// Cache hit for `network` on the shared [`TopologyCache`](crate::TopologyCache).
pub(crate) fn cache_hit(network: &str) {
    Registry::global()
        .counter("scg_topology_cache_hits_total", &[("network", network)])
        .inc();
}

/// Cache miss for `network` (a build follows).
pub(crate) fn cache_miss(network: &str) {
    Registry::global()
        .counter("scg_topology_cache_misses_total", &[("network", network)])
        .inc();
}

/// `n` entries dropped by [`TopologyCache::clear`](crate::TopologyCache::clear).
pub(crate) fn cache_evicted(n: u64) {
    Registry::global()
        .counter("scg_topology_cache_evictions_total", &[])
        .add(n);
}

/// Times one [`Materialized::build`](crate::Materialized::build) into
/// `scg_topology_materialize_micros` and leaves a trace event with the
/// node count.
pub(crate) fn materialize_timer(network: &str, nodes: u64) -> Timer {
    EventTrace::global().record(
        "topology.materialize",
        &[("nodes", i64::try_from(nodes).unwrap_or(i64::MAX))],
    );
    Timer::new(Registry::global().histogram(
        "scg_topology_materialize_micros",
        &[("network", network)],
        &MICROS_BOUNDS,
    ))
}

/// Plan-cache hit for `network`: a compiled [`RoutePlan`](crate::RoutePlan)
/// was served from the shared cache.
pub(crate) fn plan_cache_hit(network: &str) {
    Registry::global()
        .counter("scg_route_plan_cache_hits_total", &[("network", network)])
        .inc();
}

/// Plan-cache miss for `network` (a compile follows).
pub(crate) fn plan_cache_miss(network: &str) {
    Registry::global()
        .counter("scg_route_plan_cache_misses_total", &[("network", network)])
        .inc();
}

/// Times one [`RoutePlan::build`](crate::RoutePlan::build) into
/// `scg_route_plan_build_micros` and leaves a trace event.
pub(crate) fn plan_build_timer(network: &str) -> Timer {
    EventTrace::global().record("route.plan_build", &[]);
    Timer::new(Registry::global().histogram(
        "scg_route_plan_build_micros",
        &[("network", network)],
        &MICROS_BOUNDS,
    ))
}

/// One fault-free emulation route planned by
/// [`scg_route`](crate::scg_route): records the request and its hop count.
pub(crate) fn route_planned(network: &str, hops: usize) {
    let labels = [("network", network)];
    let reg = Registry::global();
    reg.counter("scg_route_requests_total", &labels).inc();
    reg.histogram("scg_route_plan_hops", &labels, &HOPS_BOUNDS)
        .observe(hops as u64);
}

/// One completed [`scg_route_faulty`](crate::scg_route_faulty) call:
/// records hops, detour encounters, and fallback use per network class.
pub(crate) fn route_faulty_done(network: &str, hops: usize, detours: usize, fallback: bool) {
    let labels = [("network", network)];
    let reg = Registry::global();
    reg.counter("scg_route_faulty_requests_total", &labels)
        .inc();
    reg.histogram("scg_route_faulty_hops", &labels, &HOPS_BOUNDS)
        .observe(hops as u64);
    reg.counter("scg_route_detours_total", &labels)
        .add(detours as u64);
    if fallback {
        reg.counter("scg_route_fallbacks_total", &labels).inc();
        EventTrace::global().record(
            "route.fallback",
            &[("hops", i64::try_from(hops).unwrap_or(i64::MAX))],
        );
    }
}

/// A routing attempt that ended in [`CoreError::NoRoute`](crate::CoreError).
pub(crate) fn route_faulty_no_route(network: &str) {
    Registry::global()
        .counter("scg_route_no_route_total", &[("network", network)])
        .inc();
}
