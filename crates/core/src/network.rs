//! The [`CayleyNetwork`] trait: a network defined by a generator set.

use scg_graph::{DenseGraph, NodeId};
use scg_perm::{factorial, Perm};

use crate::error::CoreError;
use crate::generator::Generator;

/// A (directed) Cayley graph over `S_k`, defined by its generator list.
///
/// Nodes are the `k!` permutations of `1..=k`; node `U` has one out-link per
/// generator `g`, leading to `g.apply(U)`. Lexicographic permutation ranks
/// provide dense node ids, so any network small enough can be materialized
/// as a [`DenseGraph`] via [`CayleyNetwork::to_graph`].
pub trait CayleyNetwork {
    /// The permutation degree `k` (number of balls in the game).
    fn degree_k(&self) -> usize;

    /// The defining generator list (duplicates by action already removed).
    fn generators(&self) -> &[Generator];

    /// Human-readable name, e.g. `MS(3,2)`.
    fn name(&self) -> String;

    /// Number of nodes, `k!`.
    fn num_nodes(&self) -> u64 {
        factorial(self.degree_k())
    }

    /// In-/out-degree: the number of generators.
    fn node_degree(&self) -> usize {
        self.generators().len()
    }

    /// The neighbor reached from `u` through generator index `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range or `u` has the wrong degree (generator
    /// lists are validated at network construction, so application cannot
    /// fail for a degree-correct label).
    fn neighbor(&self, u: &Perm, g: usize) -> Perm {
        self.generators()[g]
            .apply(u)
            // scg-allow(SCG001): generator lists are validated against degree k at construction
            .expect("validated generator applies to degree-correct label")
    }

    /// All out-neighbors of `u`, in generator order.
    fn neighbors(&self, u: &Perm) -> Vec<Perm> {
        self.generators()
            .iter()
            // scg-allow(SCG001): generator lists are validated against degree k at construction
            .map(|g| g.apply(u).expect("validated generator"))
            .collect()
    }

    /// Visits every out-neighbor of `u` in generator order without
    /// allocating: `f(g, v)` receives the generator index and the neighbor
    /// label. This is the hot path the topology engine and the
    /// materialization loops use; prefer it over
    /// [`CayleyNetwork::neighbors`] in per-node loops.
    ///
    /// The callback is a `&mut dyn FnMut` so the trait stays object-safe
    /// (communication schedules route through `Box<dyn CayleyNetwork>`).
    fn for_each_neighbor(&self, u: &Perm, f: &mut dyn FnMut(usize, &Perm)) {
        for (g, gen) in self.generators().iter().enumerate() {
            // scg-allow(SCG001): generator lists are validated against degree k at construction
            let v = gen.apply(u).expect("validated generator");
            f(g, &v);
        }
    }

    /// Whether the generator set is closed under inverses, i.e. the network
    /// can be viewed as an undirected graph.
    fn is_inverse_closed(&self) -> bool {
        let k = self.degree_k();
        let gens = self.generators();
        let perms: Vec<Perm> = gens
            .iter()
            // scg-allow(SCG001): generator lists are validated against degree k at construction
            .map(|g| g.as_perm(k).expect("validated generator"))
            .collect();
        perms.iter().all(|p| perms.contains(&p.inverse()))
    }

    /// Whether the generator set generates the full symmetric group `S_k` —
    /// equivalently, whether the network is (strongly) connected. Decided
    /// algebraically via a Schreier–Sims stabilizer chain, so it works at
    /// any `k ≤ 20`, far beyond graph materialization.
    fn generates_symmetric_group(&self) -> bool {
        let k = self.degree_k();
        let perms: Vec<Perm> = self
            .generators()
            .iter()
            // scg-allow(SCG001): generator lists are validated against degree k at construction
            .map(|g| g.as_perm(k).expect("validated generator"))
            .collect();
        scg_perm::StabilizerChain::new(&perms).is_symmetric_group()
    }

    /// Materializes the network as a rank-indexed [`DenseGraph`], rebuilding
    /// from scratch on every call.
    ///
    /// Most callers should prefer the topology engine
    /// ([`materialize`](crate::materialize)), which shares one cached graph
    /// per network across the whole process; `to_graph` remains as the
    /// uncached reference construction the engine is tested against.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TooLarge`] if `k! > cap` (materialization is
    /// `Θ(k! · degree)` space).
    fn to_graph(&self, cap: u64) -> Result<DenseGraph, CoreError> {
        let n = self.num_nodes();
        if n > cap {
            return Err(CoreError::TooLarge { num_nodes: n, cap });
        }
        let k = self.degree_k();
        let mut out: Vec<NodeId> = Vec::with_capacity(self.node_degree());
        Ok(DenseGraph::from_neighbor_fn(n as usize, |u| {
            // scg-allow(SCG001): u enumerates 0..n = 0..k!, every rank unranks
            let label = Perm::from_rank(k, u64::from(u)).expect("rank below k!");
            out.clear();
            self.for_each_neighbor(&label, &mut |_, v| out.push(v.rank() as NodeId));
            out.clone()
        }))
    }

    /// The node id (lexicographic rank) of a label.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DegreeMismatch`] if the label's degree differs
    /// from the network's.
    fn node_id(&self, u: &Perm) -> Result<u64, CoreError> {
        if u.degree() != self.degree_k() {
            return Err(CoreError::DegreeMismatch {
                expected: self.degree_k(),
                found: u.degree(),
            });
        }
        Ok(u.rank())
    }

    /// The label of a node id.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError::Perm`] error if `id >= k!`.
    fn node_label(&self, id: u64) -> Result<Perm, CoreError> {
        Ok(Perm::from_rank(self.degree_k(), id)?)
    }
}

/// Removes literal duplicates and identity-action generators from a
/// generator list, preserving order (e.g. `R^{l-1}` duplicates `R` when
/// `l = 2`).
///
/// Generators with *distinct labels but equal action* — only `I_2` and
/// `I_2^{-1}` — are deliberately **kept**: the paper treats them as parallel
/// links of a directed Cayley multigraph, and the all-port link-load
/// arithmetic of Theorems 4–5 depends on that convention.
pub(crate) fn dedup_by_action(k: usize, gens: Vec<Generator>) -> Vec<Generator> {
    let mut out: Vec<Generator> = Vec::with_capacity(gens.len());
    for g in gens {
        // scg-allow(SCG001): generator lists are validated against degree k at construction
        let p = g.as_perm(k).expect("validated generator");
        if p.is_identity() {
            continue;
        }
        if !out.contains(&g) {
            out.push(g);
        }
    }
    out
}
