//! Algebraic sorting (routing) in the reference Cayley networks: the
//! transposition network, the bubble-sort graph, and the rotator graph.
//!
//! Routing from `U` to `W` in a Cayley graph is sorting the relative
//! permutation `P = W^{-1}∘U` to the identity with generator moves (§2's
//! ball-arrangement view), so each function here takes a single permutation
//! and returns the move sequence that sorts it.

use scg_perm::cast::{len_u32, sym_u8};
use scg_perm::Perm;

use crate::generator::Generator;

/// The transposition-network distance of `p` to the identity:
/// `k − c(p)` where `c(p)` counts all cycles including fixed points
/// (equivalently, misplaced symbols minus nontrivial cycles).
#[must_use]
pub fn tn_distance(p: &Perm) -> u32 {
    let nontrivial: usize = p.cycles().iter().map(Vec::len).sum();
    len_u32(nontrivial - p.cycles().len())
}

/// An optimal transposition-network sorting sequence for `p` (length
/// exactly [`tn_distance`]): each cycle `(c_1 … c_m)` unwinds as
/// `T_{c_1,c_2} T_{c_2,c_3} … T_{c_{m-1},c_m}`.
#[must_use]
pub fn tn_sort_sequence(p: &Perm) -> Vec<Generator> {
    // Sorting p means the move product must equal p^{-1}; the cycle
    // factorization below yields exactly that (verified by tests).
    let mut out = Vec::new();
    for cycle in p.inverse().cycles() {
        for pair in cycle.windows(2) {
            out.push(Generator::exchange(pair[0] as usize, pair[1] as usize));
        }
    }
    out
}

/// The bubble-sort-graph distance of `p`: its inversion count.
#[must_use]
pub fn bubble_distance(p: &Perm) -> u32 {
    len_u32(p.inversions())
}

/// An optimal bubble-sort sequence for `p` (adjacent exchanges, length
/// exactly [`bubble_distance`]).
#[must_use]
pub fn bubble_sort_sequence(p: &Perm) -> Vec<Generator> {
    let mut symbols: Vec<u8> = p.symbols().to_vec();
    let mut out = Vec::new();
    // Plain bubble sort: every swap removes exactly one inversion, which is
    // what makes the sequence optimal.
    let k = symbols.len();
    loop {
        let mut swapped = false;
        for i in 0..k - 1 {
            if symbols[i] > symbols[i + 1] {
                symbols.swap(i, i + 1);
                out.push(Generator::exchange(i + 1, i + 2));
                swapped = true;
            }
        }
        if !swapped {
            return out;
        }
    }
}

/// A rotator-graph sorting sequence for `p` using only insertions
/// `I_2 … I_k`: selection-sort from the right (fix position `k`, then
/// `k−1`, …), costing at most `k(k+1)/2 − 1` moves.
///
/// Not minimum-length (rotator shortest paths require a more intricate
/// cycle analysis; use [`bfs_route`](crate::bfs_route) for exact
/// distances), but valid on every insertion-generated network and within a
/// factor `O(k)` of optimal.
#[must_use]
pub fn rotator_sort_sequence(p: &Perm) -> Vec<Generator> {
    let mut cur = *p;
    let mut out = Vec::new();
    let k = cur.degree();
    for target in (2..=k).rev() {
        // Bring symbol `target` to the front by cycling the prefix of
        // length `target`, then one more cycle parks it at its home.
        // Each I_target shifts prefix positions left by one.
        let q = cur.position_of(sym_u8(target));
        debug_assert!(q <= target, "later positions already fixed");
        if q == target {
            continue; // already home
        }
        for _ in 0..q {
            cur = cur
                .prefix_rotated_left(target)
                // scg-allow(SCG001): target ranges over 2..=degree, so the prefix is in range
                .expect("prefix within degree");
            out.push(Generator::insertion(target));
        }
    }
    debug_assert!(cur.is_identity());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::apply_path;
    use scg_perm::Permutations;

    #[test]
    fn tn_sort_is_optimal_exhaustive() {
        for k in 2..=6 {
            for p in Permutations::lexicographic(k) {
                let seq = tn_sort_sequence(&p);
                assert_eq!(seq.len() as u32, tn_distance(&p), "perm {p}");
                assert!(apply_path(&p, &seq).unwrap().is_identity(), "perm {p}");
            }
        }
    }

    #[test]
    fn tn_distance_matches_bfs() {
        let tn = crate::classes::TranspositionNetwork::new(5).unwrap();
        let g = crate::topology::materialize(&tn, crate::topology::SMALL_NET_CAP).unwrap();
        let g = g.graph();
        let dist = g.bfs_distances(0);
        for p in Permutations::lexicographic(5) {
            assert_eq!(dist[p.rank() as usize], tn_distance(&p), "perm {p}");
        }
    }

    #[test]
    fn bubble_sort_is_optimal_exhaustive() {
        for k in 2..=6 {
            for p in Permutations::lexicographic(k) {
                let seq = bubble_sort_sequence(&p);
                assert_eq!(seq.len() as u32, bubble_distance(&p), "perm {p}");
                assert!(apply_path(&p, &seq).unwrap().is_identity(), "perm {p}");
            }
        }
    }

    #[test]
    fn bubble_distance_matches_bfs() {
        let bs = crate::classes::BubbleSortGraph::new(5).unwrap();
        let g = crate::topology::materialize(&bs, crate::topology::SMALL_NET_CAP).unwrap();
        let g = g.graph();
        let dist = g.bfs_distances(0);
        for p in Permutations::lexicographic(5) {
            assert_eq!(dist[p.rank() as usize], bubble_distance(&p), "perm {p}");
        }
    }

    #[test]
    fn rotator_sort_is_valid_and_bounded() {
        for k in 2..=6 {
            for p in Permutations::lexicographic(k) {
                let seq = rotator_sort_sequence(&p);
                assert!(apply_path(&p, &seq).unwrap().is_identity(), "perm {p}");
                assert!(seq.len() <= k * (k + 1) / 2, "perm {p}");
                // Only insertion generators are used.
                assert!(seq.iter().all(|g| matches!(g, Generator::Insertion { .. })));
            }
        }
    }

    #[test]
    fn rotator_sort_never_beats_bfs() {
        // Spot-check against exact distances on the 5-rotator.
        let gens: Vec<Generator> = (2..=5).map(Generator::insertion).collect();
        // Build the rotator graph by hand (it is not one of the ten super
        // Cayley classes: all insertions up to k, one box).
        let g = scg_graph::DenseGraph::from_neighbor_fn(120, |u| {
            let label = Perm::from_rank(5, u64::from(u)).unwrap();
            gens.iter()
                .map(|gen| gen.apply(&label).unwrap().rank() as u32)
                .collect()
        });
        // Distance to sort p = distance from p to identity in the graph.
        for p in Permutations::lexicographic(5) {
            let d = g.bfs_distances(p.rank() as u32)[0];
            assert!(rotator_sort_sequence(&p).len() as u32 >= d, "perm {p}");
        }
    }
}
