//! Optimal routing in the star graph.
//!
//! Routing from node `U` to node `W` in a Cayley graph is equivalent to
//! *sorting* the relative permutation `P = W^{-1} ∘ U` to the identity using
//! generator moves (the ball-arrangement view of §2): applying generator `g`
//! at the current node multiplies the relative permutation by `g` on the
//! right, so one generator sequence serves both descriptions.
//!
//! For the star graph the classic greedy cycle algorithm (Akers &
//! Krishnamurthy) is optimal: if the outside ball (position 1) is not ball 1,
//! send it home; otherwise open any unfinished cycle. The resulting distance
//! has the closed form implemented by [`star_distance`], and the diameter is
//! `⌊3(k−1)/2⌋`.

use scg_perm::cast::len_u32;
use scg_perm::Perm;

use crate::generator::Generator;

/// The star-graph distance from label `p` to the identity.
///
/// Closed form: summing over nontrivial cycles of the map `position ↦
/// symbol`, a cycle of length `ℓ` through position 1 costs `ℓ − 1` moves and
/// any other nontrivial cycle costs `ℓ + 1`.
#[must_use]
pub fn star_distance(p: &Perm) -> u32 {
    let mut dist = 0u32;
    for cycle in p.cycles() {
        let len = len_u32(cycle.len());
        if cycle.contains(&1) {
            dist += len - 1;
        } else {
            dist += len + 1;
        }
    }
    dist
}

/// The star-graph distance between two labels.
///
/// # Panics
///
/// Panics if degrees differ.
#[must_use]
pub fn star_distance_between(from: &Perm, to: &Perm) -> u32 {
    star_distance(&to.inverse().compose(from))
}

/// The diameter `⌊3(k−1)/2⌋` of the `k`-star.
#[must_use]
pub fn star_diameter(k: usize) -> u32 {
    (3 * (len_u32(k) - 1)) / 2
}

/// An optimal generator sequence sorting `p` to the identity.
///
/// The sequence has length exactly [`star_distance`]`(p)`.
#[must_use]
pub fn star_sort_sequence(p: &Perm) -> Vec<Generator> {
    let mut cur = *p;
    let mut seq = Vec::new();
    loop {
        let s = cur.symbol_at(1);
        let i = if s != 1 {
            // Send the outside ball home: T_s places u_1 = s at position s.
            s as usize
        } else {
            // Open the first unfinished cycle.
            match cur
                .symbols()
                .iter()
                .enumerate()
                .find(|&(idx, &sym)| sym as usize != idx + 1)
            {
                Some((idx, _)) => idx + 1,
                None => return seq, // identity reached
            }
        };
        seq.push(Generator::transposition(i));
        // scg-allow(SCG001): i comes from enumerating positions 1..=degree of cur itself
        cur = cur.swapped(1, i).expect("position within degree");
    }
}

/// An optimal star-graph route from `from` to `to` as a generator sequence.
///
/// # Panics
///
/// Panics if degrees differ.
#[must_use]
pub fn star_route(from: &Perm, to: &Perm) -> Vec<Generator> {
    star_sort_sequence(&to.inverse().compose(from))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{apply_path, StarGraph};

    use scg_perm::{factorial, Permutations};

    #[test]
    fn distance_small_cases() {
        assert_eq!(star_distance(&Perm::identity(4)), 0);
        // Single swap of positions 1,2: one move.
        let p = Perm::from_symbols(&[2, 1, 3, 4]).unwrap();
        assert_eq!(star_distance(&p), 1);
        // 2-cycle not through position 1 costs 3.
        let q = Perm::from_symbols(&[1, 3, 2, 4]).unwrap();
        assert_eq!(star_distance(&q), 3);
    }

    #[test]
    fn sort_sequence_length_matches_formula_exhaustively() {
        for k in 2..=6 {
            for p in Permutations::lexicographic(k) {
                let seq = star_sort_sequence(&p);
                assert_eq!(seq.len() as u32, star_distance(&p), "perm {p}");
                // The sequence really sorts p.
                let sorted = apply_path(&p, &seq).unwrap();
                assert!(sorted.is_identity(), "perm {p} not sorted");
            }
        }
    }

    #[test]
    fn formula_matches_bfs_exhaustively() {
        // The closed form must equal true graph distance; verify on the
        // 6-star (720 nodes) against BFS from the identity.
        let star = StarGraph::new(6).unwrap();
        let g = crate::topology::materialize(&star, crate::topology::DEFAULT_NET_CAP).unwrap();
        let g = g.graph();
        let dist = g.bfs_distances(Perm::identity(6).rank() as u32);
        for r in 0..factorial(6) {
            let p = Perm::from_rank(6, r).unwrap();
            // BFS gives distance identity→p; star graphs are undirected and
            // distance is symmetric under inversion symmetry.
            assert_eq!(dist[r as usize], star_distance(&p), "rank {r} label {p}");
        }
    }

    #[test]
    fn diameter_formula_matches_measured() {
        for k in 2..=6 {
            let star = StarGraph::new(k).unwrap();
            let g = crate::topology::materialize(&star, crate::topology::DEFAULT_NET_CAP).unwrap();
            let g = g.graph();
            let stats = scg_graph::DistanceStats::single_source(g, 0);
            assert_eq!(stats.diameter, star_diameter(k), "k = {k}");
        }
    }

    #[test]
    fn route_connects_arbitrary_pairs() {
        let from = Perm::from_symbols(&[3, 5, 1, 2, 4]).unwrap();
        let to = Perm::from_symbols(&[5, 1, 4, 3, 2]).unwrap();
        let path = star_route(&from, &to);
        assert_eq!(apply_path(&from, &path).unwrap(), to);
        assert_eq!(path.len() as u32, star_distance_between(&from, &to));
    }
}
