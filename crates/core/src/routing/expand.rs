//! Generator expansion: emulating star-graph and transposition-network
//! links on super Cayley graphs (Theorems 1, 2, 3, 6, 7).
//!
//! Every link of the `(ln+1)`-star — the transposition `T_j` — factors over
//! a super Cayley graph as
//! *bring the box containing position `j` to the front, perform the exchange
//! with nucleus moves, return the box*. The per-class constants fall out:
//!
//! | host | expansion of `T_j` (`j > n+1`) | length |
//! |---|---|---|
//! | `MS(l,n)` | `S_{j1+1} · T_{j0+2} · S_{j1+1}` | 3 |
//! | `Complete-RS(l,n)` | `R^{-j1} · T_{j0+2} · R^{j1}` | 3 |
//! | `RS(l,n)` | `R^{∓1}…· T_{j0+2} · R^{±1}…` | `2·min(j1, l−j1) + 1` |
//! | `IS(k)` | `I_j · I_{j-1}^{-1}` | 2 |
//! | `MIS(l,n)` | `S_{j1+1} · I_{j0+2} · I_{j0+1}^{-1} · S_{j1+1}` | 4 |
//! | `Complete-RIS(l,n)` | `R^{-j1} · I_{j0+2} · I_{j0+1}^{-1} · R^{j1}` | 4 |
//!
//! where `j0 = (j−2) mod n` and `j1 = ⌊(j−2)/n⌋`. The paper's Theorem 4
//! statement writes the complete-rotation bring generator as `B_i =
//! R^{-i-1}`; consistency with Theorem 1 requires `B_i = R^{-(i-1)}` (a
//! typo in the paper), which the exhaustive tests below confirm.
//!
//! Transposition-network links `T_{i,j}` expand by the six-case table of
//! Theorem 6; rotation hosts must *rebase* the inner box trip because
//! rotations — unlike swaps — displace every box (the table's composition is
//! verified link-by-link in the tests).

use crate::classes::{NucleusKind, SuperCayleyGraph, SuperKind};
use crate::error::CoreError;
use crate::generator::Generator;

/// Splits a star dimension `j ∈ 2..=k` into `(j0, j1)`:
/// `j0 = (j−2) mod n` (offset inside its box) and `j1 = ⌊(j−2)/n⌋`
/// (box index minus one). `j1 = 0` means position `j` lies in the leftmost
/// box.
#[must_use]
pub fn star_dimension_parts(j: usize, n: usize) -> (usize, usize) {
    ((j - 2) % n, (j - 2) / n)
}

/// Emulation of star-graph links on a super Cayley graph host.
///
/// # Examples
///
/// ```
/// use scg_core::{StarEmulation, SuperCayleyGraph};
///
/// # fn main() -> Result<(), scg_core::CoreError> {
/// let ms = SuperCayleyGraph::macro_star(3, 2)?;
/// let emu = StarEmulation::new(&ms)?;
/// assert_eq!(emu.expand_star_link(6)?.len(), 3); // Theorem 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StarEmulation<'a> {
    host: &'a SuperCayleyGraph,
}

impl<'a> StarEmulation<'a> {
    /// Creates an emulation helper for `host`.
    ///
    /// The paper's theorems cover the transposition and insertion-selection
    /// nuclei; for the insertion-only rotator classes (`MR`, `RR`,
    /// `Complete-RR`) we extend the same framework via
    /// `T_x = I_{x-1}^{x-2} ∘ I_x` (the selection is itself a cycle of
    /// insertions, `I_j^{-1} = I_j^{j-1}`), giving a nucleus cost of at
    /// most `n` and a star-link dilation of `2·trip + n` — constant-degree
    /// emulation, though with a larger constant than Theorems 1–3.
    ///
    /// # Errors
    ///
    /// Infallible today; kept fallible for future host kinds.
    pub fn new(host: &'a SuperCayleyGraph) -> Result<Self, CoreError> {
        Ok(StarEmulation { host })
    }

    /// The host network.
    #[must_use]
    pub fn host(&self) -> &'a SuperCayleyGraph {
        self.host
    }

    fn n(&self) -> usize {
        self.host.box_size()
    }

    fn l(&self) -> usize {
        self.host.levels()
    }

    /// Nucleus realization of the star transposition `T_x` for
    /// `x ∈ 2..=n+1` (position inside the leftmost box).
    fn nucleus_t(&self, x: usize) -> Vec<Generator> {
        debug_assert!((2..=self.n() + 1).contains(&x));
        match self.host.class().nucleus() {
            NucleusKind::Transposition => vec![Generator::transposition(x)],
            NucleusKind::InsertionSelection => {
                // T_x = I_{x-1}^{-1} ∘ I_x ; I_1^{-1} degenerates to identity.
                let mut seq = vec![Generator::insertion(x)];
                if x >= 3 {
                    seq.push(Generator::selection(x - 1));
                }
                seq
            }
            NucleusKind::Insertion => {
                // T_x = I_{x-1}^{-1} ∘ I_x and I_{x-1}^{-1} = I_{x-1}^{x-2}.
                let mut seq = vec![Generator::insertion(x)];
                seq.extend(std::iter::repeat_n(
                    Generator::insertion(x - 1),
                    x.saturating_sub(2),
                ));
                seq
            }
        }
    }

    /// The generator sequence that rotates the box currently in (1-based)
    /// box slot `slot` to slot 1, for rotation hosts. Returns the sequence
    /// and the signed rotation amount applied (in box positions, positive =
    /// rightward/`R`).
    fn rotate_slot_to_front(&self, slot: usize) -> (Vec<Generator>, i64) {
        let (l, n) = (self.l(), self.n());
        debug_assert!((2..=l).contains(&slot));
        let back = slot - 1; // leftward distance
        match self.host.class().super_kind() {
            SuperKind::CompleteRotation => {
                // Single generator R^{l-back} = R^{-back}.
                (vec![Generator::rotation(n, l - back)], -(back as i64))
            }
            SuperKind::Rotation => {
                if back <= l - back {
                    // `back` steps of R^{-1} = R^{l-1}.
                    (vec![Generator::rotation(n, l - 1); back], -(back as i64))
                } else {
                    // `l - back` steps of R.
                    (vec![Generator::rotation(n, 1); l - back], (l - back) as i64)
                }
            }
            SuperKind::Swap | SuperKind::None => {
                // scg-allow(SCG001): rotate/unrotate are only dispatched for rotation-class hosts
                unreachable!("rotation helper called on non-rotation host")
            }
        }
    }

    /// Inverse of a signed rotation amount as a generator sequence.
    fn unrotate(&self, amount: i64) -> Vec<Generator> {
        let (l, n) = (self.l(), self.n());
        let back = amount.rem_euclid(l as i64) as usize; // net rightward shift applied
        if back == 0 {
            return Vec::new();
        }
        match self.host.class().super_kind() {
            SuperKind::CompleteRotation => vec![Generator::rotation(n, l - back)],
            SuperKind::Rotation => {
                if l - back <= back {
                    vec![Generator::rotation(n, 1); l - back]
                } else {
                    vec![Generator::rotation(n, l - 1); back]
                }
            }
            // scg-allow(SCG001): rotate/unrotate are only dispatched for rotation-class hosts
            SuperKind::Swap | SuperKind::None => unreachable!(),
        }
    }

    /// Bring-to-front and return sequences for (1-based) box `b >= 2`,
    /// assuming no prior displacement. For swap hosts this is `S_b` twice;
    /// for rotation hosts it is the appropriate rotation pair.
    fn bring_and_return(&self, b: usize) -> (Vec<Generator>, Vec<Generator>) {
        match self.host.class().super_kind() {
            SuperKind::Swap => {
                let s = Generator::swap(self.n(), b);
                (vec![s], vec![s])
            }
            SuperKind::Rotation | SuperKind::CompleteRotation => {
                let (seq, amount) = self.rotate_slot_to_front(b);
                (seq, self.unrotate(amount))
            }
            SuperKind::None => (Vec::new(), Vec::new()),
        }
    }

    /// Expands the star link `T_j` (Theorems 1–3). The length is 1–2 for
    /// `j <= n+1`, and at most 3 (MS/Complete-RS), 4 (MIS/Complete-RIS), or
    /// `2·min(j1, l−j1) + 2` (RS/RIS) otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `j` is outside `2..=k`.
    pub fn expand_star_link(&self, j: usize) -> Result<Vec<Generator>, CoreError> {
        let k = self.n() * self.l() + 1;
        if !(2..=k).contains(&j) {
            return Err(CoreError::InvalidParameters { l: self.l(), n: j });
        }
        let (j0, j1) = star_dimension_parts(j, self.n());
        if j1 == 0 {
            return Ok(self.nucleus_t(j));
        }
        let (bring, ret) = self.bring_and_return(j1 + 1);
        let mut seq = bring;
        seq.extend(self.nucleus_t(j0 + 2));
        seq.extend(ret);
        Ok(seq)
    }

    /// Expands the transposition-network link `T_{i,j}` (`1 <= i < j <= k`)
    /// per the six-case table of Theorem 6 (and its Theorem 7 analogue for
    /// insertion-selection nuclei).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `(i, j)` is not a valid
    /// position pair.
    pub fn expand_tn_link(&self, i: usize, j: usize) -> Result<Vec<Generator>, CoreError> {
        let k = self.n() * self.l() + 1;
        if i >= j || i < 1 || j > k {
            return Err(CoreError::InvalidParameters { l: i, n: j });
        }
        if i == 1 {
            // Cases 1 and 2: T_{1,j} is the star link T_j.
            return self.expand_star_link(j);
        }
        let (i0, i1) = star_dimension_parts(i, self.n());
        let (j0, j1) = star_dimension_parts(j, self.n());
        let mut seq = Vec::new();
        match (i1, j1) {
            // Case 3: both in the leftmost box — T_i T_j T_i.
            (0, 0) => {
                seq.extend(self.nucleus_t(i));
                seq.extend(self.nucleus_t(j));
                seq.extend(self.nucleus_t(i));
            }
            // Case 4: i in the leftmost box, j elsewhere —
            // T_i · B_{j1+1} T_{j0+2} B_{j1+1}^{-1} · T_i.
            (0, _) => {
                seq.extend(self.nucleus_t(i));
                seq.extend(self.expand_star_link(j)?);
                seq.extend(self.nucleus_t(i));
            }
            // Case 5: same non-leftmost box —
            // B_{i1+1} · T_{i0+2} T_{j0+2} T_{i0+2} · B_{i1+1}^{-1}.
            (a, b) if a == b => {
                let (bring, ret) = self.bring_and_return(i1 + 1);
                seq.extend(bring);
                seq.extend(self.nucleus_t(i0 + 2));
                seq.extend(self.nucleus_t(j0 + 2));
                seq.extend(self.nucleus_t(i0 + 2));
                seq.extend(ret);
            }
            // Case 6: distinct non-leftmost boxes. For swap hosts the
            // paper's absolute form works; rotation hosts must rebase the
            // inner trip because the first rotation displaced box j1+1.
            _ => match self.host.class().super_kind() {
                SuperKind::Swap => {
                    let s_i = Generator::swap(self.n(), i1 + 1);
                    let s_j = Generator::swap(self.n(), j1 + 1);
                    seq.push(s_i);
                    seq.extend(self.nucleus_t(i0 + 2));
                    seq.push(s_j);
                    seq.extend(self.nucleus_t(j0 + 2));
                    seq.push(s_j);
                    seq.extend(self.nucleus_t(i0 + 2));
                    seq.push(s_i);
                }
                SuperKind::Rotation | SuperKind::CompleteRotation => {
                    let l = self.l() as i64;
                    let (bring_i, amount_i) = self.rotate_slot_to_front(i1 + 1);
                    // Box j1+1 now sits in slot (j1 + amount) mod l + 1.
                    let slot_j = ((j1 as i64 + amount_i).rem_euclid(l)) as usize + 1;
                    let (bring_j, amount_j) = self.rotate_slot_to_front(slot_j);
                    // Return box j1+1's trip, then undo everything.
                    seq.extend(bring_i);
                    seq.extend(self.nucleus_t(i0 + 2));
                    seq.extend(bring_j);
                    seq.extend(self.nucleus_t(j0 + 2));
                    seq.extend(self.unrotate(amount_j));
                    seq.extend(self.nucleus_t(i0 + 2));
                    seq.extend(self.unrotate(amount_i));
                }
                // scg-allow(SCG001): the i1 == j1 branch above already handled l = 1 hosts
                SuperKind::None => unreachable!("l = 1 implies i1 = j1 = 0"),
            },
        }
        Ok(seq)
    }

    /// The worst-case expansion length of a star link on this host: the
    /// embedding dilation of Theorems 1–3.
    #[must_use]
    pub fn star_dilation(&self) -> usize {
        let (l, n) = (self.l(), self.n());
        let trip = match self.host.class().super_kind() {
            SuperKind::None => 0,
            SuperKind::Swap | SuperKind::CompleteRotation => usize::from(l >= 2),
            SuperKind::Rotation => l / 2,
        };
        let nucleus = match self.host.class().nucleus() {
            NucleusKind::Transposition => 1,
            NucleusKind::InsertionSelection => usize::from(n >= 2) + 1,
            // Worst case x = n+1: one I_{n+1} plus n-1 repetitions of I_n.
            NucleusKind::Insertion => n.max(1),
        };
        2 * trip + nucleus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::apply_path;
    use crate::network::CayleyNetwork;
    use scg_perm::Perm;

    fn check_star_expansion(host: &SuperCayleyGraph) {
        let emu = StarEmulation::new(host).unwrap();
        let k = host.box_size() * host.levels() + 1;
        let u = Perm::from_rank(k, 12345 % scg_perm::factorial(k)).unwrap();
        for j in 2..=k {
            let seq = emu.expand_star_link(j).unwrap();
            let via_host = apply_path(&u, &seq).unwrap();
            let direct = Generator::transposition(j).apply(&u).unwrap();
            assert_eq!(via_host, direct, "{} T_{j}", host.name());
            assert!(
                seq.len() <= emu.star_dilation(),
                "{} T_{j} too long",
                host.name()
            );
        }
    }

    #[test]
    fn theorem_1_macro_star() {
        for (l, n) in [(2, 2), (3, 2), (2, 3), (4, 3), (3, 4)] {
            check_star_expansion(&SuperCayleyGraph::macro_star(l, n).unwrap());
        }
    }

    #[test]
    fn theorem_1_complete_rotation_star() {
        for (l, n) in [(2, 2), (3, 2), (4, 3), (5, 3), (6, 2)] {
            check_star_expansion(&SuperCayleyGraph::complete_rotation_star(l, n).unwrap());
        }
    }

    #[test]
    fn rotation_star_expansion() {
        for (l, n) in [(2, 2), (3, 2), (5, 3), (6, 2)] {
            check_star_expansion(&SuperCayleyGraph::rotation_star(l, n).unwrap());
        }
    }

    #[test]
    fn theorem_2_insertion_selection() {
        for k in [3, 5, 8] {
            let host = SuperCayleyGraph::insertion_selection(k).unwrap();
            check_star_expansion(&host);
            let emu = StarEmulation::new(&host).unwrap();
            assert!(emu.star_dilation() <= 2);
        }
    }

    #[test]
    fn theorem_3_mis_and_cris() {
        for (l, n) in [(2, 2), (3, 2), (4, 3)] {
            check_star_expansion(&SuperCayleyGraph::macro_is(l, n).unwrap());
            check_star_expansion(&SuperCayleyGraph::complete_rotation_is(l, n).unwrap());
            let mis = SuperCayleyGraph::macro_is(l, n).unwrap();
            assert_eq!(StarEmulation::new(&mis).unwrap().star_dilation(), 4);
        }
    }

    #[test]
    fn dilation_constants_match_theorems() {
        let ms = SuperCayleyGraph::macro_star(4, 3).unwrap();
        assert_eq!(StarEmulation::new(&ms).unwrap().star_dilation(), 3);
        let crs = SuperCayleyGraph::complete_rotation_star(4, 3).unwrap();
        assert_eq!(StarEmulation::new(&crs).unwrap().star_dilation(), 3);
        let is = SuperCayleyGraph::insertion_selection(10).unwrap();
        assert_eq!(StarEmulation::new(&is).unwrap().star_dilation(), 2);
        let cris = SuperCayleyGraph::complete_rotation_is(4, 3).unwrap();
        assert_eq!(StarEmulation::new(&cris).unwrap().star_dilation(), 4);
    }

    #[test]
    fn rotator_hosts_expand_via_insertion_cycles() {
        // The extension beyond the paper's theorems: MR/RR/Complete-RR
        // realize T_x with x-1 insertions, so star links expand correctly.
        for host in [
            SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
            SuperCayleyGraph::macro_rotator(3, 2).unwrap(),
            SuperCayleyGraph::rotation_rotator(3, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_rotator(3, 2).unwrap(),
            SuperCayleyGraph::macro_rotator(2, 3).unwrap(),
        ] {
            check_star_expansion(&host);
        }
        let mr = SuperCayleyGraph::macro_rotator(2, 3).unwrap();
        // Dilation 2·1 + n = 5 for MR(2,3).
        assert_eq!(StarEmulation::new(&mr).unwrap().star_dilation(), 5);
    }

    fn check_tn_expansion(host: &SuperCayleyGraph, max_len: usize) {
        let emu = StarEmulation::new(host).unwrap();
        let k = host.box_size() * host.levels() + 1;
        let u = Perm::from_rank(k, 271_828 % scg_perm::factorial(k)).unwrap();
        let mut worst = 0;
        for i in 1..=k {
            for j in i + 1..=k {
                let seq = emu.expand_tn_link(i, j).unwrap();
                let via_host = apply_path(&u, &seq).unwrap();
                let direct = Generator::exchange(i, j).apply(&u).unwrap();
                assert_eq!(via_host, direct, "{} T_{{{i},{j}}}", host.name());
                worst = worst.max(seq.len());
            }
        }
        assert!(
            worst <= max_len,
            "{}: dilation {worst} > {max_len}",
            host.name()
        );
    }

    #[test]
    fn theorem_6_tn_into_ms_and_crs() {
        // Dilation 5 when l = 2, 7 when l >= 3.
        check_tn_expansion(&SuperCayleyGraph::macro_star(2, 3).unwrap(), 5);
        check_tn_expansion(&SuperCayleyGraph::macro_star(3, 2).unwrap(), 7);
        check_tn_expansion(&SuperCayleyGraph::macro_star(4, 3).unwrap(), 7);
        check_tn_expansion(&SuperCayleyGraph::complete_rotation_star(2, 3).unwrap(), 5);
        check_tn_expansion(&SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(), 7);
        check_tn_expansion(&SuperCayleyGraph::complete_rotation_star(4, 3).unwrap(), 7);
    }

    #[test]
    fn theorem_7_tn_into_is_mis_cris() {
        // k-IS: dilation 6; MIS/Complete-RIS: O(1) (≤ 10 via the 6-case
        // table with 2-step nucleus transpositions).
        check_tn_expansion(&SuperCayleyGraph::insertion_selection(6).unwrap(), 6);
        check_tn_expansion(&SuperCayleyGraph::macro_is(3, 2).unwrap(), 10);
        check_tn_expansion(&SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(), 10);
    }

    #[test]
    fn star_dimension_parts_examples() {
        // Figure 1 caption: j0 = (j-2) mod 3, j1 = floor((j-2)/3).
        assert_eq!(star_dimension_parts(5, 3), (0, 1));
        assert_eq!(star_dimension_parts(13, 3), (2, 3));
        assert_eq!(star_dimension_parts(4, 3), (2, 0));
    }

    #[test]
    fn paper_typo_b_i_is_not_r_minus_i_minus_1() {
        // Theorem 4 writes B_i = R^{-i-1}; the correct bring generator for
        // box i is R^{-(i-1)}. Check that the literal reading fails to
        // emulate T_j while ours succeeds.
        let host = SuperCayleyGraph::complete_rotation_star(4, 3).unwrap();
        let k = 13;
        let u = Perm::identity(k);
        let j = 6; // j0 = 1, j1 = 1, box 2
        let (n, l) = (3usize, 4usize);
        // Literal "R^{-i-1}" with i = 2: R^{-3} = R^{l-3} = R^1.
        let literal = [
            Generator::rotation(n, (2 * l - 3) % l),
            Generator::transposition(3),
            Generator::rotation(n, 3 % l),
        ];
        let direct = Generator::transposition(j).apply(&u).unwrap();
        assert_ne!(apply_path(&u, &literal).unwrap(), direct);
        // Our corrected expansion succeeds (also covered by the exhaustive
        // tests above).
        let emu = StarEmulation::new(&host).unwrap();
        let seq = emu.expand_star_link(j).unwrap();
        assert_eq!(apply_path(&u, &seq).unwrap(), direct);
    }
}
