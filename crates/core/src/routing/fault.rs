//! Fault-tolerant routing: the paper's emulation route with detour search
//! and a survivor-graph BFS fallback.
//!
//! Super Cayley graphs inherit the star/rotator property that connectivity
//! equals degree, so any `degree − 1` fail-stop faults leave the survivors
//! connected and [`scg_route_faulty`] is total on them. The router is
//! layered by cost:
//!
//! 1. walk the fault-free emulation plan of [`scg_route`] — `O(path)` table
//!    lookups, no search (planning rides [`RoutePlan::route_into`] and so
//!    inherits the bit-packed `u64` star-sort kernel whenever `k ≤ 16`,
//!    the byte-array walk above);
//! 2. at the first faulted hop, *detour*: re-expand from the failure point
//!    with the faulted generator masked, preferring an alternative whose
//!    replanned suffix is verified fault-free (bounded by `2 × degree`
//!    detour attempts);
//! 3. as the guaranteed last resort, breadth-first search over the
//!    survivor graph ([`SurvivorView`]) and convert the node path back to
//!    generators.
//!
//! The result is a [`RoutedPath`] report — the generator sequence plus how
//! much fault handling it took — rather than a bare generator list.

use scg_graph::{FaultSet, NodeId, SurvivorView};
use scg_perm::Perm;

use crate::classes::SuperCayleyGraph;
use crate::error::CoreError;
use crate::generator::Generator;
use crate::network::CayleyNetwork;
use crate::routing::plan::{RouteBuf, RoutePlan};
use crate::topology::{route_plan, Materialized};

/// A fault-aware route and the effort it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedPath {
    /// The generator sequence from source to destination; every traversed
    /// link avoids the fault set.
    pub hops: Vec<Generator>,
    /// Faulted-hop encounters that were resolved by local detour search.
    pub detours: usize,
    /// Whether the survivor-graph BFS fallback produced (part of) the
    /// route.
    pub fallback_used: bool,
}

impl RoutedPath {
    /// Number of hops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route is empty (source equals destination).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// The slot index of `g` in the host's generator list (= the out-slot of
/// the materialized graph and transition tables).
fn gen_index(net: &SuperCayleyGraph, g: Generator) -> Result<usize, CoreError> {
    net.generators()
        .iter()
        .position(|&h| h == g)
        .ok_or(CoreError::NoRoute)
}

/// Whether walking `plan` from node `start` stays entirely on live nodes
/// and links.
fn plan_is_clean(
    net: &SuperCayleyGraph,
    mat: &Materialized,
    faults: &FaultSet,
    start: NodeId,
    plan: &[Generator],
) -> Result<bool, CoreError> {
    let mut cur = start;
    for &g in plan {
        let v = mat.neighbor_id(cur, gen_index(net, g)?);
        if faults.blocks(cur, v) {
            return Ok(false);
        }
        cur = v;
    }
    Ok(true)
}

/// Survivor-graph BFS from `cur` to `dst`, converted back to generators.
fn survivor_fallback(
    net: &SuperCayleyGraph,
    mat: &Materialized,
    faults: &FaultSet,
    cur: NodeId,
    dst: NodeId,
    hops: &mut Vec<Generator>,
) -> Result<(), CoreError> {
    let view = SurvivorView::new(mat.graph(), faults);
    let path = view.shortest_path(cur, dst).ok_or(CoreError::NoRoute)?;
    for pair in path.windows(2) {
        let (u, v) = (pair[0], pair[1]);
        let gi = (0..mat.node_degree())
            .find(|&g| mat.neighbor_id(u, g) == v)
            .ok_or(CoreError::NoRoute)?;
        hops.push(net.generators()[gi]);
    }
    Ok(())
}

/// Routes `from → to` on a super Cayley graph while avoiding `faults`.
///
/// Tries the paper's emulation route first; on the first faulted hop it
/// searches for a detour (alternative generator at the failure point with
/// the faulted one masked, replanned suffix preferred fault-free) and,
/// after `2 × degree` faulted-hop encounters — or when no verified-clean
/// detour exists and every local alternative is exhausted — falls back to
/// breadth-first search over the survivor graph, which succeeds whenever
/// the survivors still connect the endpoints.
///
/// When no detour fires (`detours == 0 && !fallback_used`) the path *is*
/// the emulation route, so its length obeys the paper's dilation bound.
///
/// # Errors
///
/// * [`CoreError::DegreeMismatch`] — label degrees do not match the
///   network;
/// * [`CoreError::NoRoute`] — an endpoint is failed, or the faults
///   disconnect `to` from `from` in the survivor graph.
pub fn scg_route_faulty(
    net: &SuperCayleyGraph,
    mat: &Materialized,
    from: &Perm,
    to: &Perm,
    faults: &FaultSet,
) -> Result<RoutedPath, CoreError> {
    let compiled = route_plan(net)?;
    scg_route_faulty_with(&compiled, net, mat, from, to, faults)
}

/// [`scg_route_faulty`] against an explicitly supplied compiled plan,
/// bypassing the process-wide plan cache.
///
/// This is the shard-aware entry point: a caller that owns a per-shard
/// [`TopologyCache`](crate::TopologyCache) (one per core, no global lock on
/// the hot path) resolves the plan through *its* cache and routes here, so
/// concurrent shards never contend on the global cache mutex. Results are
/// identical to [`scg_route_faulty`] for the same network.
///
/// # Errors
///
/// As [`scg_route_faulty`].
pub fn scg_route_faulty_with(
    plan: &RoutePlan,
    net: &SuperCayleyGraph,
    mat: &Materialized,
    from: &Perm,
    to: &Perm,
    faults: &FaultSet,
) -> Result<RoutedPath, CoreError> {
    let result = route_faulty_inner(plan, net, mat, from, to, faults);
    #[cfg(feature = "obs")]
    match &result {
        Ok(path) => crate::obs_hooks::route_faulty_done(
            &net.name(),
            path.len(),
            path.detours,
            path.fallback_used,
        ),
        Err(CoreError::NoRoute) => crate::obs_hooks::route_faulty_no_route(&net.name()),
        Err(_) => {}
    }
    result
}

/// Routes `src → dst` (materialized node ids) while avoiding `faults`,
/// returning the traversed node-id sequence inclusive of both endpoints —
/// the form embedding re-routers consume directly. A self-route yields the
/// single-node path `[src]`.
///
/// This is [`scg_route_faulty`] with the label translation folded in: it
/// reuses the same compiled plan cache, detour search, and survivor-BFS
/// fallback, then replays the generator hops through the transition tables.
///
/// # Errors
///
/// * [`CoreError::Perm`] — an id exceeds the materialized node count;
/// * [`CoreError::NoRoute`] — an endpoint is failed, or the faults
///   disconnect `dst` from `src` in the survivor graph.
pub fn scg_route_faulty_ids(
    net: &SuperCayleyGraph,
    mat: &Materialized,
    src: NodeId,
    dst: NodeId,
    faults: &FaultSet,
) -> Result<Vec<NodeId>, CoreError> {
    let from = mat.node_label(src)?;
    let to = mat.node_label(dst)?;
    let routed = scg_route_faulty(net, mat, &from, &to, faults)?;
    let mut path = Vec::with_capacity(routed.len() + 1);
    path.push(src);
    let mut cur = src;
    for &g in &routed.hops {
        cur = mat.neighbor_id(cur, gen_index(net, g)?);
        path.push(cur);
    }
    Ok(path)
}

/// Replans `from → to` into `buf` and mirrors the metric footprint of a
/// public [`scg_route`](crate::scg_route) call, so instrumented sweeps see
/// the same per-plan hop histograms they did when the faulty router
/// composed the public API.
fn replan_into(
    net: &SuperCayleyGraph,
    plan: &RoutePlan,
    from: &Perm,
    to: &Perm,
    buf: &mut RouteBuf,
) -> Result<(), CoreError> {
    plan.route_into(from, to, buf)?;
    #[cfg(feature = "obs")]
    crate::obs_hooks::route_planned(&net.name(), buf.len());
    #[cfg(not(feature = "obs"))]
    let _ = net; // scg-allow(SCG005): feature-gated parameter use; discards a reference, not a Result
    Ok(())
}

/// The uninstrumented routing core behind [`scg_route_faulty`].
fn route_faulty_inner(
    compiled: &RoutePlan,
    net: &SuperCayleyGraph,
    mat: &Materialized,
    from: &Perm,
    to: &Perm,
    faults: &FaultSet,
) -> Result<RoutedPath, CoreError> {
    let src = mat.node_id(from)?;
    let dst = mat.node_id(to)?;
    if faults.node_failed(src) || faults.node_failed(dst) {
        return Err(CoreError::NoRoute);
    }
    let degree = mat.node_degree();
    let detour_budget = 2 * degree;

    let mut hops = Vec::new();
    let mut detours = 0usize;
    let mut cur = src;
    let mut cur_label = *from;
    // The pending plan is a reusable buffer walked by cursor; detour
    // replans rewrite it in place, so the steady-state path allocates
    // nothing beyond the result vector.
    let mut pending = compiled.new_buf();
    let mut scratch = compiled.new_buf();
    replan_into(net, compiled, from, to, &mut pending)?;
    let mut pos = 0usize;

    while cur != dst {
        let Some(&g) = pending.hops().get(pos) else {
            // Plan exhausted short of the destination (cannot happen for a
            // correct emulation plan): let BFS finish the job.
            let mut path = RoutedPath {
                hops,
                detours,
                fallback_used: true,
            };
            survivor_fallback(net, mat, faults, cur, dst, &mut path.hops)?;
            return Ok(path);
        };
        pos += 1;
        let gi = gen_index(net, g)?;
        let v = mat.neighbor_id(cur, gi);
        if !faults.blocks(cur, v) {
            hops.push(g);
            cur = v;
            cur_label = g.apply(&cur_label)?;
            continue;
        }

        // Faulted hop. Out of budget → guaranteed fallback.
        if detours >= detour_budget {
            let mut path = RoutedPath {
                hops,
                detours,
                fallback_used: true,
            };
            survivor_fallback(net, mat, faults, cur, dst, &mut path.hops)?;
            return Ok(path);
        }
        detours += 1;

        // Detour search: alternative generators at the failure point with
        // the faulted one masked. Prefer one whose replanned suffix is
        // verified fault-free; otherwise take any live alternative and
        // keep walking (the budget caps repeated encounters).
        let mut clean: Option<usize> = None;
        let mut live: Option<usize> = None;
        for ai in 0..degree {
            if ai == gi {
                continue;
            }
            let w = mat.neighbor_id(cur, ai);
            if faults.blocks(cur, w) {
                continue;
            }
            if live.is_none() {
                live = Some(ai);
            }
            let w_label = net.generators()[ai].apply(&cur_label)?;
            replan_into(net, compiled, &w_label, to, &mut scratch)?;
            if plan_is_clean(net, mat, faults, w, scratch.hops())? {
                clean = Some(ai);
                break;
            }
        }
        let step = match (clean, live) {
            (Some(ai), _) => {
                // The verified-clean suffix is still in `scratch`.
                std::mem::swap(&mut pending, &mut scratch);
                pos = 0;
                Some(ai)
            }
            (None, Some(ai)) => {
                let alt = net.generators()[ai];
                replan_into(net, compiled, &alt.apply(&cur_label)?, to, &mut pending)?;
                pos = 0;
                Some(ai)
            }
            (None, None) => None,
        };
        match step {
            Some(ai) => {
                let alt = net.generators()[ai];
                hops.push(alt);
                cur = mat.neighbor_id(cur, ai);
                cur_label = alt.apply(&cur_label)?;
            }
            None => {
                // Every out-link of `cur` is dead; only BFS can tell us
                // whether the survivors still connect (they do not, from
                // here — the error is NoRoute).
                let mut path = RoutedPath {
                    hops,
                    detours,
                    fallback_used: true,
                };
                survivor_fallback(net, mat, faults, cur, dst, &mut path.hops)?;
                return Ok(path);
            }
        }
    }
    Ok(RoutedPath {
        hops,
        detours,
        fallback_used: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::apply_path;
    use crate::routing::{scg_route, star_distance_between, StarEmulation};
    use crate::topology::{materialize, SMALL_NET_CAP};
    use scg_perm::XorShift64;

    fn walk(mat: &Materialized, net: &SuperCayleyGraph, src: NodeId, hops: &[Generator]) -> NodeId {
        let mut cur = src;
        for &g in hops {
            let gi = gen_index(net, g).unwrap();
            cur = mat.neighbor_id(cur, gi);
        }
        cur
    }

    #[test]
    fn fault_free_routing_matches_emulation_route() {
        let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let mut rng = XorShift64::new(17);
        let faults = FaultSet::new();
        for _ in 0..20 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let routed = scg_route_faulty(&net, &mat, &from, &to, &faults).unwrap();
            assert_eq!(routed.hops, scg_route(&net, &from, &to).unwrap());
            assert_eq!(routed.detours, 0);
            assert!(!routed.fallback_used);
            assert_eq!(apply_path(&from, &routed.hops).unwrap(), to);
        }
    }

    #[test]
    fn routes_avoid_faults_and_arrive() {
        let net = SuperCayleyGraph::insertion_selection(5).unwrap();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let mut rng = XorShift64::new(23);
        let degree = mat.node_degree();
        for trial in 0..12 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let src = mat.node_id(&from).unwrap();
            let dst = mat.node_id(&to).unwrap();
            let mut seeded = XorShift64::new(1000 + trial);
            let faults =
                FaultSet::random_nodes(mat.num_nodes(), degree - 1, &[src, dst], &mut seeded);
            let routed = scg_route_faulty(&net, &mat, &from, &to, &faults).unwrap();
            // The walk reaches the destination without touching a fault.
            let mut cur = src;
            for &g in &routed.hops {
                let v = mat.neighbor_id(cur, gen_index(&net, g).unwrap());
                assert!(!faults.blocks(cur, v));
                cur = v;
            }
            assert_eq!(cur, dst);
            assert_eq!(apply_path(&from, &routed.hops).unwrap(), to);
        }
    }

    #[test]
    fn clean_routes_obey_the_dilation_bound() {
        let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let emu = StarEmulation::new(&net).unwrap();
        let mut rng = XorShift64::new(29);
        let faults = FaultSet::random_nodes(mat.num_nodes(), 1, &[], &mut rng);
        let mut clean_seen = 0;
        for _ in 0..40 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let (src, dst) = (mat.node_id(&from).unwrap(), mat.node_id(&to).unwrap());
            if faults.node_failed(src) || faults.node_failed(dst) {
                continue;
            }
            let routed = scg_route_faulty(&net, &mat, &from, &to, &faults).unwrap();
            if routed.detours == 0 && !routed.fallback_used {
                clean_seen += 1;
                assert!(
                    routed.len() as u32
                        <= emu.star_dilation() as u32 * star_distance_between(&from, &to)
                );
            }
        }
        assert!(clean_seen > 0, "some pairs must route clean past one fault");
    }

    #[test]
    fn id_route_matches_generator_walk() {
        let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let mut rng = XorShift64::new(41);
        let faults = FaultSet::random_nodes(mat.num_nodes(), 2, &[], &mut rng);
        for _ in 0..10 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let (src, dst) = (mat.node_id(&from).unwrap(), mat.node_id(&to).unwrap());
            if faults.node_failed(src) || faults.node_failed(dst) {
                continue;
            }
            let path = scg_route_faulty_ids(&net, &mat, src, dst, &faults).unwrap();
            assert_eq!(path[0], src);
            assert_eq!(*path.last().unwrap(), dst);
            // Every hop is a live materialized link.
            for w in path.windows(2) {
                assert!(!faults.blocks(w[0], w[1]));
                assert!(
                    (0..mat.node_degree()).any(|g| mat.neighbor_id(w[0], g) == w[1]),
                    "hop is not a host link"
                );
            }
        }
        // Self-route: the single-node path.
        let uid = mat.node_id(&Perm::identity(5)).unwrap();
        assert_eq!(
            scg_route_faulty_ids(&net, &mat, uid, uid, &FaultSet::new()).unwrap(),
            vec![uid]
        );
    }

    #[test]
    fn failed_endpoint_is_no_route() {
        let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let from = Perm::identity(5);
        let to = Perm::from_rank(5, 77).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_node(mat.node_id(&to).unwrap());
        assert!(matches!(
            scg_route_faulty(&net, &mat, &from, &to, &faults),
            Err(CoreError::NoRoute)
        ));
    }

    #[test]
    fn survivor_walk_agrees_with_label_walk() {
        // The id-space walk and the label-space walk are the same route.
        let net = SuperCayleyGraph::complete_rotation_star(2, 2).unwrap();
        let mat = materialize(&net, SMALL_NET_CAP).unwrap();
        let mut rng = XorShift64::new(31);
        let faults = FaultSet::random_nodes(mat.num_nodes(), 2, &[], &mut rng);
        for _ in 0..10 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let (src, dst) = (mat.node_id(&from).unwrap(), mat.node_id(&to).unwrap());
            if faults.node_failed(src) || faults.node_failed(dst) {
                continue;
            }
            let routed = scg_route_faulty(&net, &mat, &from, &to, &faults).unwrap();
            assert_eq!(walk(&mat, &net, src, &routed.hops), dst);
        }
    }
}
