//! Routing: optimal star-graph routing, emulation-based routing on super
//! Cayley graphs, and exact BFS routing for validation.

mod expand;
mod fault;
mod sort;
mod star_route;

pub use expand::{star_dimension_parts, StarEmulation};
pub use fault::{scg_route_faulty, RoutedPath};
pub use sort::{
    bubble_distance, bubble_sort_sequence, rotator_sort_sequence, tn_distance, tn_sort_sequence,
};
pub use star_route::{
    star_diameter, star_distance, star_distance_between, star_route, star_sort_sequence,
};

use std::collections::HashMap;

use scg_perm::Perm;

use crate::classes::SuperCayleyGraph;
use crate::error::CoreError;
use crate::generator::Generator;
use crate::network::CayleyNetwork;

/// Routes `from → to` on a super Cayley graph by emulating the optimal
/// star-graph route (each star link expands per Theorems 1–3).
///
/// The resulting path length is at most `star_dilation() ×
/// star_distance(from, to)`; it is not necessarily a shortest path in the
/// host, but it is within the constant factor the paper proves.
///
/// Works on all ten classes — the rotator-nucleus classes route via the
/// insertion-cycle realization of transpositions (`T_x = I_{x-1}^{x-2}∘I_x`),
/// an extension beyond the paper's stated theorems.
///
/// # Errors
///
/// * [`CoreError::DegreeMismatch`] — label degrees do not match the network.
pub fn scg_route(
    net: &SuperCayleyGraph,
    from: &Perm,
    to: &Perm,
) -> Result<Vec<Generator>, CoreError> {
    let k = net.degree_k();
    for p in [from, to] {
        if p.degree() != k {
            return Err(CoreError::DegreeMismatch {
                expected: k,
                found: p.degree(),
            });
        }
    }
    let emu = StarEmulation::new(net)?;
    let mut out = Vec::new();
    for g in star_route(from, to) {
        let Generator::Transposition { i } = g else {
            unreachable!("star routes consist of transpositions")
        };
        out.extend(emu.expand_star_link(i as usize)?);
    }
    #[cfg(feature = "obs")]
    crate::obs_hooks::route_planned(&net.name(), out.len());
    Ok(out)
}

/// Exact shortest-path routing by breadth-first search over labels.
///
/// Works on any network (including the directed rotator classes) but costs
/// up to `O(k! · degree)` time and memory; `cap` bounds the number of nodes
/// that may be expanded.
///
/// # Errors
///
/// * [`CoreError::DegreeMismatch`] — label degrees do not match the network;
/// * [`CoreError::TooLarge`] — more than `cap` nodes were expanded;
/// * [`CoreError::NoRoute`] — `to` is unreachable from `from` (possible only
///   in directed classes if the generator set does not generate `S_k`).
pub fn bfs_route(
    net: &impl CayleyNetwork,
    from: &Perm,
    to: &Perm,
    cap: u64,
) -> Result<Vec<Generator>, CoreError> {
    let k = net.degree_k();
    for p in [from, to] {
        if p.degree() != k {
            return Err(CoreError::DegreeMismatch {
                expected: k,
                found: p.degree(),
            });
        }
    }
    if from == to {
        return Ok(Vec::new());
    }
    let gens = net.generators();
    let mut prev: HashMap<Perm, (Perm, usize)> = HashMap::new();
    let mut frontier = vec![*from];
    let mut expanded = 0u64;
    prev.insert(*from, (*from, usize::MAX));
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for u in frontier {
            expanded += 1;
            if expanded > cap {
                return Err(CoreError::TooLarge {
                    num_nodes: expanded,
                    cap,
                });
            }
            for (gi, g) in gens.iter().enumerate() {
                let v = g.apply(&u)?;
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(v) {
                    e.insert((u, gi));
                    if v == *to {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = v;
                        while cur != *from {
                            let (p, gi) = prev[&cur];
                            path.push(gens[gi]);
                            cur = p;
                        }
                        path.reverse();
                        return Ok(path);
                    }
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    Err(CoreError::NoRoute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{apply_path, SuperCayleyGraph};
    use scg_perm::XorShift64;

    #[test]
    fn scg_route_reaches_destination() {
        let mut rng = XorShift64::new(7);
        let hosts = [
            SuperCayleyGraph::macro_star(3, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
            SuperCayleyGraph::rotation_star(3, 2).unwrap(),
            SuperCayleyGraph::insertion_selection(7).unwrap(),
            SuperCayleyGraph::macro_is(3, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
            SuperCayleyGraph::rotation_is(3, 2).unwrap(),
        ];
        for host in &hosts {
            for _ in 0..20 {
                let from = Perm::random(7, &mut rng);
                let to = Perm::random(7, &mut rng);
                let path = scg_route(host, &from, &to).unwrap();
                assert_eq!(apply_path(&from, &path).unwrap(), to, "{}", host.name());
                let emu = StarEmulation::new(host).unwrap();
                assert!(
                    path.len() as u32
                        <= emu.star_dilation() as u32 * star_distance_between(&from, &to)
                );
            }
        }
    }

    #[test]
    fn scg_route_path_uses_only_host_generators(/* links must exist */) {
        let host = SuperCayleyGraph::macro_is(2, 3).unwrap();
        let from = Perm::from_symbols(&[7, 6, 5, 4, 3, 2, 1]).unwrap();
        let to = Perm::identity(7);
        for g in scg_route(&host, &from, &to).unwrap() {
            assert!(
                host.generators().contains(&g),
                "{g} is not a generator of {}",
                host.name()
            );
        }
    }

    #[test]
    fn bfs_route_is_shortest_on_star() {
        let star = crate::classes::StarGraph::new(5).unwrap();
        let mut rng = XorShift64::new(11);
        for _ in 0..10 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let path = bfs_route(&star, &from, &to, 1_000_000).unwrap();
            assert_eq!(path.len() as u32, star_distance_between(&from, &to));
            assert_eq!(apply_path(&from, &path).unwrap(), to);
        }
    }

    #[test]
    fn routing_on_directed_rotator_classes() {
        let mr = SuperCayleyGraph::macro_rotator(2, 2).unwrap();
        let from = Perm::identity(5);
        let to = Perm::from_symbols(&[2, 3, 1, 4, 5]).unwrap();
        // Exact BFS and the insertion-cycle emulation both reach the target;
        // BFS is never longer.
        let bfs = bfs_route(&mr, &from, &to, 1_000_000).unwrap();
        assert_eq!(apply_path(&from, &bfs).unwrap(), to);
        let emu = scg_route(&mr, &from, &to).unwrap();
        assert_eq!(apply_path(&from, &emu).unwrap(), to);
        assert!(bfs.len() <= emu.len());
        for g in &emu {
            assert!(mr.generators().contains(g));
        }
    }

    #[test]
    fn bfs_route_cap_enforced() {
        let star = crate::classes::StarGraph::new(6).unwrap();
        let mut rng = XorShift64::new(3);
        let from = Perm::random(6, &mut rng);
        let mut to = Perm::random(6, &mut rng);
        while to == from {
            to = Perm::random(6, &mut rng);
        }
        assert!(matches!(
            bfs_route(&star, &from, &to, 1),
            Err(CoreError::TooLarge { .. }) | Ok(_)
        ));
    }

    #[test]
    fn emulated_routes_are_within_dilation_of_bfs() {
        // Sanity: emulation-based routing is never better than exact BFS and
        // never worse than dilation × star distance.
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let mut rng = XorShift64::new(5);
        for _ in 0..10 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let emu_len = scg_route(&host, &from, &to).unwrap().len();
            let bfs_len = bfs_route(&host, &from, &to, 1_000_000).unwrap().len();
            assert!(bfs_len <= emu_len);
        }
    }
}
