//! Routing: optimal star-graph routing, emulation-based routing on super
//! Cayley graphs, and exact BFS routing for validation.

mod expand;
mod fault;
mod plan;
mod sort;
mod star_route;

pub use expand::{star_dimension_parts, StarEmulation};
pub use fault::{scg_route_faulty, scg_route_faulty_ids, scg_route_faulty_with, RoutedPath};
pub use plan::{BatchState, RouteBuf, RoutePlan};
pub use sort::{
    bubble_distance, bubble_sort_sequence, rotator_sort_sequence, tn_distance, tn_sort_sequence,
};
pub use star_route::{
    star_diameter, star_distance, star_distance_between, star_route, star_sort_sequence,
};

use std::collections::HashMap;

use scg_perm::Perm;

use crate::classes::SuperCayleyGraph;
use crate::error::CoreError;
use crate::generator::Generator;
use crate::network::CayleyNetwork;
use crate::topology::route_plan;

/// Routes `from → to` on a super Cayley graph by emulating the optimal
/// star-graph route (each star link expands per Theorems 1–3).
///
/// The resulting path length is at most `star_dilation() ×
/// star_distance(from, to)`; it is not necessarily a shortest path in the
/// host, but it is within the constant factor the paper proves.
///
/// Works on all ten classes — the rotator-nucleus classes route via the
/// insertion-cycle realization of transpositions (`T_x = I_{x-1}^{x-2}∘I_x`),
/// an extension beyond the paper's stated theorems.
///
/// Link expansions come from the network's compiled [`RoutePlan`] (shared
/// through the process-wide cache, compiled on first use). Callers routing
/// many pairs should hold the plan and a [`RouteBuf`] directly — see
/// [`route_plan`](crate::route_plan) — or use [`route_batch`]; this
/// convenience wrapper allocates the returned vector.
///
/// # Errors
///
/// * [`CoreError::DegreeMismatch`] — label degrees do not match the network.
pub fn scg_route(
    net: &SuperCayleyGraph,
    from: &Perm,
    to: &Perm,
) -> Result<Vec<Generator>, CoreError> {
    let plan = route_plan(net)?;
    let mut buf = plan.new_buf();
    plan.route_into(from, to, &mut buf)?;
    #[cfg(feature = "obs")]
    crate::obs_hooks::route_planned(&net.name(), buf.len());
    Ok(buf.into_hops())
}

/// Minimum number of pairs a [`route_batch`] worker thread must have
/// before fanning out to it pays off.
///
/// A scoped-thread spawn plus join costs on the order of 50 µs; a routed
/// pair costs ~100–200 ns through the packed lanes, so a thread needs a
/// few thousand pairs before the spawn amortizes. Below this floor
/// `route_batch` shrinks the thread count (down to running entirely on
/// the caller's thread), which fixed the small-batch regression where
/// `batch_par` measured *slower* than `batch_seq` on 512-pair batches.
pub const MIN_PAIRS_PER_THREAD: usize = 2048;

/// Routes every `(from, to)` pair in parallel over `threads` scoped OS
/// threads, returning the paths in input order.
///
/// Each thread shares the network's compiled [`RoutePlan`] and drives its
/// chunk through [`RoutePlan::route_chunk`]: per-pair routing state is a
/// packed `u64` lane in a reused [`BatchState`] (structure-of-arrays, so
/// the pack pass vectorizes), and hop emission reuses one
/// [`RouteBuf`] — no per-pair planning or allocation beyond the returned
/// vectors. `threads` is clamped to `1..=pairs.len()`, and small batches
/// skip the fan-out entirely: spawning a scoped thread costs tens of
/// microseconds while a routed pair costs ~100–200 ns, so below
/// [`MIN_PAIRS_PER_THREAD`] pairs per thread the spawn overhead swamps
/// the win and the batch runs on fewer threads (down to the caller's
/// thread alone). Results are identical to routing each pair with
/// [`scg_route`], for every chunking and thread count.
///
/// # Errors
///
/// * [`CoreError::DegreeMismatch`] — any label's degree does not match the
///   network (the first failing pair in input order is reported).
pub fn route_batch(
    net: &SuperCayleyGraph,
    pairs: &[(Perm, Perm)],
    threads: usize,
) -> Result<Vec<Vec<Generator>>, CoreError> {
    let plan = route_plan(net)?;
    let mut out: Vec<Vec<Generator>> = vec![Vec::new(); pairs.len()];
    if pairs.is_empty() {
        return Ok(out);
    }
    // Adaptive small-batch threshold: never fan out to more threads than
    // the batch can amortize (see MIN_PAIRS_PER_THREAD).
    let threads = threads
        .clamp(1, pairs.len())
        .min((pairs.len() / MIN_PAIRS_PER_THREAD).max(1));
    let chunk = pairs.len().div_ceil(threads);
    let mut errors: Vec<Option<CoreError>> = vec![None; pairs.len().div_ceil(chunk)];
    std::thread::scope(|scope| {
        for ((pair_chunk, out_chunk), err_slot) in pairs
            .chunks(chunk)
            .zip(out.chunks_mut(chunk))
            .zip(errors.iter_mut())
        {
            let plan = &plan;
            scope.spawn(move || {
                let mut state = plan.new_batch_state();
                if let Err(e) = plan.route_chunk(pair_chunk, out_chunk, &mut state) {
                    *err_slot = Some(e);
                }
            });
        }
    });
    if let Some(e) = errors.into_iter().flatten().next() {
        return Err(e);
    }
    #[cfg(feature = "obs")]
    for path in &out {
        crate::obs_hooks::route_planned(&net.name(), path.len());
    }
    Ok(out)
}

/// Exact shortest-path routing by breadth-first search over labels.
///
/// Works on any network (including the directed rotator classes) but costs
/// up to `O(k! · degree)` time and memory; `cap` bounds the number of nodes
/// that may be expanded.
///
/// # Errors
///
/// * [`CoreError::DegreeMismatch`] — label degrees do not match the network;
/// * [`CoreError::TooLarge`] — more than `cap` nodes were expanded;
/// * [`CoreError::NoRoute`] — `to` is unreachable from `from` (possible only
///   in directed classes if the generator set does not generate `S_k`).
pub fn bfs_route(
    net: &impl CayleyNetwork,
    from: &Perm,
    to: &Perm,
    cap: u64,
) -> Result<Vec<Generator>, CoreError> {
    let k = net.degree_k();
    for p in [from, to] {
        if p.degree() != k {
            return Err(CoreError::DegreeMismatch {
                expected: k,
                found: p.degree(),
            });
        }
    }
    if from == to {
        return Ok(Vec::new());
    }
    let gens = net.generators();
    // Generator application is pure position rearrangement, so it is right
    // multiplication by the generator's image of the identity:
    // `g.apply(u) = u ∘ g.apply(id)`. Precomputing those images turns the
    // inner loop into `compose_into` on one scratch permutation — no
    // generator dispatch and no fresh Perm per edge visit.
    let id = Perm::identity(k);
    let gen_perms = gens
        .iter()
        .map(|g| g.apply(&id))
        .collect::<Result<Vec<Perm>, _>>()?;
    let mut scratch = id;
    let mut prev: HashMap<Perm, (Perm, usize)> = HashMap::new();
    let mut frontier = vec![*from];
    let mut expanded = 0u64;
    prev.insert(*from, (*from, usize::MAX));
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for u in frontier {
            expanded += 1;
            if expanded > cap {
                return Err(CoreError::TooLarge {
                    num_nodes: expanded,
                    cap,
                });
            }
            for (gi, gen_perm) in gen_perms.iter().enumerate() {
                u.compose_into(gen_perm, &mut scratch);
                let v = scratch;
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(v) {
                    e.insert((u, gi));
                    if v == *to {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = v;
                        while cur != *from {
                            let (p, gi) = prev[&cur];
                            path.push(gens[gi]);
                            cur = p;
                        }
                        path.reverse();
                        return Ok(path);
                    }
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    Err(CoreError::NoRoute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{apply_path, SuperCayleyGraph};
    use scg_perm::XorShift64;

    #[test]
    fn scg_route_reaches_destination() {
        let mut rng = XorShift64::new(7);
        let hosts = [
            SuperCayleyGraph::macro_star(3, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_star(3, 2).unwrap(),
            SuperCayleyGraph::rotation_star(3, 2).unwrap(),
            SuperCayleyGraph::insertion_selection(7).unwrap(),
            SuperCayleyGraph::macro_is(3, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_is(3, 2).unwrap(),
            SuperCayleyGraph::rotation_is(3, 2).unwrap(),
        ];
        for host in &hosts {
            for _ in 0..20 {
                let from = Perm::random(7, &mut rng);
                let to = Perm::random(7, &mut rng);
                let path = scg_route(host, &from, &to).unwrap();
                assert_eq!(apply_path(&from, &path).unwrap(), to, "{}", host.name());
                let emu = StarEmulation::new(host).unwrap();
                assert!(
                    path.len() as u32
                        <= emu.star_dilation() as u32 * star_distance_between(&from, &to)
                );
            }
        }
    }

    #[test]
    fn scg_route_path_uses_only_host_generators(/* links must exist */) {
        let host = SuperCayleyGraph::macro_is(2, 3).unwrap();
        let from = Perm::from_symbols(&[7, 6, 5, 4, 3, 2, 1]).unwrap();
        let to = Perm::identity(7);
        for g in scg_route(&host, &from, &to).unwrap() {
            assert!(
                host.generators().contains(&g),
                "{g} is not a generator of {}",
                host.name()
            );
        }
    }

    #[test]
    fn bfs_route_is_shortest_on_star() {
        let star = crate::classes::StarGraph::new(5).unwrap();
        let mut rng = XorShift64::new(11);
        for _ in 0..10 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let path = bfs_route(&star, &from, &to, 1_000_000).unwrap();
            assert_eq!(path.len() as u32, star_distance_between(&from, &to));
            assert_eq!(apply_path(&from, &path).unwrap(), to);
        }
    }

    #[test]
    fn routing_on_directed_rotator_classes() {
        let mr = SuperCayleyGraph::macro_rotator(2, 2).unwrap();
        let from = Perm::identity(5);
        let to = Perm::from_symbols(&[2, 3, 1, 4, 5]).unwrap();
        // Exact BFS and the insertion-cycle emulation both reach the target;
        // BFS is never longer.
        let bfs = bfs_route(&mr, &from, &to, 1_000_000).unwrap();
        assert_eq!(apply_path(&from, &bfs).unwrap(), to);
        let emu = scg_route(&mr, &from, &to).unwrap();
        assert_eq!(apply_path(&from, &emu).unwrap(), to);
        assert!(bfs.len() <= emu.len());
        for g in &emu {
            assert!(mr.generators().contains(g));
        }
    }

    #[test]
    fn bfs_route_cap_enforced() {
        let star = crate::classes::StarGraph::new(6).unwrap();
        let mut rng = XorShift64::new(3);
        let from = Perm::random(6, &mut rng);
        let mut to = Perm::random(6, &mut rng);
        while to == from {
            to = Perm::random(6, &mut rng);
        }
        assert!(matches!(
            bfs_route(&star, &from, &to, 1),
            Err(CoreError::TooLarge { .. }) | Ok(_)
        ));
    }

    #[test]
    fn emulated_routes_are_within_dilation_of_bfs() {
        // Sanity: emulation-based routing is never better than exact BFS and
        // never worse than dilation × star distance.
        let host = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let mut rng = XorShift64::new(5);
        for _ in 0..10 {
            let from = Perm::random(5, &mut rng);
            let to = Perm::random(5, &mut rng);
            let emu_len = scg_route(&host, &from, &to).unwrap().len();
            let bfs_len = bfs_route(&host, &from, &to, 1_000_000).unwrap().len();
            assert!(bfs_len <= emu_len);
        }
    }
}
