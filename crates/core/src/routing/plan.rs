//! The compiled route planner: per-network expansion arenas.
//!
//! [`StarEmulation`] proves the theorems but allocates a fresh cascade of
//! tiny `Vec<Generator>`s on every expansion — fine for validation, wrong
//! for the hot path. A [`RoutePlan`] runs that logic **once per network**:
//! at construction it expands every star link `T_2..T_k` (Theorems 1–3)
//! and every transposition-network link `T_{i,j}` (the six-case table of
//! Theorems 6–7) into a single flat `Generator` arena indexed by
//! per-link offsets. After that, a link expansion is a pure slice lookup
//! and a full route is the greedy star-sort loop writing
//! `extend_from_slice` into a caller-supplied reusable [`RouteBuf`] — zero
//! heap allocation on the steady-state path.
//!
//! Since the packed-kernel rewrite the star-sort itself runs on
//! [`PackedPerm`] words whenever `k ≤ 16` (every class the paper names):
//! the relative permutation is one `u64`, moves are nibble swaps, and
//! cycle openings are mask/ctz selection. Batches go through
//! [`RoutePlan::route_chunk`], which keeps per-pair state in parallel
//! `u64` lanes ([`BatchState`]) so the pack pass autovectorizes.
//!
//! Plans are cached per network inside the shared
//! [`TopologyCache`](crate::TopologyCache) (see [`route_plan`](crate::route_plan)),
//! so routing, communication, embedding, and emulation all compile each
//! network exactly once per process.
//!
//! # Examples
//!
//! ```
//! use scg_core::{apply_path, RoutePlan, SuperCayleyGraph};
//! use scg_perm::Perm;
//!
//! # fn main() -> Result<(), scg_core::CoreError> {
//! let ms = SuperCayleyGraph::macro_star(3, 2)?;
//! let plan = RoutePlan::build(&ms)?;
//! assert_eq!(plan.star_link(6)?.len(), 3); // Theorem 1, precompiled
//!
//! let mut buf = plan.new_buf();
//! let from: Perm = "7 6 5 4 3 2 1".parse()?;
//! let to = Perm::identity(7);
//! plan.route_into(&from, &to, &mut buf)?; // no heap allocation
//! assert_eq!(apply_path(&from, buf.hops())?, to);
//! # Ok(())
//! # }
//! ```

use scg_perm::cast::{len_u32, sym_u8};
use scg_perm::{PackedPerm, Perm, MAX_DEGREE, MAX_PACKED_DEGREE, PACKED_IDENTITY};

use crate::classes::SuperCayleyGraph;
use crate::error::CoreError;
use crate::generator::Generator;
use crate::network::CayleyNetwork;
use crate::routing::expand::StarEmulation;
use crate::routing::star_route::star_diameter;

/// A per-network compiled routing artifact: every Theorem 1–3 star-link
/// expansion and every Theorem 6–7 TN-link expansion, flattened into one
/// arena and served as slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    name: String,
    k: usize,
    dilation: usize,
    /// All expansions back to back: star links first (`T_2..T_k` in
    /// order), then TN links in pair-index order.
    arena: Vec<Generator>,
    /// `star_offsets[j-2]..star_offsets[j-1]` spans `T_j`; length `k`.
    star_offsets: Vec<u32>,
    /// `tn_offsets[p]..tn_offsets[p+1]` spans pair index `p` (see
    /// [`RoutePlan::tn_pair_index`]); length `k(k−1)/2 + 1`.
    tn_offsets: Vec<u32>,
}

impl RoutePlan {
    /// Compiles the plan for `net` by running the [`StarEmulation`]
    /// expansions once for every link.
    ///
    /// Cost is `O(k²)` expansions and is independent of the `k!` node
    /// count — building a plan never materializes the network.
    ///
    /// # Errors
    ///
    /// Infallible today (every link of every class expands); kept
    /// fallible for future host kinds.
    pub fn build(net: &SuperCayleyGraph) -> Result<Self, CoreError> {
        #[cfg(feature = "obs")]
        // scg-allow(SCG005): RAII scope timer; the binding keeps the guard alive
        let _timer = crate::obs_hooks::plan_build_timer(&net.name());
        let emu = StarEmulation::new(net)?;
        let k = net.degree_k();
        let mut arena = Vec::new();
        let mut star_offsets = Vec::with_capacity(k);
        star_offsets.push(0u32);
        for j in 2..=k {
            arena.extend(emu.expand_star_link(j)?);
            star_offsets.push(len_u32(arena.len()));
        }
        let mut tn_offsets = Vec::with_capacity(k * (k - 1) / 2 + 1);
        tn_offsets.push(len_u32(arena.len()));
        for i in 1..=k {
            for j in i + 1..=k {
                arena.extend(emu.expand_tn_link(i, j)?);
                tn_offsets.push(len_u32(arena.len()));
            }
        }
        arena.shrink_to_fit();
        Ok(RoutePlan {
            name: net.name(),
            k,
            dilation: emu.star_dilation(),
            arena,
            star_offsets,
            tn_offsets,
        })
    }

    /// The network name this plan was compiled for, e.g. `MS(3,2)`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The permutation degree `k`.
    #[must_use]
    pub fn degree_k(&self) -> usize {
        self.k
    }

    /// Worst-case star-link expansion length (the Theorem 1–3 dilation);
    /// same value as [`StarEmulation::star_dilation`].
    #[must_use]
    pub fn star_dilation(&self) -> usize {
        self.dilation
    }

    /// Total number of generators stored in the arena.
    #[must_use]
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// The precompiled expansion of the star link `T_j` — a slice into
    /// the arena, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `j` is outside `2..=k`.
    pub fn star_link(&self, j: usize) -> Result<&[Generator], CoreError> {
        if !(2..=self.k).contains(&j) {
            return Err(CoreError::InvalidParameters { l: self.k, n: j });
        }
        Ok(self.star_link_unchecked(j))
    }

    /// `star_link` without the range check; `j` must be in `2..=k`.
    #[inline]
    fn star_link_unchecked(&self, j: usize) -> &[Generator] {
        let lo = self.star_offsets[j - 2] as usize;
        let hi = self.star_offsets[j - 1] as usize;
        &self.arena[lo..hi]
    }

    /// The index of pair `(i, j)`, `1 ≤ i < j ≤ k`, in row-major upper
    /// triangle order: `(1,2), (1,3), …, (1,k), (2,3), …`.
    #[inline]
    fn tn_pair_index(&self, i: usize, j: usize) -> usize {
        (i - 1) * self.k - i * (i - 1) / 2 + (j - i - 1)
    }

    /// The precompiled expansion of the transposition-network link
    /// `T_{i,j}` — a slice into the arena, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `(i, j)` is not a
    /// valid position pair (`1 ≤ i < j ≤ k`).
    pub fn tn_link(&self, i: usize, j: usize) -> Result<&[Generator], CoreError> {
        if i >= j || i < 1 || j > self.k {
            return Err(CoreError::InvalidParameters { l: i, n: j });
        }
        let p = self.tn_pair_index(i, j);
        let lo = self.tn_offsets[p] as usize;
        let hi = self.tn_offsets[p + 1] as usize;
        Ok(&self.arena[lo..hi])
    }

    /// A [`RouteBuf`] pre-sized for this network's worst-case route
    /// (`star_dilation × star_diameter` hops), so even the first
    /// [`route_into`](RoutePlan::route_into) call performs no heap
    /// allocation.
    #[must_use]
    pub fn new_buf(&self) -> RouteBuf {
        RouteBuf::with_capacity(self.dilation * star_diameter(self.k) as usize)
    }

    /// Routes `from → to` by the greedy star-sort loop, appending each
    /// link's precompiled expansion to `buf`. The buffer is cleared
    /// first; on success it holds the full generator path.
    ///
    /// For `k ≤ 16` the loop runs on the bit-packed kernel — the relative
    /// permutation `to⁻¹ ∘ from` lives in one `u64`
    /// ([`PackedPerm`]), each move is a nibble swap, and cycle openings
    /// are mask/count-trailing-zeros selection instead of a positional
    /// scan. Larger degrees fall back to the byte-array walk; both paths
    /// emit byte-identical hop sequences.
    ///
    /// Allocation-free whenever `buf`'s capacity suffices — buffers from
    /// [`new_buf`](RoutePlan::new_buf) always do.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DegreeMismatch`] if either label's degree
    /// differs from the network's.
    pub fn route_into(&self, from: &Perm, to: &Perm, buf: &mut RouteBuf) -> Result<(), CoreError> {
        for p in [from, to] {
            if p.degree() != self.k {
                return Err(CoreError::DegreeMismatch {
                    expected: self.k,
                    found: p.degree(),
                });
            }
        }
        buf.hops.clear();
        if self.k <= MAX_PACKED_DEGREE {
            self.route_packed(self.pack_pair(from, to), buf);
        } else {
            self.route_scan(from, to, buf);
        }
        Ok(())
    }

    /// The relative permutation `to⁻¹ ∘ from` as a packed word — the
    /// whole per-pair routing state of the packed path. Degrees must
    /// already be validated equal and `≤ MAX_PACKED_DEGREE`.
    ///
    /// This fuses `pack(to).inverse().compose(pack(from))` into two
    /// `k`-iteration nibble passes (scatter `to⁻¹`, then gather through
    /// it) — the packed analogue of the byte-array `inv_to` build in
    /// [`route_scan`](RoutePlan::route_scan), and the reason the packed
    /// single-pair path beats the byte-array baseline even at `k = 5`.
    /// A debug assertion pins it to the composed kernel ops.
    #[inline]
    fn pack_pair(&self, from: &Perm, to: &Perm) -> u64 {
        let mut inv_to = 0u64;
        for (pos, &sym) in to.symbols().iter().enumerate() {
            inv_to |= (pos as u64) << (4 * (u64::from(sym) - 1));
        }
        // Identity padding on the lanes `k..16` keeps every packed op
        // degree-agnostic (`k = 16` fills the whole word).
        let mut w = if self.k == MAX_PACKED_DEGREE {
            0
        } else {
            PACKED_IDENTITY & !((1u64 << (4 * self.k)) - 1)
        };
        for (i, &sym) in from.symbols().iter().enumerate() {
            w |= ((inv_to >> (4 * (u64::from(sym) - 1))) & 0xF) << (4 * i);
        }
        debug_assert_eq!(
            Some(w),
            Self::pack_pair_reference(from, to),
            "fused relative word diverges from the PackedPerm kernel ops"
        );
        w
    }

    /// The unfused `pack_pair` — the kernel-op composition the fused
    /// version must match; referenced only by its debug assertion.
    fn pack_pair_reference(from: &Perm, to: &Perm) -> Option<u64> {
        let f = PackedPerm::pack(from).ok()?;
        let t = PackedPerm::pack(to).ok()?;
        Some(t.inverse().compose(f).word())
    }

    /// The greedy star-sort over one packed relative permutation `w`
    /// (`to⁻¹ ∘ from`, 0-based nibbles): emits the same expansion
    /// sequence as the byte-array walk, but each move is a branch-free
    /// nibble swap and the cycle-opening choice is
    /// `trailing_zeros` over a dirty-lane mask.
    ///
    /// `mask` carries one bit per dirty lane, at the lane's low bit
    /// (`4p` for position `p+1`), built by word-parallel nonzero-nibble
    /// detection — no per-position loop. A move swaps lane 0 with lane
    /// `i`; when the front symbol `s` was foreign (`s != 0`) the move
    /// homes it at lane `i = s`, so exactly that bit clears — sorted
    /// lanes never go dirty again, mirroring the monotone-cursor
    /// argument of the legacy scan.
    fn route_packed(&self, mut w: u64, buf: &mut RouteBuf) {
        /// The low bit of every 4-bit lane.
        const LANE_LSB: u64 = 0x1111_1111_1111_1111;
        let diff = w ^ PACKED_IDENTITY;
        // Fold each nibble's four bits onto its low bit, then drop lane 0
        // (the front is tracked by `s`, not the mask).
        let mut mask = (diff | (diff >> 1) | (diff >> 2) | (diff >> 3)) & LANE_LSB & !0xF;
        loop {
            let s = w & 0xF;
            let i = if s != 0 {
                s as usize
            } else if mask != 0 {
                (mask.trailing_zeros() / 4) as usize
            } else {
                return; // identity reached
            };
            buf.hops.extend_from_slice(self.star_link_unchecked(i + 1));
            let sh = 4 * i;
            let x = ((w >> sh) ^ w) & 0xF;
            w ^= (x << sh) | x;
            mask &= !(u64::from(s != 0) << sh);
        }
    }

    /// The pre-packed byte-array star-sort, kept as the `k > 16`
    /// fallback (no super Cayley class needs it below `k = 17`).
    fn route_scan(&self, from: &Perm, to: &Perm, buf: &mut RouteBuf) {
        let k = self.k;
        // The relative permutation `to⁻¹ ∘ from` fused into one pair of
        // passes over raw symbol bytes: a[i] = position of from's symbol
        // i+1 inside to.
        let mut inv_to = [0u8; MAX_DEGREE];
        for (pos, &sym) in to.symbols().iter().enumerate() {
            inv_to[sym as usize - 1] = sym_u8(pos + 1);
        }
        let mut a = [0u8; MAX_DEGREE];
        for (i, &sym) in from.symbols().iter().enumerate() {
            a[i] = inv_to[sym as usize - 1];
        }
        // The greedy cycle algorithm of star_sort_sequence over the raw
        // array. Each move swaps position 1 with an unsorted position and
        // sorts the latter, so once a position reads sorted it stays
        // sorted — the cycle-opening scan is a monotone cursor and the
        // whole loop does no permutation copies.
        let mut scan = 1usize;
        loop {
            let s = a[0];
            let i = if s != 1 {
                s as usize
            } else {
                while scan < k && a[scan] == sym_u8(scan + 1) {
                    scan += 1;
                }
                if scan == k {
                    return; // identity reached
                }
                scan + 1
            };
            buf.hops.extend_from_slice(self.star_link_unchecked(i));
            a.swap(0, i - 1);
        }
    }

    /// A reusable [`BatchState`] for [`route_chunk`](RoutePlan::route_chunk)
    /// with a pre-sized hop buffer (see [`new_buf`](RoutePlan::new_buf)).
    #[must_use]
    pub fn new_batch_state(&self) -> BatchState {
        BatchState {
            rel: Vec::new(),
            buf: self.new_buf(),
        }
    }

    /// Routes a chunk of pairs structure-of-arrays style: a first pass
    /// packs every pair's relative permutation `to⁻¹ ∘ from` into
    /// parallel `u64` lanes (`state.rel`), a second pass runs the packed
    /// star-sort on each lane and appends the hops to the matching `out`
    /// slot. Splitting pack from emit keeps the pack loop pure
    /// word arithmetic over adjacent lanes — the form that
    /// autovectorizes — and confines the hop copies to the emit pass.
    ///
    /// Above [`MAX_PACKED_DEGREE`] every pair takes the scan fallback of
    /// [`route_into`](RoutePlan::route_into). Results are identical to
    /// routing each pair individually, in input order.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` and `out` differ in length.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DegreeMismatch`] on the first pair (in input
    /// order) whose labels do not match the network degree; `out` slots
    /// already written keep their routes.
    pub fn route_chunk(
        &self,
        pairs: &[(Perm, Perm)],
        out: &mut [Vec<Generator>],
        state: &mut BatchState,
    ) -> Result<(), CoreError> {
        assert_eq!(pairs.len(), out.len(), "pairs/out length mismatch");
        if self.k > MAX_PACKED_DEGREE {
            for ((from, to), slot) in pairs.iter().zip(out.iter_mut()) {
                self.route_into(from, to, &mut state.buf)?;
                slot.extend_from_slice(state.buf.hops());
            }
            return Ok(());
        }
        state.rel.clear();
        state.rel.reserve(pairs.len());
        for (from, to) in pairs {
            for p in [from, to] {
                if p.degree() != self.k {
                    return Err(CoreError::DegreeMismatch {
                        expected: self.k,
                        found: p.degree(),
                    });
                }
            }
            state.rel.push(self.pack_pair(from, to));
        }
        for (&w, slot) in state.rel.iter().zip(out.iter_mut()) {
            state.buf.clear();
            self.route_packed(w, &mut state.buf);
            slot.extend_from_slice(state.buf.hops());
        }
        Ok(())
    }

    /// Convenience wrapper over [`route_into`](RoutePlan::route_into)
    /// that allocates a fresh result vector.
    ///
    /// # Errors
    ///
    /// As [`route_into`](RoutePlan::route_into).
    pub fn route(&self, from: &Perm, to: &Perm) -> Result<Vec<Generator>, CoreError> {
        let mut buf = self.new_buf();
        self.route_into(from, to, &mut buf)?;
        Ok(buf.into_hops())
    }
}

/// A reusable route buffer for [`RoutePlan::route_into`].
///
/// Clearing keeps the capacity, so a warmed buffer routes any number of
/// pairs without touching the allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteBuf {
    hops: Vec<Generator>,
}

impl RouteBuf {
    /// An empty buffer (first use may allocate; prefer
    /// [`RoutePlan::new_buf`] for a pre-sized one).
    #[must_use]
    pub fn new() -> Self {
        RouteBuf::default()
    }

    /// An empty buffer with room for `cap` hops.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        RouteBuf {
            hops: Vec::with_capacity(cap),
        }
    }

    /// The route written by the last
    /// [`route_into`](RoutePlan::route_into).
    #[must_use]
    pub fn hops(&self) -> &[Generator] {
        &self.hops
    }

    /// Number of hops held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the buffer holds no hops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Current capacity in hops.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.hops.capacity()
    }

    /// Drops the hops, keeping the capacity.
    pub fn clear(&mut self) {
        self.hops.clear();
    }

    /// Consumes the buffer, yielding the hop vector.
    #[must_use]
    pub fn into_hops(self) -> Vec<Generator> {
        self.hops
    }
}

/// Reusable structure-of-arrays state for
/// [`RoutePlan::route_chunk`]: the packed relative permutations of a
/// chunk live in parallel `u64` lanes, with one shared [`RouteBuf`] for
/// hop emission. Like a warmed `RouteBuf`, capacities survive reuse, so a
/// thread can process any number of chunks with at most one allocation
/// per high-water chunk size.
#[derive(Debug, Clone, Default)]
pub struct BatchState {
    /// One packed `to⁻¹ ∘ from` word per pair in the chunk.
    rel: Vec<u64>,
    /// Shared emission buffer.
    buf: RouteBuf,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::apply_path;
    use crate::routing::star_route::{star_distance_between, star_route};
    use scg_perm::XorShift64;

    fn all_classes_small() -> Vec<SuperCayleyGraph> {
        vec![
            SuperCayleyGraph::macro_star(2, 2).unwrap(),
            SuperCayleyGraph::rotation_star(2, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_star(2, 2).unwrap(),
            SuperCayleyGraph::macro_rotator(2, 2).unwrap(),
            SuperCayleyGraph::rotation_rotator(2, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_rotator(2, 2).unwrap(),
            SuperCayleyGraph::insertion_selection(5).unwrap(),
            SuperCayleyGraph::macro_is(2, 2).unwrap(),
            SuperCayleyGraph::rotation_is(2, 2).unwrap(),
            SuperCayleyGraph::complete_rotation_is(2, 2).unwrap(),
        ]
    }

    #[test]
    fn plan_lookups_match_fresh_expansion_all_classes() {
        for net in all_classes_small() {
            let plan = RoutePlan::build(&net).unwrap();
            let emu = StarEmulation::new(&net).unwrap();
            let k = net.degree_k();
            for j in 2..=k {
                assert_eq!(
                    plan.star_link(j).unwrap(),
                    emu.expand_star_link(j).unwrap().as_slice(),
                    "{} T_{j}",
                    net.name()
                );
            }
            for i in 1..=k {
                for j in i + 1..=k {
                    assert_eq!(
                        plan.tn_link(i, j).unwrap(),
                        emu.expand_tn_link(i, j).unwrap().as_slice(),
                        "{} T_{{{i},{j}}}",
                        net.name()
                    );
                }
            }
        }
    }

    #[test]
    fn route_into_matches_star_route_expansion() {
        let net = SuperCayleyGraph::macro_star(3, 2).unwrap();
        let plan = RoutePlan::build(&net).unwrap();
        let emu = StarEmulation::new(&net).unwrap();
        let mut rng = XorShift64::new(41);
        let mut buf = plan.new_buf();
        for _ in 0..25 {
            let from = Perm::random(7, &mut rng);
            let to = Perm::random(7, &mut rng);
            plan.route_into(&from, &to, &mut buf).unwrap();
            // Identical to the expansion of the optimal star route.
            let mut expect = Vec::new();
            for g in star_route(&from, &to) {
                let Generator::Transposition { i } = g else {
                    unreachable!()
                };
                expect.extend(emu.expand_star_link(i as usize).unwrap());
            }
            assert_eq!(buf.hops(), expect.as_slice());
            assert_eq!(apply_path(&from, buf.hops()).unwrap(), to);
            assert!(
                buf.len() as u32 <= plan.star_dilation() as u32 * star_distance_between(&from, &to)
            );
        }
    }

    #[test]
    fn buffer_capacity_survives_reuse() {
        let net = SuperCayleyGraph::macro_is(3, 2).unwrap();
        let plan = RoutePlan::build(&net).unwrap();
        let mut buf = plan.new_buf();
        let cap = buf.capacity();
        assert!(cap >= plan.star_dilation() * star_diameter(7) as usize);
        let mut rng = XorShift64::new(43);
        for _ in 0..50 {
            let from = Perm::random(7, &mut rng);
            let to = Perm::random(7, &mut rng);
            plan.route_into(&from, &to, &mut buf).unwrap();
            assert_eq!(buf.capacity(), cap, "route grew the warmed buffer");
        }
    }

    #[test]
    fn invalid_links_and_degrees_are_rejected() {
        let net = SuperCayleyGraph::macro_star(2, 2).unwrap();
        let plan = RoutePlan::build(&net).unwrap();
        assert!(plan.star_link(1).is_err());
        assert!(plan.star_link(6).is_err());
        assert!(plan.tn_link(3, 3).is_err());
        assert!(plan.tn_link(0, 2).is_err());
        assert!(plan.tn_link(2, 9).is_err());
        let mut buf = plan.new_buf();
        let bad = Perm::identity(4);
        assert!(matches!(
            plan.route_into(&bad, &Perm::identity(5), &mut buf),
            Err(CoreError::DegreeMismatch { .. })
        ));
    }

    #[test]
    fn self_route_is_empty() {
        let net = SuperCayleyGraph::insertion_selection(5).unwrap();
        let plan = RoutePlan::build(&net).unwrap();
        let mut buf = RouteBuf::new();
        let u = Perm::from_rank(5, 99).unwrap();
        plan.route_into(&u, &u, &mut buf).unwrap();
        assert!(buf.is_empty());
        assert_eq!(plan.route(&u, &u).unwrap(), Vec::new());
    }
}
