//! Integration tests for the serving stack: seeded wire-protocol round
//! trips over every frame type, adversarial framing (truncation,
//! oversize, garbage — typed errors, never panics), and a live daemon
//! driven over its loopback Unix-domain and TCP listeners.

use scg_core::{apply_path, scg_route, CayleyNetwork, ScgClass};
use scg_graph::ChaosEvent;
use scg_perm::{Perm, XorShift64};
use scg_serve::wire::{
    decode_reply, decode_request, encode_reply, encode_request, peek_frame, BatchItem, ErrCode,
    FrameStatus, FrameType, MAX_FRAME_LEN,
};
use scg_serve::{spawn, Client, Config, NetId, Reply, Request};

fn test_sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("scg-loopback-{tag}-{}.sock", std::process::id()))
}

fn ms22() -> NetId {
    NetId {
        class: ScgClass::MacroStar,
        levels: 2,
        box_size: 2,
    }
}

fn seeded_requests(seed: u64) -> Vec<Request> {
    let mut rng = XorShift64::new(seed);
    let net = ms22();
    let k = 5;
    let mut perm = |k: usize| Perm::random(k, &mut rng);
    vec![
        Request::Route {
            net,
            from: perm(k),
            to: perm(k),
        },
        Request::RouteBatch {
            net,
            pairs: (0..17).map(|_| (perm(k), perm(k))).collect(),
        },
        Request::FaultReport {
            net,
            events: vec![
                ChaosEvent::FailNode(7),
                ChaosEvent::RepairNode(7),
                ChaosEvent::FailLinkUndirected(1, 2),
                ChaosEvent::RepairLinkUndirected(1, 2),
            ],
        },
        Request::Metrics { json: false },
        Request::Metrics { json: true },
    ]
}

fn seeded_replies(seed: u64) -> Vec<Reply> {
    let mut rng = XorShift64::new(seed);
    let hops = scg_route(
        &ms22().to_net().expect("net"),
        &Perm::random(5, &mut rng),
        &Perm::identity(5),
    )
    .expect("route");
    vec![
        Reply::RouteOk {
            flags: 1,
            hops: hops.clone(),
        },
        Reply::RouteBatchOk(vec![
            BatchItem {
                status: 0,
                flags: 2,
                hops,
            },
            BatchItem {
                status: ErrCode::NoRoute as u16 as u8,
                flags: 0,
                hops: Vec::new(),
            },
        ]),
        Reply::FaultOk {
            applied: 3,
            epoch: 42,
        },
        Reply::MetricsOk("scg_serve_routes_total 9\n".to_string()),
        Reply::Error {
            code: ErrCode::Malformed,
            detail: "because".to_string(),
        },
    ]
}

/// Every request and reply frame type survives encode → frame → decode
/// byte-for-byte, across seeds.
#[test]
fn every_frame_type_round_trips_seeded() {
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED_0001, u64::MAX / 7] {
        for req in seeded_requests(seed) {
            let bytes = encode_request(&req);
            let FrameStatus::Frame {
                ver,
                ftype,
                start,
                end,
            } = peek_frame(&bytes)
            else {
                panic!("encoded request did not frame: {req:?}");
            };
            assert_eq!(end, bytes.len(), "trailing bytes after {req:?}");
            let back = decode_request(ver, ftype, &bytes[start..end]).expect("decodes");
            assert_eq!(back, req);
        }
        for reply in seeded_replies(seed) {
            let bytes = encode_reply(&reply);
            let FrameStatus::Frame {
                ver,
                ftype,
                start,
                end,
            } = peek_frame(&bytes)
            else {
                panic!("encoded reply did not frame: {reply:?}");
            };
            assert_eq!(end, bytes.len(), "trailing bytes after {reply:?}");
            let back = decode_reply(ver, ftype, &bytes[start..end]).expect("decodes");
            assert_eq!(back, reply);
        }
    }
}

/// Truncating a valid frame at every boundary either asks for more bytes
/// or decodes to a typed error — never a panic, never a bogus success.
#[test]
fn truncated_frames_are_typed_errors_or_incomplete() {
    for req in seeded_requests(0xACED) {
        let bytes = encode_request(&req);
        for cut in 0..bytes.len() {
            match peek_frame(&bytes[..cut]) {
                FrameStatus::NeedMore => {}
                FrameStatus::Frame { .. } => {
                    panic!("truncation to {cut} bytes framed anyway for {req:?}")
                }
                FrameStatus::BadLength(_) | FrameStatus::Http => {
                    panic!("truncation to {cut} bytes misclassified for {req:?}")
                }
            }
            // Feeding the truncated payload straight to the decoder (as
            // if the length prefix had lied) must stay total.
            if cut > 6 {
                let _ignored = decode_request(bytes[4], bytes[5], &bytes[6..cut]);
            }
        }
    }
}

/// Oversized and garbage length prefixes are rejected before any payload
/// is buffered; random byte soup never panics the decoders.
#[test]
fn oversized_and_garbage_frames_never_panic() {
    // Length prefix beyond the frame cap.
    let mut oversized = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    oversized.extend_from_slice(&[1, 1]);
    assert!(matches!(
        peek_frame(&oversized),
        FrameStatus::BadLength(l) if l == MAX_FRAME_LEN + 1
    ));
    // Length too short to hold even the version and type bytes.
    let mut runt = 1u32.to_le_bytes().to_vec();
    runt.extend_from_slice(&[1, 1]);
    assert!(matches!(peek_frame(&runt), FrameStatus::BadLength(1)));
    // Seeded byte soup through every decoder entry point.
    let mut rng = XorShift64::new(0xF00D);
    for _ in 0..2000 {
        let len = (rng.gen_range(64)) + 1;
        let soup: Vec<u8> = (0..len).map(|_| rng.gen_range(256) as u8).collect();
        match peek_frame(&soup) {
            FrameStatus::Frame {
                ver, ftype, start, ..
            } => {
                let _ignored = decode_request(ver, ftype, &soup[start..]);
                let _ignored = decode_reply(ver, ftype, &soup[start..]);
            }
            FrameStatus::NeedMore | FrameStatus::BadLength(_) | FrameStatus::Http => {}
        }
    }
    // Bad version and bad frame type come back as the right codes.
    let mut bad_ver = encode_request(&Request::Metrics { json: false });
    bad_ver[4] = 9;
    let FrameStatus::Frame {
        ver, ftype, start, ..
    } = peek_frame(&bad_ver)
    else {
        panic!("framed")
    };
    assert_eq!(
        decode_request(ver, ftype, &bad_ver[start..]),
        Err(ErrCode::BadVersion)
    );
    let mut bad_type = encode_request(&Request::Metrics { json: false });
    bad_type[5] = 0x77;
    let FrameStatus::Frame {
        ver, ftype, start, ..
    } = peek_frame(&bad_type)
    else {
        panic!("framed")
    };
    assert_eq!(
        decode_request(ver, ftype, &bad_type[start..]),
        Err(ErrCode::BadFrameType)
    );
}

/// One daemon, the whole protocol: route parity with the in-process
/// router, batches, live faults with detours and refusals, typed errors
/// on a surviving connection, metrics on both expositions, and a TCP
/// leg returning byte-identical routes to the UDS leg.
#[test]
fn daemon_serves_full_protocol_over_loopback() {
    let sock = test_sock("full");
    let server = spawn(Config {
        uds_path: sock.clone(),
        tcp: true,
        shards: 2,
    })
    .expect("spawn");
    let net_id = ms22();
    let net = net_id.to_net().expect("net");
    let k = net.degree_k();
    let mut rng = XorShift64::new(0xD157);
    let mut client = Client::connect_uds(&sock).expect("connect uds");

    // Single routes match the in-process router's delivery guarantee.
    for _ in 0..16 {
        let (from, to) = (Perm::random(k, &mut rng), Perm::random(k, &mut rng));
        let reply = client
            .request(&Request::Route {
                net: net_id,
                from,
                to,
            })
            .expect("route");
        let Reply::RouteOk { flags, hops } = reply else {
            panic!("expected RouteOk, got {reply:?}");
        };
        assert_eq!(flags, 0, "clean path must not set degraded flags");
        assert_eq!(apply_path(&from, &hops).expect("apply"), to);
        let direct = scg_route(&net, &from, &to).expect("scg_route");
        assert_eq!(hops, direct, "daemon route differs from scg_route");
    }

    // Batches deliver every pair; sustained traffic does not stall.
    for round in 0..50 {
        let pairs: Vec<(Perm, Perm)> = (0..64)
            .map(|_| (Perm::random(k, &mut rng), Perm::random(k, &mut rng)))
            .collect();
        let reply = client
            .request(&Request::RouteBatch {
                net: net_id,
                pairs: pairs.clone(),
            })
            .expect("batch");
        let Reply::RouteBatchOk(items) = reply else {
            panic!("round {round}: expected RouteBatchOk, got {reply:?}");
        };
        assert_eq!(items.len(), pairs.len());
        for (item, (from, to)) in items.iter().zip(&pairs) {
            assert_eq!(item.status, 0);
            assert_eq!(apply_path(from, &item.hops).expect("apply"), *to);
        }
    }

    // A typed error leaves the connection usable.
    let mut unknown = encode_request(&Request::Metrics { json: false });
    unknown[5] = 0x66;
    client.send_raw(&unknown).expect("send raw");
    match client.recv().expect("error reply") {
        Reply::Error { code, .. } => assert_eq!(code, ErrCode::BadFrameType),
        other => panic!("expected Error, got {other:?}"),
    }
    let text = client.metrics(false).expect("metrics after error");
    assert!(text.contains("scg_serve_errors_total{code=\"bad_frame_type\"} 1"));
    assert!(text.contains("scg_serve_slo_route_p99_target_micros 5000"));
    let json = client.metrics(true).expect("metrics json");
    let snap = scg_obs::Snapshot::from_json(&json).expect("snapshot parses");
    assert!(snap.quantile("scg_serve_route_micros", 500).is_some());

    // Live faults: killing a destination's node forces refusal; other
    // destinations keep routing (possibly detoured / via fallback).
    let victim = Perm::random(k, &mut rng);
    let mat = scg_core::materialize(&net, scg_core::SMALL_NET_CAP).expect("materialize");
    let victim_node = mat.node_id(&victim).expect("node id");
    match client
        .request(&Request::FaultReport {
            net: net_id,
            events: vec![ChaosEvent::FailNode(victim_node)],
        })
        .expect("fault report")
    {
        Reply::FaultOk { applied, epoch } => {
            assert_eq!(applied, 1);
            assert!(epoch > 0);
        }
        other => panic!("expected FaultOk, got {other:?}"),
    }
    let from = Perm::identity(k);
    match client
        .request(&Request::Route {
            net: net_id,
            from,
            to: victim,
        })
        .expect("route to victim")
    {
        Reply::Error { code, .. } => assert_eq!(code, ErrCode::NoRoute),
        other => panic!("expected NoRoute for a dead destination, got {other:?}"),
    }
    // Fault state is shared across shards: a second connection (pinned
    // round-robin to the other shard) sees the same refusal.
    let mut other_client = Client::connect_uds(&sock).expect("connect 2");
    match other_client
        .request(&Request::Route {
            net: net_id,
            from,
            to: victim,
        })
        .expect("route on other shard")
    {
        Reply::Error { code, .. } => assert_eq!(code, ErrCode::NoRoute),
        other => panic!("expected NoRoute on second shard, got {other:?}"),
    }
    // Non-victim destinations still deliver.
    let mut delivered = 0;
    for _ in 0..32 {
        let to = Perm::random(k, &mut rng);
        if to == victim {
            continue;
        }
        match client
            .request(&Request::Route {
                net: net_id,
                from,
                to,
            })
            .expect("degraded route")
        {
            Reply::RouteOk { hops, .. } => {
                assert_eq!(apply_path(&from, &hops).expect("apply"), to);
                delivered += 1;
            }
            Reply::Error { code, .. } => assert_eq!(code, ErrCode::NoRoute),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(delivered >= 24, "only {delivered}/32 delivered degraded");

    // Repair restores the clean path on both shards.
    client
        .request(&Request::FaultReport {
            net: net_id,
            events: vec![ChaosEvent::RepairNode(victim_node)],
        })
        .expect("repair");
    for c in [&mut client, &mut other_client] {
        match c
            .request(&Request::Route {
                net: net_id,
                from,
                to: victim,
            })
            .expect("post-repair route")
        {
            Reply::RouteOk { hops, .. } => {
                assert_eq!(apply_path(&from, &hops).expect("apply"), victim);
            }
            other => panic!("expected RouteOk after repair, got {other:?}"),
        }
    }

    // TCP returns byte-identical route replies to UDS.
    let addr = server.tcp_addr().expect("tcp enabled");
    let mut tcp = Client::connect_tcp(addr).expect("connect tcp");
    let (from, to) = (Perm::random(k, &mut rng), Perm::random(k, &mut rng));
    let req = Request::Route {
        net: net_id,
        from,
        to,
    };
    let via_uds = client.request(&req).expect("uds");
    let via_tcp = tcp.request(&req).expect("tcp");
    assert_eq!(
        encode_reply(&via_uds),
        encode_reply(&via_tcp),
        "UDS and TCP replies differ"
    );

    server.shutdown();
    assert!(!sock.exists(), "socket not unlinked on shutdown");
}

/// A batch mixing degrees is refused as one typed frame error, and an
/// empty-batch encoding attempt is rejected by the decoder.
#[test]
fn degree_mismatch_batches_get_one_typed_error() {
    let sock = test_sock("mismatch");
    let server = spawn(Config {
        uds_path: sock.clone(),
        tcp: false,
        shards: 1,
    })
    .expect("spawn");
    let mut client = Client::connect_uds(&sock).expect("connect");
    // MS(2,2) has degree k = 5; send k = 7 labels.
    let reply = client
        .request(&Request::RouteBatch {
            net: ms22(),
            pairs: vec![(Perm::identity(7), Perm::identity(7))],
        })
        .expect("send");
    match reply {
        Reply::Error { code, .. } => assert_eq!(code, ErrCode::DegreeMismatch),
        other => panic!("expected DegreeMismatch, got {other:?}"),
    }
    // The connection survives the refusal.
    assert!(client
        .metrics(false)
        .expect("metrics")
        .contains("scg_serve"));
    server.shutdown();
}

/// `FrameType::from_u8` and `ErrCode::from_u16` agree with the frame
/// constants used on the wire.
#[test]
fn frame_type_and_err_code_tables_are_stable() {
    for (b, t) in [
        (0x01, FrameType::Route),
        (0x02, FrameType::RouteBatch),
        (0x03, FrameType::FaultReport),
        (0x04, FrameType::Metrics),
        (0x81, FrameType::RouteOk),
        (0x82, FrameType::RouteBatchOk),
        (0x83, FrameType::FaultOk),
        (0x84, FrameType::MetricsOk),
        (0xFF, FrameType::Error),
    ] {
        assert_eq!(FrameType::from_u8(b), Some(t));
    }
    assert_eq!(FrameType::from_u8(0x05), None);
    for code in [
        ErrCode::BadVersion,
        ErrCode::BadFrameType,
        ErrCode::Malformed,
        ErrCode::FrameTooLarge,
        ErrCode::BadNetwork,
        ErrCode::DegreeMismatch,
        ErrCode::NoRoute,
        ErrCode::TooLarge,
        ErrCode::BadCount,
    ] {
        assert_eq!(ErrCode::from_u16(code as u16), Some(code));
        assert!(!code.as_str().is_empty());
    }
}
