//! Per-shard request handling: one [`ShardCore`] per event-loop thread,
//! owning a shard-local [`TopologyCache`] and per-network fault state.
//!
//! Connections are pinned to shards, so the hot path — decode, plan
//! lookup, packed batch routing, streaming reply encode — touches no
//! lock any other core is using. Vertex-transitivity makes this sharding
//! free: routing needs no shared per-source state, so shards never
//! coordinate except on *fault* events, which are rare and flow through
//! the append-only [`FaultJournal`] (an atomic length check per loop
//! iteration; the mutex is locked only when the journal actually grew).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use scg_core::{
    scg_route_faulty_with, CoreError, Generator, Materialized, SuperCayleyGraph, TopologyCache,
    DEFAULT_NET_CAP,
};
use scg_graph::{ChaosEvent, FaultSet};
use scg_perm::Perm;

use crate::metrics::ServeMetrics;
use crate::wire::{
    begin_frame, decode_request, encode_error_into, end_frame, ErrCode, FrameType, NetId, Request,
    FLAG_DETOURED, FLAG_FALLBACK,
};

/// The cross-shard fault log: every `FAULT_REPORT` is appended here so
/// shards that serve *other* connections of the same network converge on
/// the same fault view.
///
/// The hot path never locks this: each shard compares its private cursor
/// against the atomic length once per loop iteration and takes the mutex
/// only on growth (fault events are many orders of magnitude rarer than
/// route requests).
#[derive(Debug, Default)]
pub struct FaultJournal {
    len: AtomicUsize,
    events: Mutex<Vec<(NetId, ChaosEvent)>>,
}

impl FaultJournal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> FaultJournal {
        FaultJournal::default()
    }

    /// The current length — a relaxed load, the cheap "anything new?"
    /// check.
    #[must_use]
    pub fn len(&self) -> usize {
        // A reader observing it stale catches up one loop iteration
        // later; the mutex inside drain_since/append_and_drain orders
        // the event data itself.
        // ord: Relaxed — monotonic watermark only.
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no events were ever reported.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events `seen..` (the tail this reader has not applied yet), plus
    /// the new cursor.
    ///
    /// # Panics
    ///
    /// Panics if the journal mutex was poisoned by a panicking reporter.
    #[must_use]
    pub fn drain_since(&self, seen: usize) -> (Vec<(NetId, ChaosEvent)>, usize) {
        let events = self.events.lock().expect("fault journal lock"); // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        (events.get(seen..).unwrap_or(&[]).to_vec(), events.len())
    }

    /// Atomically catches up (returns the foreign tail `seen..`) and
    /// appends this shard's own `new` events, so the caller misses no
    /// interleaved foreign event and never re-applies its own.
    ///
    /// # Panics
    ///
    /// Panics if the journal mutex was poisoned by a panicking reporter.
    #[must_use]
    pub fn append_and_drain(
        &self,
        seen: usize,
        net: NetId,
        new: &[ChaosEvent],
    ) -> (Vec<(NetId, ChaosEvent)>, usize) {
        let mut events = self.events.lock().expect("fault journal lock"); // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        let foreign = events.get(seen..).unwrap_or(&[]).to_vec();
        events.extend(new.iter().map(|&ev| (net, ev)));
        let len = events.len();
        // Publication of the data itself is ordered by the mutex.
        // ord: Relaxed — the atomic is only the lock-free growth hint.
        self.len.store(len, Ordering::Relaxed);
        (foreign, len)
    }
}

/// Everything a shard knows about one network.
#[derive(Debug)]
struct NetState {
    net: SuperCayleyGraph,
    plan: Arc<scg_core::RoutePlan>,
    /// Materialized lazily: node ids are only needed once faults exist
    /// (detour search and survivor BFS).
    mat: Option<Materialized>,
    faults: FaultSet,
    /// Reusable per-pair hop buffers for batch routing (capacity
    /// persists across frames).
    batch_out: Vec<Vec<Generator>>,
}

/// What handling one frame asks of the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameEffects {
    /// The frame appended fault events to the journal: poke the other
    /// shards' wake pipes so they converge without waiting for traffic.
    pub journal_grew: bool,
}

/// One shard's request-handling state (no I/O — the server's event loop
/// feeds it complete frames and owns the sockets).
#[derive(Debug)]
pub struct ShardCore {
    cache: TopologyCache,
    nets: HashMap<NetId, NetState>,
    metrics: Arc<ServeMetrics>,
    journal: Arc<FaultJournal>,
    seen: usize,
}

impl ShardCore {
    /// A fresh shard over its own empty topology cache.
    #[must_use]
    pub fn new(metrics: Arc<ServeMetrics>, journal: Arc<FaultJournal>) -> ShardCore {
        ShardCore {
            cache: TopologyCache::new(),
            nets: HashMap::new(),
            metrics,
            journal,
            seen: 0,
        }
    }

    /// Applies any journal events this shard has not seen yet. Cheap when
    /// idle (one relaxed load); called once per event-loop iteration.
    pub fn sync_faults(&mut self) {
        if self.journal.len() <= self.seen {
            return;
        }
        let (tail, len) = self.journal.drain_since(self.seen);
        self.seen = len;
        for (net_id, ev) in tail {
            if let Some(state) = self.nets.get_mut(&net_id) {
                ev.apply(&mut state.faults);
            }
            // Unknown networks need nothing now — resolve_in replays the
            // full journal when the network is first seen.
        }
    }

    /// Handles one well-framed request (header already validated by
    /// [`crate::wire::peek_frame`]), appending reply frames to `out`.
    pub fn handle_frame(
        &mut self,
        ver: u8,
        ftype: u8,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> FrameEffects {
        let started = Instant::now();
        let req = match decode_request(ver, ftype, payload) {
            Ok(req) => req,
            Err(code) => {
                self.metrics.inc_error(code);
                encode_error_into(out, code, "request did not decode");
                return FrameEffects::default();
            }
        };
        match req {
            Request::Route { net, from, to } => {
                self.metrics.req_route.inc();
                #[cfg(feature = "obs")]
                mirror_request("route");
                self.handle_route(net, &from, &to, out);
                self.metrics.route_micros.observe(elapsed_micros(&started));
                FrameEffects::default()
            }
            Request::RouteBatch { net, pairs } => {
                self.metrics.req_batch.inc();
                #[cfg(feature = "obs")]
                mirror_request("route_batch");
                self.handle_batch(net, &pairs, out);
                self.metrics.batch_micros.observe(elapsed_micros(&started));
                FrameEffects::default()
            }
            Request::FaultReport { net, events } => {
                self.metrics.req_fault.inc();
                #[cfg(feature = "obs")]
                mirror_request("fault_report");
                self.handle_fault_report(net, &events, out)
            }
            Request::Metrics { json } => {
                self.metrics.req_metrics.inc();
                #[cfg(feature = "obs")]
                mirror_request("metrics");
                let snap = self.metrics.snapshot();
                let body = if json { snap.to_json() } else { snap.to_text() };
                let at = begin_frame(out, FrameType::MetricsOk);
                out.extend_from_slice(body.as_bytes());
                end_frame(out, at);
                FrameEffects::default()
            }
        }
    }

    fn handle_route(&mut self, net_id: NetId, from: &Perm, to: &Perm, out: &mut Vec<u8>) {
        match self.route_one(net_id, from, to) {
            Ok((flags, hops)) => {
                self.metrics.routes.inc();
                self.metrics.hops.observe(hops.len() as u64);
                if flags & FLAG_DETOURED != 0 {
                    self.metrics.detoured.inc();
                }
                if flags & FLAG_FALLBACK != 0 {
                    self.metrics.fallback.inc();
                }
                let at = begin_frame(out, FrameType::RouteOk);
                out.push(flags);
                out.extend_from_slice(&(hops.len() as u16).to_le_bytes());
                for &g in &hops {
                    push_generator(out, g);
                }
                end_frame(out, at);
            }
            Err(code) => {
                if code == ErrCode::NoRoute {
                    self.metrics.refused.inc();
                }
                self.metrics.inc_error(code);
                encode_error_into(out, code, "");
            }
        }
    }

    /// Routes one pair, degraded-aware. Returns `(flags, hops)`.
    fn route_one(
        &mut self,
        net_id: NetId,
        from: &Perm,
        to: &Perm,
    ) -> Result<(u8, Vec<Generator>), ErrCode> {
        let state = resolve_in(&mut self.nets, &self.cache, &self.journal, net_id)?;
        if state.faults.is_empty() {
            let mut buf = state.plan.new_buf();
            state
                .plan
                .route_into(from, to, &mut buf)
                .map_err(map_core_err)?;
            return Ok((0, buf.into_hops()));
        }
        let mat = ensure_mat(state, &self.cache)?;
        let routed = scg_route_faulty_with(&state.plan, &state.net, &mat, from, to, &state.faults)
            .map_err(map_core_err)?;
        let mut flags = 0u8;
        if routed.detours > 0 {
            flags |= FLAG_DETOURED;
        }
        if routed.fallback_used {
            flags |= FLAG_FALLBACK;
        }
        Ok((flags, routed.hops))
    }

    fn handle_batch(&mut self, net_id: NetId, pairs: &[(Perm, Perm)], out: &mut Vec<u8>) {
        self.metrics.batch_pairs.observe(pairs.len() as u64);
        let state = match resolve_in(&mut self.nets, &self.cache, &self.journal, net_id) {
            Ok(state) => state,
            Err(code) => {
                self.metrics.inc_error(code);
                encode_error_into(out, code, "");
                return;
            }
        };
        // The wire format guarantees uniform degree within a batch; a
        // degree mismatch against the network fails the whole frame.
        if pairs
            .first()
            .is_some_and(|(f, _)| f.degree() != state.plan.degree_k())
        {
            self.metrics.inc_error(ErrCode::DegreeMismatch);
            encode_error_into(
                out,
                ErrCode::DegreeMismatch,
                "batch degree != network degree",
            );
            return;
        }
        let at = begin_frame(out, FrameType::RouteBatchOk);
        out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        if state.faults.is_empty() {
            // Hot path: the packed SoA lanes of route_chunk, one pass over
            // the whole frame, reusing the shard's hop buffers.
            if state.batch_out.len() < pairs.len() {
                state.batch_out.resize(pairs.len(), Vec::new());
            }
            for slot in &mut state.batch_out[..pairs.len()] {
                slot.clear();
            }
            let mut bstate = state.plan.new_batch_state();
            match state
                .plan
                .route_chunk(pairs, &mut state.batch_out[..pairs.len()], &mut bstate)
            {
                Ok(()) => {
                    for hops in &state.batch_out[..pairs.len()] {
                        self.metrics.routes.inc();
                        self.metrics.hops.observe(hops.len() as u64);
                        out.push(0); // status: ok
                        out.push(0); // flags: clean path
                        out.extend_from_slice(&(hops.len() as u16).to_le_bytes());
                        for &g in hops {
                            push_generator(out, g);
                        }
                    }
                }
                Err(e) => {
                    // Uniform-degree frames make per-pair failure
                    // impossible here; fail the frame with the typed code
                    // instead of a half-written reply.
                    out.truncate(at);
                    let code = map_core_err(e);
                    self.metrics.inc_error(code);
                    encode_error_into(out, code, "batch routing failed");
                    return;
                }
            }
        } else {
            // Degraded: pair-by-pair fault-aware routing with per-item
            // statuses (refusals do not fail the frame).
            let mat = match ensure_mat(state, &self.cache) {
                Ok(mat) => mat,
                Err(code) => {
                    out.truncate(at);
                    self.metrics.inc_error(code);
                    encode_error_into(out, code, "cannot materialize for degraded routing");
                    return;
                }
            };
            for (from, to) in pairs {
                match scg_route_faulty_with(&state.plan, &state.net, &mat, from, to, &state.faults)
                {
                    Ok(routed) => {
                        self.metrics.routes.inc();
                        self.metrics.hops.observe(routed.hops.len() as u64);
                        let mut flags = 0u8;
                        if routed.detours > 0 {
                            flags |= FLAG_DETOURED;
                            self.metrics.detoured.inc();
                        }
                        if routed.fallback_used {
                            flags |= FLAG_FALLBACK;
                            self.metrics.fallback.inc();
                        }
                        out.push(0);
                        out.push(flags);
                        out.extend_from_slice(&(routed.hops.len() as u16).to_le_bytes());
                        for &g in &routed.hops {
                            push_generator(out, g);
                        }
                    }
                    Err(e) => {
                        let code = map_core_err(e);
                        if code == ErrCode::NoRoute {
                            self.metrics.refused.inc();
                        }
                        out.push(code as u8);
                    }
                }
            }
        }
        end_frame(out, at);
    }

    fn handle_fault_report(
        &mut self,
        net_id: NetId,
        events: &[ChaosEvent],
        out: &mut Vec<u8>,
    ) -> FrameEffects {
        let state = match resolve_in(&mut self.nets, &self.cache, &self.journal, net_id) {
            Ok(state) => state,
            Err(code) => {
                self.metrics.inc_error(code);
                encode_error_into(out, code, "");
                return FrameEffects::default();
            }
        };
        // Materialize eagerly: degraded routing needs node ids, and
        // failing *here* gives the reporter a typed TooLarge instead of
        // failing every subsequent route.
        if let Err(code) = ensure_mat(state, &self.cache) {
            self.metrics.inc_error(code);
            encode_error_into(out, code, "network too large for fault-aware routing");
            return FrameEffects::default();
        }
        // Catch up on foreign events and publish ours under one lock so
        // no interleaving is lost, then apply both locally.
        let (foreign, len) = self.journal.append_and_drain(self.seen, net_id, events);
        self.seen = len;
        for (fid, ev) in foreign {
            if let Some(fstate) = self.nets.get_mut(&fid) {
                ev.apply(&mut fstate.faults);
            }
        }
        let state = self
            .nets
            .get_mut(&net_id)
            // scg-allow(SCG001): resolve_in above inserted the entry; absence is unreachable
            .expect("net state resolved above");
        let mut applied = 0u32;
        for ev in events {
            if ev.apply(&mut state.faults) {
                applied += 1;
            }
        }
        self.metrics.fault_events.add(u64::from(applied));
        let at = begin_frame(out, FrameType::FaultOk);
        out.extend_from_slice(&applied.to_le_bytes());
        out.extend_from_slice(&state.faults.epoch().to_le_bytes());
        end_frame(out, at);
        FrameEffects {
            journal_grew: !events.is_empty(),
        }
    }
}

fn elapsed_micros(started: &Instant) -> u64 {
    // A histogram sample: saturate rather than fail on a clock anomaly.
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Network-state lookup/insert over split borrows (callers hold
/// `&cache`/`&journal` and `&mut nets` simultaneously, which a `&mut
/// self` method could not express).
fn resolve_in<'a>(
    nets: &'a mut HashMap<NetId, NetState>,
    cache: &TopologyCache,
    journal: &FaultJournal,
    id: NetId,
) -> Result<&'a mut NetState, ErrCode> {
    match nets.entry(id) {
        Entry::Occupied(e) => Ok(e.into_mut()),
        Entry::Vacant(e) => {
            let net = id.to_net()?;
            let plan = cache.route_plan(&net).map_err(|_| ErrCode::BadNetwork)?;
            let mut faults = FaultSet::new();
            // Catch up on every fault this network accumulated before this
            // shard first saw it (reports may have landed on other shards).
            let (all, _len) = journal.drain_since(0);
            for (net_id, ev) in all {
                if net_id == id {
                    ev.apply(&mut faults);
                }
            }
            Ok(e.insert(NetState {
                net,
                plan,
                mat: None,
                faults,
                batch_out: Vec::new(),
            }))
        }
    }
}

/// Materializes the network through the shard's cache on first need.
/// `Materialized` is clone-cheap (shared `Arc` internals).
fn ensure_mat(state: &mut NetState, cache: &TopologyCache) -> Result<Materialized, ErrCode> {
    if state.mat.is_none() {
        let mat = cache
            .materialize(&state.net, DEFAULT_NET_CAP)
            .map_err(map_core_err)?;
        state.mat = Some(mat);
    }
    // scg-allow(SCG001): set just above; absence is unreachable
    Ok(state.mat.clone().expect("materialized just above"))
}

fn map_core_err(e: CoreError) -> ErrCode {
    match e {
        CoreError::DegreeMismatch { .. } => ErrCode::DegreeMismatch,
        CoreError::NoRoute => ErrCode::NoRoute,
        CoreError::TooLarge { .. } => ErrCode::TooLarge,
        _ => ErrCode::BadNetwork,
    }
}

/// The server-side streaming twin of the wire module's generator codec
/// (encodes straight into the connection's reply buffer without building
/// a [`crate::wire::Reply`]).
fn push_generator(out: &mut Vec<u8>, g: Generator) {
    let (tag, a, b) = match g {
        Generator::Transposition { i } => (0, i, 0),
        Generator::Exchange { i, j } => (1, i, j),
        Generator::Insertion { i } => (2, i, 0),
        Generator::Selection { i } => (3, i, 0),
        Generator::Swap { n, i } => (4, n, i),
        Generator::Rotation { n, i } => (5, n, i),
    };
    out.extend_from_slice(&[tag, a, b]);
}

#[cfg(feature = "obs")]
fn mirror_request(kind: &'static str) {
    scg_obs::Registry::global()
        .counter("scg_serve_requests_total", &[("kind", kind)])
        .inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_request, peek_frame, FrameStatus, Reply, WIRE_VERSION};
    use scg_core::{apply_path, CayleyNetwork, ScgClass};

    fn ms22() -> NetId {
        NetId {
            class: ScgClass::MacroStar,
            levels: 2,
            box_size: 2,
        }
    }

    fn shard() -> ShardCore {
        ShardCore::new(Arc::new(ServeMetrics::new()), Arc::new(FaultJournal::new()))
    }

    /// Feeds one encoded request frame through `handle_frame` and decodes
    /// the single reply frame it produces.
    fn exchange(core: &mut ShardCore, req: &Request) -> Reply {
        let frame = encode_request(req);
        let mut out = Vec::new();
        match peek_frame(&frame) {
            FrameStatus::Frame {
                ver,
                ftype,
                start,
                end,
            } => {
                let _fx = core.handle_frame(ver, ftype, &frame[start..end], &mut out);
            }
            other => panic!("request did not frame: {other:?}"),
        }
        match peek_frame(&out) {
            FrameStatus::Frame {
                ver,
                ftype,
                start,
                end,
            } => {
                let reply =
                    crate::wire::decode_reply(ver, ftype, &out[start..end]).expect("reply decodes");
                assert_eq!(end, out.len(), "exactly one reply frame");
                reply
            }
            other => panic!("reply did not frame: {other:?}"),
        }
    }

    #[test]
    fn journal_append_and_drain_interleaves() {
        let j = FaultJournal::new();
        assert!(j.is_empty());
        let ev = ChaosEvent::from_wire(0, 3, 0).expect("fail-node event");
        // Shard A publishes two events.
        let (foreign, cur_a) = j.append_and_drain(0, ms22(), &[ev, ev]);
        assert!(foreign.is_empty());
        assert_eq!(cur_a, 2);
        assert_eq!(j.len(), 2);
        // Shard B appends one and picks up A's two in the same lock hold.
        let (foreign, cur_b) = j.append_and_drain(0, ms22(), &[ev]);
        assert_eq!(foreign.len(), 2);
        assert_eq!(cur_b, 3);
        // A catches up on B's tail only.
        let (tail, cur) = j.drain_since(cur_a);
        assert_eq!(tail.len(), 1);
        assert_eq!(cur, 3);
    }

    #[test]
    fn route_and_batch_replies_reach_destination() {
        let mut core = shard();
        let net = ms22().to_net().expect("MS(2,2) constructs");
        let k = net.degree_k();
        let from = Perm::identity(k);
        let rev: Vec<u8> = (1..=k as u8).rev().collect();
        let to = Perm::from_symbols(&rev).expect("reversal is a permutation");
        let reply = exchange(
            &mut core,
            &Request::Route {
                net: ms22(),
                from,
                to,
            },
        );
        match reply {
            Reply::RouteOk { flags, hops } => {
                assert_eq!(flags, 0, "clean network routes without detours");
                assert_eq!(apply_path(&from, &hops).expect("hops apply"), to);
            }
            other => panic!("expected RouteOk, got {other:?}"),
        }
        let pairs = vec![(from, to), (to, from)];
        let reply = exchange(
            &mut core,
            &Request::RouteBatch {
                net: ms22(),
                pairs: pairs.clone(),
            },
        );
        match reply {
            Reply::RouteBatchOk(items) => {
                assert_eq!(items.len(), 2);
                for (item, (f, t)) in items.iter().zip(&pairs) {
                    assert_eq!(item.status, 0);
                    assert_eq!(apply_path(f, &item.hops).expect("hops apply"), *t);
                }
            }
            other => panic!("expected RouteBatchOk, got {other:?}"),
        }
    }

    #[test]
    fn malformed_and_unknown_frames_get_typed_errors() {
        let mut core = shard();
        let mut out = Vec::new();
        // Bad version.
        let _fx = core.handle_frame(99, 0x01, &[], &mut out);
        // Unknown type.
        let _fx = core.handle_frame(WIRE_VERSION, 0x77, &[], &mut out);
        // Truncated ROUTE payload.
        let _fx = core.handle_frame(WIRE_VERSION, 0x01, &[0, 2], &mut out);
        let mut codes = Vec::new();
        let mut rest: &[u8] = &out;
        while let FrameStatus::Frame {
            ver,
            ftype,
            start,
            end,
        } = peek_frame(rest)
        {
            match crate::wire::decode_reply(ver, ftype, &rest[start..end]) {
                Ok(Reply::Error { code, .. }) => codes.push(code),
                other => panic!("expected Error reply, got {other:?}"),
            }
            rest = &rest[end..];
        }
        assert_eq!(
            codes,
            vec![
                ErrCode::BadVersion,
                ErrCode::BadFrameType,
                ErrCode::Malformed
            ]
        );
    }

    #[test]
    fn fault_reports_propagate_between_shards() {
        let journal = Arc::new(FaultJournal::new());
        let metrics = Arc::new(ServeMetrics::new());
        let mut a = ShardCore::new(Arc::clone(&metrics), Arc::clone(&journal));
        let mut b = ShardCore::new(Arc::clone(&metrics), Arc::clone(&journal));
        let ev = ChaosEvent::from_wire(0, 1, 0).expect("fail-node event");
        let req = Request::FaultReport {
            net: ms22(),
            events: vec![ev],
        };
        match exchange(&mut a, &req) {
            Reply::FaultOk { applied, epoch } => {
                assert_eq!(applied, 1);
                assert!(epoch > 0);
            }
            other => panic!("expected FaultOk, got {other:?}"),
        }
        // B reports the same event: resolve_in replays the journal, so the
        // duplicate changes nothing (applied == 0) — proof B saw A's fault.
        match exchange(&mut b, &req) {
            Reply::FaultOk { applied, .. } => assert_eq!(applied, 0),
            other => panic!("expected FaultOk, got {other:?}"),
        }
        // A's idle-loop sync of B's duplicate event is a no-op.
        a.sync_faults();
        // A degraded batch on B still delivers or refuses per item — never
        // panics, and the reply stays well-formed.
        let net = ms22().to_net().expect("MS(2,2) constructs");
        let k = net.degree_k();
        let rev: Vec<u8> = (1..=k as u8).rev().collect();
        let pairs = vec![(
            Perm::identity(k),
            Perm::from_symbols(&rev).expect("reversal is a permutation"),
        )];
        match exchange(&mut b, &Request::RouteBatch { net: ms22(), pairs }) {
            Reply::RouteBatchOk(items) => {
                assert_eq!(items.len(), 1);
                assert!(items[0].status == 0 || items[0].status == ErrCode::NoRoute as u8);
            }
            other => panic!("expected RouteBatchOk, got {other:?}"),
        }
    }

    #[test]
    fn metrics_request_serves_local_registry() {
        let mut core = shard();
        match exchange(&mut core, &Request::Metrics { json: false }) {
            Reply::MetricsOk(body) => {
                assert!(body.contains("scg_serve_requests_total"));
                assert!(body.contains("scg_serve_slo_route_p99_target_micros"));
            }
            other => panic!("expected MetricsOk, got {other:?}"),
        }
        match exchange(&mut core, &Request::Metrics { json: true }) {
            Reply::MetricsOk(body) => assert!(body.trim_start().starts_with('{')),
            other => panic!("expected MetricsOk, got {other:?}"),
        }
    }
}
