//! A minimal hand-rolled epoll binding — the only FFI in the workspace.
//!
//! Zero-dependency idiom: three syscall wrappers (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`) declared directly against the libc that
//! `std` already links, plus a safe [`Poller`] that owns the epoll fd and
//! an event buffer. Tokens are caller-chosen `u64`s (the `data` field of
//! `epoll_event`), which is how the shard loops map readiness back to
//! connection slots without a lookup table.

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never subscribed.
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`); always reported, never subscribed.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// The kernel's `struct epoll_event`. x86-64 packs it (12 bytes); other
/// Linux targets keep natural alignment — matching glibc's declaration.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification: the token registered for the fd and the
/// event mask the kernel reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The `u64` the fd was registered with.
    pub token: u64,
    /// `EPOLLIN | EPOLLOUT | EPOLLERR | EPOLLHUP | EPOLLRDHUP` bits.
    pub events: u32,
}

impl Readiness {
    /// Whether the fd is readable (or the peer hung up, which reads as
    /// EOF).
    #[must_use]
    pub fn readable(self) -> bool {
        self.events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0
    }

    /// Whether the fd is writable.
    #[must_use]
    pub fn writable(self) -> bool {
        self.events & EPOLLOUT != 0
    }

    /// Whether the kernel reported an error or hangup.
    #[must_use]
    pub fn closed(self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP) != 0
    }
}

/// A safe epoll instance: owns the epoll fd, registers level-triggered
/// interest, and copies readiness out of the kernel buffer.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    ready: Vec<Readiness>,
}

const MAX_EVENTS: usize = 256;

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` error (fd exhaustion, …).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 touches no caller memory.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller {
            epfd,
            ready: Vec::with_capacity(MAX_EVENTS),
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest bits under `token`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error (already registered, bad fd, …).
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest bits of a registered fd.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` error.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters an fd. Harmless if the fd was already closed (the
    /// kernel auto-removes closed fds).
    pub fn remove(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`; EPOLL_CTL_DEL ignores the event but old
        // kernels require a non-null pointer.
        if let Err(_already_gone) = cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })
        {
            // The kernel auto-removes closed fds; nothing to undo.
        }
    }

    /// Blocks up to `timeout_ms` (−1 = forever) and returns the ready
    /// set. An empty slice means the timeout elapsed.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` error; `EINTR` is retried internally.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<&[Readiness]> {
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let cap = MAX_EVENTS as i32;
        let n = loop {
            // SAFETY: `buf` holds MAX_EVENTS records and outlives the call.
            let r = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), cap, timeout_ms) };
            if r >= 0 {
                break r as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        self.ready.clear();
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) kernel record.
            let (events, data) = (ev.events, ev.data);
            self.ready.push(Readiness {
                token: data,
                events,
            });
        }
        Ok(&self.ready)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own epfd and close it exactly once.
        // scg-allow(SCG007): Drop cannot surface an error; ownership rules out double-close
        unsafe { close(self.epfd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readability() {
        let mut poller = Poller::new().unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        poller.add(rx.as_raw_fd(), 42, EPOLLIN).unwrap();
        assert!(poller.wait(0).unwrap().is_empty(), "nothing ready yet");
        tx.write_all(b"x").unwrap();
        let ready = poller.wait(1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 42);
        assert!(ready[0].readable());
        assert!(!ready[0].writable());
        poller.remove(rx.as_raw_fd());
        assert!(poller.wait(0).unwrap().is_empty(), "removed fd is silent");
    }

    #[test]
    fn modify_switches_interest() {
        let mut poller = Poller::new().unwrap();
        let (tx, mut _rx) = UnixStream::pair().unwrap();
        poller.add(tx.as_raw_fd(), 7, EPOLLIN).unwrap();
        assert!(poller.wait(0).unwrap().is_empty());
        // An idle socket with buffer space is immediately writable.
        poller
            .modify(tx.as_raw_fd(), 7, EPOLLIN | EPOLLOUT)
            .unwrap();
        let ready = poller.wait(1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert!(ready[0].writable());
    }
}
