//! `scg-serve`: a zero-dependency epoll routing daemon for super Cayley
//! graphs.
//!
//! The daemon answers a compact length-prefixed binary protocol
//! ([`wire`]) over Unix-domain and loopback TCP sockets: single routes,
//! packed route batches, fault reports, and metrics scrapes. Request
//! handling is sharded one event loop per core ([`server`]), each shard
//! owning its own [`scg_core::TopologyCache`] so the hot path takes no
//! cross-core lock; plain-HTTP `GET /metrics` and `GET /healthz` are
//! served as a fallback on the same listeners for `curl`-ability.
//!
//! The crate follows the workspace's zero-dependency idiom: the only
//! FFI is a three-syscall epoll binding ([`epoll`]) against the libc
//! that `std` already links.
//!
//! ```no_run
//! use scg_serve::{spawn, Client, Config};
//!
//! let server = spawn(Config::new("/tmp/scg.sock"))?;
//! let mut client = Client::connect_uds(server.uds_path())?;
//! println!("{}", client.metrics(false)?);
//! server.shutdown();
//! # std::io::Result::Ok(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod conn;
pub mod epoll;
pub mod metrics;
pub mod server;
pub mod shard;
pub mod wire;

pub use client::Client;
pub use metrics::ServeMetrics;
pub use server::{spawn, Config, RunningServer};
pub use shard::{FaultJournal, ShardCore};
pub use wire::{ErrCode, FrameType, NetId, Reply, Request};
