//! The daemon: listeners, acceptor, and per-shard epoll event loops.
//!
//! Thread layout: one acceptor thread polls the UDS (and optional TCP)
//! listeners and hands accepted sockets to shards round-robin; each
//! shard thread runs its own [`Poller`] over its pinned connections and
//! a wake pipe. A connection lives its whole life on one shard, so the
//! request path — [`ShardCore::handle_frame`] — shares no lock with the
//! other shards (the fault journal is the sole, cold exception).
//!
//! Wakes are one-byte writes to a `UnixStream` pair registered in the
//! shard's poller: the acceptor pokes a shard when its inbox gains a
//! socket, and a shard pokes its peers when a `FAULT_REPORT` grows the
//! journal, so fault convergence does not wait for unrelated traffic.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

use crate::conn::{Connection, Stream};
use crate::epoll::{Poller, Readiness, EPOLLIN};
use crate::metrics::ServeMetrics;
use crate::shard::{FaultJournal, FrameEffects, ShardCore};
use crate::wire::{self, peek_frame, ErrCode, FrameStatus, MAX_FRAME_LEN};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path of the Unix-domain listener socket (unlinked on shutdown).
    pub uds_path: PathBuf,
    /// Whether to also listen on TCP (`127.0.0.1`, ephemeral port).
    pub tcp: bool,
    /// Shard (event-loop thread) count; `0` = one per available core.
    pub shards: usize,
}

impl Config {
    /// A UDS-only config with auto shard count.
    #[must_use]
    pub fn new(uds_path: impl Into<PathBuf>) -> Config {
        Config {
            uds_path: uds_path.into(),
            tcp: false,
            shards: 0,
        }
    }
}

/// Handle to a running daemon; dropping it shuts the daemon down.
#[derive(Debug)]
pub struct RunningServer {
    uds_path: PathBuf,
    tcp_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    wakes: Vec<UnixStream>,
    threads: Vec<JoinHandle<()>>,
    metrics: Arc<ServeMetrics>,
}

impl RunningServer {
    /// The UDS listener path.
    #[must_use]
    pub fn uds_path(&self) -> &Path {
        &self.uds_path
    }

    /// The TCP listener address, when TCP was enabled.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The server's metrics registry (shared with every shard).
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Number of shard event-loop threads.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.wakes.len()
    }

    /// Stops every thread, joins them, and unlinks the UDS socket.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        // ord: SeqCst — shutdown is cold; strongest order costs nothing.
        self.stop.store(true, Ordering::SeqCst);
        for wake in &mut self.wakes {
            // Best-effort poke; a dead shard already exited its loop.
            drop(wake.write(&[1]));
        }
        for t in self.threads.drain(..) {
            // A panicked shard already printed its message; joining the
            // corpse is still the right cleanup.
            drop(t.join());
        }
        drop(fs::remove_file(&self.uds_path));
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.stop_inner();
        }
    }
}

/// Per-shard handoff state shared with the acceptor.
struct Inbox {
    sockets: Mutex<Vec<Stream>>,
    wake: Mutex<UnixStream>,
}

impl Inbox {
    fn push(&self, s: Stream) {
        // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        self.sockets.lock().expect("inbox lock").push(s);
        self.poke();
    }

    fn poke(&self) {
        // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        drop(self.wake.lock().expect("wake lock").write(&[1]));
    }
}

/// Starts the daemon.
///
/// # Errors
///
/// Socket binding or epoll creation failures.
pub fn spawn(config: Config) -> io::Result<RunningServer> {
    let shard_count = if config.shards == 0 {
        thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.shards
    };
    // A stale socket file from a dead server would fail the bind.
    drop(fs::remove_file(&config.uds_path));
    let uds = UnixListener::bind(&config.uds_path)?;
    uds.set_nonblocking(true)?;
    let tcp = if config.tcp {
        let l = TcpListener::bind("127.0.0.1:0")?;
        l.set_nonblocking(true)?;
        Some(l)
    } else {
        None
    };
    let tcp_addr = tcp.as_ref().map(TcpListener::local_addr).transpose()?;

    let metrics = Arc::new(ServeMetrics::new());
    let journal = Arc::new(FaultJournal::new());
    let stop = Arc::new(AtomicBool::new(false));

    let mut inboxes = Vec::with_capacity(shard_count);
    let mut wake_rxs = Vec::with_capacity(shard_count);
    let mut wake_txs = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let (tx, rx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        wake_txs.push(tx.try_clone()?);
        wake_rxs.push(rx);
        inboxes.push(Arc::new(Inbox {
            sockets: Mutex::new(Vec::new()),
            wake: Mutex::new(tx),
        }));
    }

    let mut threads = Vec::with_capacity(shard_count + 1);
    for (i, wake_rx) in wake_rxs.into_iter().enumerate() {
        let poller = Poller::new()?;
        let core = ShardCore::new(Arc::clone(&metrics), Arc::clone(&journal));
        let inbox = Arc::clone(&inboxes[i]);
        // Fault wakes go to every *other* shard.
        let peers: Vec<Arc<Inbox>> = inboxes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, b)| Arc::clone(b))
            .collect();
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        threads.push(
            thread::Builder::new()
                .name(format!("scg-serve-shard-{i}"))
                .spawn(move || shard_loop(core, poller, wake_rx, inbox, peers, stop, metrics))?,
        );
    }
    {
        let poller = Poller::new()?;
        let stop = Arc::clone(&stop);
        let inboxes = inboxes.clone();
        threads.push(
            thread::Builder::new()
                .name("scg-serve-accept".into())
                .spawn(move || accept_loop(poller, uds, tcp, inboxes, stop))?,
        );
    }

    Ok(RunningServer {
        uds_path: config.uds_path,
        tcp_addr,
        stop,
        wakes: wake_txs,
        threads,
        metrics,
    })
}

const TOKEN_UDS: u64 = u64::MAX - 1;
const TOKEN_TCP: u64 = u64::MAX - 2;
const TOKEN_WAKE: u64 = u64::MAX;

fn accept_loop(
    mut poller: Poller,
    uds: UnixListener,
    tcp: Option<TcpListener>,
    inboxes: Vec<Arc<Inbox>>,
    stop: Arc<AtomicBool>,
) {
    if poller.add(uds.as_raw_fd(), TOKEN_UDS, EPOLLIN).is_err() {
        return;
    }
    if let Some(l) = &tcp {
        if poller.add(l.as_raw_fd(), TOKEN_TCP, EPOLLIN).is_err() {
            return;
        }
    }
    let mut rr = 0usize;
    // ord: SeqCst — cold flag, checked at most ten times a second.
    while !stop.load(Ordering::SeqCst) {
        let Ok(events) = poller.wait(100) else { break };
        let events: Vec<Readiness> = events.to_vec();
        for ev in events {
            match ev.token {
                TOKEN_UDS => {
                    // Accept until WouldBlock (or a racing close) errors out.
                    while let Ok((s, _)) = uds.accept() {
                        if s.set_nonblocking(true).is_err() {
                            continue;
                        }
                        inboxes[rr % inboxes.len()].push(Stream::Unix(s));
                        rr = rr.wrapping_add(1);
                    }
                }
                TOKEN_TCP => {
                    if let Some(l) = &tcp {
                        while let Ok((s, _)) = l.accept() {
                            if s.set_nodelay(true).is_err() || s.set_nonblocking(true).is_err() {
                                continue;
                            }
                            inboxes[rr % inboxes.len()].push(Stream::Tcp(s));
                            rr = rr.wrapping_add(1);
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[allow(clippy::needless_pass_by_value)] // thread entry point owns its state
fn shard_loop(
    mut core: ShardCore,
    mut poller: Poller,
    mut wake_rx: UnixStream,
    inbox: Arc<Inbox>,
    peers: Vec<Arc<Inbox>>,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
) {
    if poller
        .add(wake_rx.as_raw_fd(), TOKEN_WAKE, EPOLLIN)
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<u64, Connection> = HashMap::new();
    // ord: SeqCst — cold flag, checked at most ten times a second.
    while !stop.load(Ordering::SeqCst) {
        let Ok(events) = poller.wait(100) else { break };
        let events: Vec<Readiness> = events.to_vec();
        // Drain the wake pipe (its only job is ending the epoll_wait).
        if events.iter().any(|e| e.token == TOKEN_WAKE) {
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }
        // Adopt newly accepted sockets (checked every iteration: a wake
        // can coalesce with a racing handoff).
        // scg-allow(SCG001): documented panic — poisoned by another panicking thread only
        let adopted = std::mem::take(&mut *inbox.sockets.lock().expect("inbox lock"));
        for stream in adopted {
            let conn = Connection::new(stream);
            let token = conn.fd() as u64;
            if poller.add(conn.fd(), token, conn.interest()).is_err() {
                continue; // fd died between accept and registration
            }
            match conn.transport() {
                "uds" => metrics.conns_uds.inc(),
                _ => metrics.conns_tcp.inc(),
            }
            metrics.open_conns.add(1);
            conns.insert(token, conn);
        }
        // Converge on faults reported through other shards.
        core.sync_faults();
        for ev in events {
            if ev.token == TOKEN_WAKE {
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            let mut drop_conn = ev.closed();
            let mut eof = false;
            if !drop_conn && ev.readable() {
                match conn.fill() {
                    Ok(outcome) => eof = outcome.eof,
                    Err(_) => drop_conn = true,
                }
            }
            if !drop_conn {
                drop_conn = !service(conn, &mut core, &peers, &metrics);
            }
            if !drop_conn && eof {
                conn.close_after_flush = true;
                drop_conn = conn.queued() == 0;
            }
            if !drop_conn && conn.close_after_flush && conn.queued() == 0 {
                drop_conn = true;
            }
            if drop_conn {
                let fd = conn.fd();
                poller.remove(fd);
                conns.remove(&ev.token);
                metrics.open_conns.add(-1);
            } else {
                let (fd, interest) = (conn.fd(), conn.interest());
                if poller.modify(fd, ev.token, interest).is_err() {
                    conns.remove(&ev.token);
                    metrics.open_conns.add(-1);
                }
            }
        }
    }
    // Unregister what's left so the epoll fd drops clean.
    for conn in conns.values() {
        poller.remove(conn.fd());
        metrics.open_conns.add(-1);
    }
}

/// Parses and answers everything currently actionable on `conn`:
/// processes frames until the buffer runs dry or backpressure trips,
/// flushing between rounds. Returns `false` when the connection hit an
/// I/O error and must be dropped.
fn service(
    conn: &mut Connection,
    core: &mut ShardCore,
    peers: &[Arc<Inbox>],
    metrics: &Arc<ServeMetrics>,
) -> bool {
    loop {
        let fx = process_read_buf(conn, core, metrics);
        if fx.journal_grew {
            for peer in peers {
                peer.poke();
            }
        }
        if conn.flush().is_err() {
            return false;
        }
        if conn.update_throttle() {
            metrics.backpressure_stalls.inc();
        }
        if conn.peak_queue as i64 > metrics.queue_peak.get() {
            metrics.queue_peak.set(conn.peak_queue as i64);
        }
        if conn.throttled() {
            return true; // resume when EPOLLOUT drains the queue
        }
        // Only a complete binary frame justifies another round; HTTP and
        // bad-length states were already answered by process_read_buf,
        // and NeedMore (including partial HTTP headers) waits for bytes.
        if conn.close_after_flush
            || !matches!(peek_frame(&conn.read_buf), FrameStatus::Frame { .. })
        {
            return true;
        }
    }
}

/// Consumes complete frames (or a complete HTTP request) from the front
/// of the read buffer, queueing replies.
fn process_read_buf(
    conn: &mut Connection,
    core: &mut ShardCore,
    metrics: &Arc<ServeMetrics>,
) -> FrameEffects {
    let mut agg = FrameEffects::default();
    loop {
        if conn.throttled() || conn.close_after_flush {
            break;
        }
        match peek_frame(&conn.read_buf) {
            FrameStatus::NeedMore => break,
            FrameStatus::Http => {
                handle_http(conn, metrics);
                break;
            }
            FrameStatus::BadLength(len) => {
                // Framing is unrecoverable: typed error, then close once
                // it flushes.
                let code = if len > MAX_FRAME_LEN {
                    ErrCode::FrameTooLarge
                } else {
                    ErrCode::Malformed
                };
                metrics.inc_error(code);
                let mut reply = Vec::new();
                wire::encode_error_into(&mut reply, code, "unrecoverable frame length");
                conn.queue(&reply);
                conn.read_buf.clear();
                conn.close_after_flush = true;
                break;
            }
            FrameStatus::Frame {
                ver,
                ftype,
                start,
                end,
            } => {
                let mut reply = Vec::new();
                let fx = core.handle_frame(ver, ftype, &conn.read_buf[start..end], &mut reply);
                agg.journal_grew |= fx.journal_grew;
                conn.queue(&reply);
                conn.consume(end);
            }
        }
    }
    agg
}

/// Minimal HTTP/1.0-style fallback for `curl`: `GET /metrics` (add
/// `?json=1` for the JSON exposition) and `GET /healthz`. One response,
/// then close.
fn handle_http(conn: &mut Connection, metrics: &Arc<ServeMetrics>) {
    conn.http = true;
    let Some(head_end) = find_crlf_crlf(&conn.read_buf) else {
        if conn.read_buf.len() > 16 * 1024 {
            conn.read_buf.clear();
            conn.close_after_flush = true;
        }
        return; // headers still arriving
    };
    metrics.req_http.inc();
    let head = String::from_utf8_lossy(&conn.read_buf[..head_end]).into_owned();
    conn.consume(head_end + 4);
    let path = head.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        p if p == "/metrics" || p.starts_with("/metrics?") => {
            let snap = metrics.snapshot();
            if p.contains("json") {
                ("200 OK", snap.to_json())
            } else {
                ("200 OK", snap.to_text())
            }
        }
        "/healthz" => ("200 OK", "ok\n".to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let reply = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.queue(reply.as_bytes());
    conn.close_after_flush = true;
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_reply, encode_request, NetId, Reply, Request};
    use scg_core::{apply_path, CayleyNetwork, ScgClass};
    use scg_perm::Perm;
    use std::io::{BufRead, BufReader};

    fn temp_sock(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("scg-serve-{}-{tag}.sock", std::process::id()))
    }

    fn ms22() -> NetId {
        NetId {
            class: ScgClass::MacroStar,
            levels: 2,
            box_size: 2,
        }
    }

    fn read_one_frame(s: &mut impl Read) -> Reply {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let FrameStatus::Frame {
                ver,
                ftype,
                start,
                end,
            } = peek_frame(&buf)
            {
                return decode_reply(ver, ftype, &buf[start..end]).expect("reply decodes");
            }
            let n = s.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed before a full reply");
            buf.extend_from_slice(&chunk[..n]);
        }
    }

    #[test]
    fn serves_routes_http_and_shutdown_over_both_transports() {
        let path = temp_sock("unit");
        let server = spawn(Config {
            uds_path: path.clone(),
            tcp: true,
            shards: 2,
        })
        .expect("spawn");
        let net = ms22().to_net().expect("MS(2,2)");
        let k = net.degree_k();
        let from = Perm::identity(k);
        let rev: Vec<u8> = (1..=k as u8).rev().collect();
        let to = Perm::from_symbols(&rev).expect("perm");
        let req = encode_request(&Request::Route {
            net: ms22(),
            from,
            to,
        });

        // UDS leg.
        let mut uds = UnixStream::connect(&path).expect("connect uds");
        uds.write_all(&req).expect("send");
        match read_one_frame(&mut uds) {
            Reply::RouteOk { hops, .. } => {
                assert_eq!(apply_path(&from, &hops).expect("apply"), to);
            }
            other => panic!("expected RouteOk, got {other:?}"),
        }

        // TCP leg, same frame bytes.
        let addr = server.tcp_addr().expect("tcp enabled");
        let mut tcp = std::net::TcpStream::connect(addr).expect("connect tcp");
        tcp.write_all(&req).expect("send");
        match read_one_frame(&mut tcp) {
            Reply::RouteOk { hops, .. } => {
                assert_eq!(apply_path(&from, &hops).expect("apply"), to);
            }
            other => panic!("expected RouteOk, got {other:?}"),
        }

        // HTTP fallback on the same listener.
        let mut http = UnixStream::connect(&path).expect("connect http");
        http.write_all(b"GET /metrics HTTP/1.1\r\nHost: scg\r\n\r\n")
            .expect("send http");
        let mut reader = BufReader::new(http);
        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        assert!(status.starts_with("HTTP/1.1 200"), "got {status:?}");
        let mut body = String::new();
        reader.read_to_string(&mut body).expect("body to close");
        assert!(body.contains("scg_serve_requests_total"));
        assert!(body.contains("scg_serve_slo_route_p50_target_micros"));

        // Unrecoverable framing: typed error, then the server closes.
        let mut bad = UnixStream::connect(&path).expect("connect bad");
        bad.write_all(&[0xFF; 8]).expect("send garbage");
        match read_one_frame(&mut bad) {
            Reply::Error { code, .. } => assert_eq!(code, ErrCode::FrameTooLarge),
            other => panic!("expected Error, got {other:?}"),
        }
        let mut rest = Vec::new();
        bad.read_to_end(&mut rest).expect("server closes");
        assert!(rest.is_empty());

        server.shutdown();
        assert!(!path.exists(), "socket unlinked on shutdown");
    }
}
