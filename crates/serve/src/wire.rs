//! The binary wire protocol: length-prefixed, versioned, little-endian.
//!
//! Every frame is
//!
//! ```text
//! [len: u32 LE][ver: u8][type: u8][payload: len − 2 bytes]
//! ```
//!
//! where `len` counts everything after the length field (so `len ≥ 2`) and
//! is capped at [`MAX_FRAME_LEN`] for inbound frames. Malformed input of
//! any shape — truncated, oversized, unknown version or type, garbage
//! payload — decodes to a typed [`ErrCode`], never a panic (the decoder is
//! total over arbitrary bytes; see `crates/serve/tests/wire.rs`).
//!
//! ## Frame types
//!
//! | code | frame | payload |
//! |------|-------|---------|
//! | 0x01 | `ROUTE` | net(3) · perm `from` · perm `to` |
//! | 0x02 | `ROUTE_BATCH` | net(3) · `count: u32` · `k: u8` · count × (k from-symbols · k to-symbols) |
//! | 0x03 | `FAULT_REPORT` | net(3) · `count: u32` · count × (`kind: u8` · `u: u32` · `v: u32`) |
//! | 0x04 | `METRICS` | empty, or `format: u8` (0 text, 1 JSON) |
//! | 0x81 | `ROUTE_OK` | `flags: u8` · `hop_count: u16` · hops × 3 |
//! | 0x82 | `ROUTE_BATCH_OK` | `count: u32` · count × (`status: u8` [· `flags: u8` · `hop_count: u16` · hops × 3]) |
//! | 0x83 | `FAULT_OK` | `applied: u32` · `epoch: u64` |
//! | 0x84 | `METRICS_OK` | UTF-8 body |
//! | 0xFF | `ERROR` | `code: u16` · UTF-8 detail |
//!
//! A *net descriptor* is 3 bytes: the [`ScgClass`] index into
//! [`ScgClass::ALL`], then `l`, then `n`. A *perm* is `k: u8` followed by
//! `k` 1-based symbol bytes. A *hop* is `tag · a · b` with tags
//! 0 `T_a`, 1 `T_{a,b}`, 2 `I_a`, 3 `I_a⁻¹`, 4 `S_{a,b}`, 5 `R^b_a`
//! (unused operands zero). Fault-event kinds are
//! [`ChaosEvent::kind_code`].

use scg_core::{Generator, ScgClass, SuperCayleyGraph};
use scg_graph::ChaosEvent;
use scg_perm::Perm;

/// Protocol version carried by every frame.
pub const WIRE_VERSION: u8 = 1;

/// Maximum accepted inbound frame body (`len` field value): 1 MiB.
/// Anything larger gets a [`ErrCode::FrameTooLarge`] reply and the
/// connection is closed (the stream offset can no longer be trusted).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Maximum pairs in one `ROUTE_BATCH` frame. At the maximum degree this
/// keeps request frames near 128 KiB and bounds the reply the server must
/// queue for one inbound frame.
pub const MAX_BATCH_PAIRS: u32 = 4096;

/// Bytes of framing before the payload: length field + version + type.
pub const HEADER_LEN: usize = 6;

/// Frame type codes (requests `0x01..`, replies `0x81..`, `0xFF` error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Single route request.
    Route = 0x01,
    /// Batched route request.
    RouteBatch = 0x02,
    /// Fault/repair event report.
    FaultReport = 0x03,
    /// Metrics scrape.
    Metrics = 0x04,
    /// Successful single route.
    RouteOk = 0x81,
    /// Successful batch.
    RouteBatchOk = 0x82,
    /// Fault report acknowledged.
    FaultOk = 0x83,
    /// Metrics payload.
    MetricsOk = 0x84,
    /// Typed error reply.
    Error = 0xFF,
}

impl FrameType {
    /// Decodes a frame-type byte; `None` is the
    /// [`ErrCode::BadFrameType`] path.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<FrameType> {
        match b {
            0x01 => Some(FrameType::Route),
            0x02 => Some(FrameType::RouteBatch),
            0x03 => Some(FrameType::FaultReport),
            0x04 => Some(FrameType::Metrics),
            0x81 => Some(FrameType::RouteOk),
            0x82 => Some(FrameType::RouteBatchOk),
            0x83 => Some(FrameType::FaultOk),
            0x84 => Some(FrameType::MetricsOk),
            0xFF => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// Typed error codes carried by `ERROR` replies (and, as `u8`, by
/// per-item batch statuses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrCode {
    /// Unknown protocol version byte.
    BadVersion = 1,
    /// Unknown frame-type byte.
    BadFrameType = 2,
    /// Payload did not parse (truncated field, bad symbols, …).
    Malformed = 3,
    /// Frame length exceeds [`MAX_FRAME_LEN`]; the connection closes.
    FrameTooLarge = 4,
    /// Net descriptor names no valid network (bad class index or
    /// parameters).
    BadNetwork = 5,
    /// A permutation's degree does not match the network's.
    DegreeMismatch = 6,
    /// No route: a failed endpoint, or faults disconnect the pair.
    NoRoute = 7,
    /// The operation needs a materialized network above the size cap.
    TooLarge = 8,
    /// Batch pair count is zero or exceeds [`MAX_BATCH_PAIRS`].
    BadCount = 9,
}

impl ErrCode {
    /// Decodes an error-code word (as received in an `ERROR` reply).
    #[must_use]
    pub fn from_u16(w: u16) -> Option<ErrCode> {
        match w {
            1 => Some(ErrCode::BadVersion),
            2 => Some(ErrCode::BadFrameType),
            3 => Some(ErrCode::Malformed),
            4 => Some(ErrCode::FrameTooLarge),
            5 => Some(ErrCode::BadNetwork),
            6 => Some(ErrCode::DegreeMismatch),
            7 => Some(ErrCode::NoRoute),
            8 => Some(ErrCode::TooLarge),
            9 => Some(ErrCode::BadCount),
            _ => None,
        }
    }

    /// Stable label for metrics and logs.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::BadVersion => "bad_version",
            ErrCode::BadFrameType => "bad_frame_type",
            ErrCode::Malformed => "malformed",
            ErrCode::FrameTooLarge => "frame_too_large",
            ErrCode::BadNetwork => "bad_network",
            ErrCode::DegreeMismatch => "degree_mismatch",
            ErrCode::NoRoute => "no_route",
            ErrCode::TooLarge => "too_large",
            ErrCode::BadCount => "bad_count",
        }
    }
}

/// `ROUTE_OK` flag bit: at least one detour fired (degraded mode).
pub const FLAG_DETOURED: u8 = 1;
/// `ROUTE_OK` flag bit: the survivor-BFS fallback produced the route.
pub const FLAG_FALLBACK: u8 = 2;

/// The 3-byte network descriptor: class index into [`ScgClass::ALL`],
/// levels `l`, box size `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetId {
    /// The network class.
    pub class: ScgClass,
    /// Levels `l`.
    pub levels: u8,
    /// Box size `n`.
    pub box_size: u8,
}

impl NetId {
    /// The descriptor for a constructed network.
    #[must_use]
    pub fn of(net: &SuperCayleyGraph) -> NetId {
        // Class parameters are validated ≤ small bounds at construction,
        // so the u8 narrowing is lossless.
        NetId {
            class: net.class(),
            levels: net.levels() as u8,
            box_size: net.box_size() as u8,
        }
    }

    /// Builds the network this descriptor names.
    ///
    /// # Errors
    ///
    /// [`ErrCode::BadNetwork`] if the parameters are invalid for the
    /// class.
    pub fn to_net(self) -> Result<SuperCayleyGraph, ErrCode> {
        SuperCayleyGraph::new(
            self.class,
            usize::from(self.levels),
            usize::from(self.box_size),
        )
        .map_err(|_| ErrCode::BadNetwork)
    }

    fn encode(self, out: &mut Vec<u8>) {
        let idx = ScgClass::ALL
            .iter()
            .position(|&c| c == self.class)
            .unwrap_or_default();
        // ALL has 10 entries, the index fits a byte.
        out.push(idx as u8);
        out.push(self.levels);
        out.push(self.box_size);
    }

    fn decode(r: &mut Reader<'_>) -> Result<NetId, ErrCode> {
        let idx = r.u8()?;
        let levels = r.u8()?;
        let box_size = r.u8()?;
        let class = *ScgClass::ALL
            .get(usize::from(idx))
            .ok_or(ErrCode::BadNetwork)?;
        Ok(NetId {
            class,
            levels,
            box_size,
        })
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Route one pair.
    Route {
        /// Target network.
        net: NetId,
        /// Source label.
        from: Perm,
        /// Destination label.
        to: Perm,
    },
    /// Route a batch of pairs of uniform degree `k`.
    RouteBatch {
        /// Target network.
        net: NetId,
        /// The pairs.
        pairs: Vec<(Perm, Perm)>,
    },
    /// Apply fault/repair events to the server's view of a network.
    FaultReport {
        /// Target network.
        net: NetId,
        /// The events, in order.
        events: Vec<ChaosEvent>,
    },
    /// Scrape the server's metrics registry.
    Metrics {
        /// `true` for the JSON exposition, `false` for text.
        json: bool,
    },
}

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Successful single route.
    RouteOk {
        /// [`FLAG_DETOURED`] | [`FLAG_FALLBACK`].
        flags: u8,
        /// The generator hops.
        hops: Vec<Generator>,
    },
    /// Successful batch; items are in request order.
    RouteBatchOk(
        /// Per-pair outcomes.
        Vec<BatchItem>,
    ),
    /// Fault report acknowledged.
    FaultOk {
        /// Events that changed the fault set.
        applied: u32,
        /// The network's fault epoch after ingestion.
        epoch: u64,
    },
    /// Metrics payload.
    MetricsOk(
        /// The exposition body.
        String,
    ),
    /// Typed failure.
    Error {
        /// What went wrong.
        code: ErrCode,
        /// Human-readable detail (may be empty).
        detail: String,
    },
}

/// One pair's outcome inside a `ROUTE_BATCH_OK` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// `0` for success, else the [`ErrCode`] as `u8`.
    pub status: u8,
    /// [`FLAG_DETOURED`] | [`FLAG_FALLBACK`] (zero unless degraded).
    pub flags: u8,
    /// The generator hops (empty on failure).
    pub hops: Vec<Generator>,
}

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian cursor; every read is total (no
/// panics, no partial state on failure).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ErrCode> {
        let end = self.pos.checked_add(n).ok_or(ErrCode::Malformed)?;
        let s = self.buf.get(self.pos..end).ok_or(ErrCode::Malformed)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ErrCode> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ErrCode> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ErrCode> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ErrCode> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    fn finish(self) -> Result<(), ErrCode> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ErrCode::Malformed) // trailing garbage
        }
    }
}

fn encode_perm(out: &mut Vec<u8>, p: &Perm) {
    // Degree ≤ MAX_DEGREE = 20 fits a byte.
    out.push(p.degree() as u8);
    for pos in 1..=p.degree() {
        out.push(p.symbol_at(pos));
    }
}

fn decode_perm(r: &mut Reader<'_>) -> Result<Perm, ErrCode> {
    let k = usize::from(r.u8()?);
    let symbols = r.take(k)?;
    Perm::from_symbols(symbols).map_err(|_| ErrCode::Malformed)
}

/// Encodes one hop as the 3-byte `tag · a · b` triple.
fn encode_generator(out: &mut Vec<u8>, g: Generator) {
    let (tag, a, b) = match g {
        Generator::Transposition { i } => (0, i, 0),
        Generator::Exchange { i, j } => (1, i, j),
        Generator::Insertion { i } => (2, i, 0),
        Generator::Selection { i } => (3, i, 0),
        Generator::Swap { n, i } => (4, n, i),
        Generator::Rotation { n, i } => (5, n, i),
    };
    out.push(tag);
    out.push(a);
    out.push(b);
}

fn decode_generator(r: &mut Reader<'_>) -> Result<Generator, ErrCode> {
    let tag = r.u8()?;
    let a = r.u8()?;
    let b = r.u8()?;
    match tag {
        0 => Ok(Generator::Transposition { i: a }),
        1 => Ok(Generator::Exchange { i: a, j: b }),
        2 => Ok(Generator::Insertion { i: a }),
        3 => Ok(Generator::Selection { i: a }),
        4 => Ok(Generator::Swap { n: a, i: b }),
        5 => Ok(Generator::Rotation { n: a, i: b }),
        _ => Err(ErrCode::Malformed),
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Opens a frame in `out`: writes the header with a zero length field and
/// returns the offset to patch. Close with [`end_frame`].
pub fn begin_frame(out: &mut Vec<u8>, ftype: FrameType) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0, WIRE_VERSION, ftype as u8]);
    at
}

/// Closes a frame opened at `at`: patches the length field to cover
/// everything appended since (version and type included).
///
/// # Panics
///
/// Panics if `at` does not point at a frame header previously written by
/// [`begin_frame`] on this buffer (a caller bug, not a wire condition).
pub fn end_frame(out: &mut [u8], at: usize) {
    let body = out.len() - at - 4;
    // Frames the server emits are bounded by MAX_BATCH_PAIRS; u32 holds.
    let len = (body as u32).to_le_bytes();
    out[at..at + 4].copy_from_slice(&len);
}

/// What the start of a read buffer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStatus {
    /// Not enough bytes yet for a verdict — keep reading.
    NeedMore,
    /// One complete frame: version byte, type byte, and the payload's
    /// byte range within the buffer. Consume `HEADER_LEN + payload
    /// length` bytes.
    Frame {
        /// Version byte as received.
        ver: u8,
        /// Frame-type byte as received.
        ftype: u8,
        /// Payload start offset (= [`HEADER_LEN`]).
        start: usize,
        /// Payload end offset.
        end: usize,
    },
    /// The declared length is over [`MAX_FRAME_LEN`] or under the 2-byte
    /// minimum: reply [`ErrCode::FrameTooLarge`] / [`ErrCode::Malformed`]
    /// and close — framing is unrecoverable.
    BadLength(
        /// The declared `len` field value.
        u32,
    ),
    /// The buffer starts with `GET ` — an HTTP client (e.g. `curl
    /// /metrics`). Hand off to the HTTP fallback.
    Http,
}

/// Examines the start of a connection's read buffer for one frame.
///
/// Total over arbitrary bytes; never panics. The `GET ` prefix is
/// unambiguous: read as a length field it is `0x20544547` ≈ 542 M, far
/// over [`MAX_FRAME_LEN`], so no binary frame starts that way.
#[must_use]
pub fn peek_frame(buf: &[u8]) -> FrameStatus {
    if buf.first().copied() == Some(b'G') {
        if buf.len() < 4 {
            return FrameStatus::NeedMore;
        }
        if &buf[..4] == b"GET " {
            return FrameStatus::Http;
        }
    }
    if buf.len() < HEADER_LEN {
        return FrameStatus::NeedMore;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return FrameStatus::BadLength(len);
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return FrameStatus::NeedMore;
    }
    FrameStatus::Frame {
        ver: buf[4],
        ftype: buf[5],
        start: HEADER_LEN,
        end: total,
    }
}

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

/// Encodes a request as one complete frame.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    let ftype = match req {
        Request::Route { .. } => FrameType::Route,
        Request::RouteBatch { .. } => FrameType::RouteBatch,
        Request::FaultReport { .. } => FrameType::FaultReport,
        Request::Metrics { .. } => FrameType::Metrics,
    };
    let at = begin_frame(&mut out, ftype);
    match req {
        Request::Route { net, from, to } => {
            net.encode(&mut out);
            encode_perm(&mut out, from);
            encode_perm(&mut out, to);
        }
        Request::RouteBatch { net, pairs } => {
            net.encode(&mut out);
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            let k = pairs.first().map_or(0, |(f, _)| f.degree() as u8);
            out.push(k);
            for (f, t) in pairs {
                for p in [f, t] {
                    for pos in 1..=p.degree() {
                        out.push(p.symbol_at(pos));
                    }
                }
            }
        }
        Request::FaultReport { net, events } => {
            net.encode(&mut out);
            out.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for ev in events {
                let (u, v) = ev.wire_args();
                out.push(ev.kind_code());
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Request::Metrics { json } => {
            out.push(u8::from(*json));
        }
    }
    end_frame(&mut out, at);
    out
}

/// Decodes the payload of a request frame whose header
/// ([`peek_frame`]) already passed length checks.
///
/// # Errors
///
/// Every malformation maps to a typed [`ErrCode`]; the decoder never
/// panics on any byte sequence.
pub fn decode_request(ver: u8, ftype: u8, payload: &[u8]) -> Result<Request, ErrCode> {
    if ver != WIRE_VERSION {
        return Err(ErrCode::BadVersion);
    }
    let ftype = FrameType::from_u8(ftype).ok_or(ErrCode::BadFrameType)?;
    let mut r = Reader::new(payload);
    let req = match ftype {
        FrameType::Route => {
            let net = NetId::decode(&mut r)?;
            let from = decode_perm(&mut r)?;
            let to = decode_perm(&mut r)?;
            Request::Route { net, from, to }
        }
        FrameType::RouteBatch => {
            let net = NetId::decode(&mut r)?;
            let count = r.u32()?;
            if count == 0 || count > MAX_BATCH_PAIRS {
                return Err(ErrCode::BadCount);
            }
            let k = usize::from(r.u8()?);
            let mut pairs = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let from = Perm::from_symbols(r.take(k)?).map_err(|_| ErrCode::Malformed)?;
                let to = Perm::from_symbols(r.take(k)?).map_err(|_| ErrCode::Malformed)?;
                pairs.push((from, to));
            }
            Request::RouteBatch { net, pairs }
        }
        FrameType::FaultReport => {
            let net = NetId::decode(&mut r)?;
            let count = r.u32()?;
            // 9 bytes per event; the frame length cap already bounds the
            // count, this check just refuses absurd declared counts early.
            if count as usize > payload.len() {
                return Err(ErrCode::Malformed);
            }
            let mut events = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let kind = r.u8()?;
                let u = r.u32()?;
                let v = r.u32()?;
                events.push(ChaosEvent::from_wire(kind, u, v).ok_or(ErrCode::Malformed)?);
            }
            Request::FaultReport { net, events }
        }
        FrameType::Metrics => {
            let json = match r.take(1) {
                Ok(b) => b[0] == 1,
                Err(_) => false, // empty payload defaults to text
            };
            Request::Metrics { json }
        }
        _ => return Err(ErrCode::BadFrameType), // reply type sent as request
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Reply codec
// ---------------------------------------------------------------------------

/// Appends an `ERROR` frame to `out`.
pub fn encode_error_into(out: &mut Vec<u8>, code: ErrCode, detail: &str) {
    let at = begin_frame(out, FrameType::Error);
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(detail.as_bytes());
    end_frame(out, at);
}

/// Encodes a reply as one complete frame (the client-side / test-side
/// mirror of the server's streaming encoders).
#[must_use]
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut out = Vec::new();
    match reply {
        Reply::RouteOk { flags, hops } => {
            let at = begin_frame(&mut out, FrameType::RouteOk);
            out.push(*flags);
            out.extend_from_slice(&(hops.len() as u16).to_le_bytes());
            for &g in hops {
                encode_generator(&mut out, g);
            }
            end_frame(&mut out, at);
        }
        Reply::RouteBatchOk(items) => {
            let at = begin_frame(&mut out, FrameType::RouteBatchOk);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                out.push(item.status);
                if item.status == 0 {
                    out.push(item.flags);
                    out.extend_from_slice(&(item.hops.len() as u16).to_le_bytes());
                    for &g in &item.hops {
                        encode_generator(&mut out, g);
                    }
                }
            }
            end_frame(&mut out, at);
        }
        Reply::FaultOk { applied, epoch } => {
            let at = begin_frame(&mut out, FrameType::FaultOk);
            out.extend_from_slice(&applied.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            end_frame(&mut out, at);
        }
        Reply::MetricsOk(body) => {
            let at = begin_frame(&mut out, FrameType::MetricsOk);
            out.extend_from_slice(body.as_bytes());
            end_frame(&mut out, at);
        }
        Reply::Error { code, detail } => encode_error_into(&mut out, *code, detail),
    }
    out
}

/// Decodes the payload of a reply frame.
///
/// # Errors
///
/// [`ErrCode`] on any malformation — total over arbitrary bytes.
pub fn decode_reply(ver: u8, ftype: u8, payload: &[u8]) -> Result<Reply, ErrCode> {
    if ver != WIRE_VERSION {
        return Err(ErrCode::BadVersion);
    }
    let ftype = FrameType::from_u8(ftype).ok_or(ErrCode::BadFrameType)?;
    let mut r = Reader::new(payload);
    let reply = match ftype {
        FrameType::RouteOk => {
            let flags = r.u8()?;
            let n = usize::from(r.u16()?);
            let mut hops = Vec::with_capacity(n);
            for _ in 0..n {
                hops.push(decode_generator(&mut r)?);
            }
            Reply::RouteOk { flags, hops }
        }
        FrameType::RouteBatchOk => {
            let count = r.u32()? as usize;
            // 1 byte minimum per item.
            if count > payload.len() {
                return Err(ErrCode::Malformed);
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let status = r.u8()?;
                let (flags, hops) = if status == 0 {
                    let flags = r.u8()?;
                    let n = usize::from(r.u16()?);
                    let mut hops = Vec::with_capacity(n);
                    for _ in 0..n {
                        hops.push(decode_generator(&mut r)?);
                    }
                    (flags, hops)
                } else {
                    (0, Vec::new())
                };
                items.push(BatchItem {
                    status,
                    flags,
                    hops,
                });
            }
            Reply::RouteBatchOk(items)
        }
        FrameType::FaultOk => {
            let applied = r.u32()?;
            let epoch = r.u64()?;
            Reply::FaultOk { applied, epoch }
        }
        FrameType::MetricsOk => {
            let body = String::from_utf8(r.take(payload.len())?.to_vec())
                .map_err(|_| ErrCode::Malformed)?;
            Reply::MetricsOk(body)
        }
        FrameType::Error => {
            let code = ErrCode::from_u16(r.u16()?).ok_or(ErrCode::Malformed)?;
            let rest = payload.len() - 2;
            let detail =
                String::from_utf8(r.take(rest)?.to_vec()).map_err(|_| ErrCode::Malformed)?;
            Reply::Error { code, detail }
        }
        _ => return Err(ErrCode::BadFrameType), // request type sent as reply
    };
    r.finish()?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_frame_states() {
        assert_eq!(peek_frame(&[]), FrameStatus::NeedMore);
        assert_eq!(peek_frame(&[9, 0, 0]), FrameStatus::NeedMore);
        assert_eq!(peek_frame(b"GE"), FrameStatus::NeedMore);
        assert_eq!(peek_frame(b"GET /metrics HTTP/1.1"), FrameStatus::Http);
        assert_eq!(peek_frame(&[1, 0, 0, 0, 1, 1]), FrameStatus::BadLength(1));
        let big = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert_eq!(
            peek_frame(&[big[0], big[1], big[2], big[3], 1, 1]),
            FrameStatus::BadLength(MAX_FRAME_LEN + 1)
        );
        // A complete minimal frame.
        assert_eq!(
            peek_frame(&[2, 0, 0, 0, WIRE_VERSION, 0x04, 0xAA]),
            FrameStatus::Frame {
                ver: WIRE_VERSION,
                ftype: 0x04,
                start: HEADER_LEN,
                end: HEADER_LEN
            }
        );
    }

    #[test]
    fn begin_end_frame_patches_length() {
        let mut out = Vec::new();
        let at = begin_frame(&mut out, FrameType::FaultOk);
        out.extend_from_slice(&[1, 2, 3]);
        end_frame(&mut out, at);
        assert_eq!(out[..4], 5u32.to_le_bytes());
        assert_eq!(out[4], WIRE_VERSION);
        assert_eq!(out[5], FrameType::FaultOk as u8);
    }

    #[test]
    fn decoders_are_total_over_short_payloads() {
        // Every prefix of a valid frame's payload decodes to a typed
        // error, not a panic.
        let req = Request::Route {
            net: NetId {
                class: ScgClass::MacroStar,
                levels: 2,
                box_size: 2,
            },
            from: Perm::identity(5),
            to: Perm::identity(5),
        };
        let frame = encode_request(&req);
        let payload = &frame[HEADER_LEN..];
        for cut in 0..payload.len() {
            assert!(decode_request(WIRE_VERSION, 0x01, &payload[..cut]).is_err());
        }
        assert!(decode_request(WIRE_VERSION, 0x01, payload).is_ok());
    }
}
