//! Per-connection state: nonblocking reads into a frame buffer, a
//! *bounded* write queue with backpressure, and the interest-bit logic
//! that ties the two to epoll.
//!
//! Backpressure contract: a connection never buffers unboundedly. When a
//! peer stops draining replies and the write queue climbs past
//! [`HIGH_WATER`], the shard drops `EPOLLIN` interest — the server stops
//! *reading* that connection, the kernel socket buffer fills, and the
//! client's own sends eventually block. Reading resumes once the queue
//! drains below [`LOW_WATER`]. Slow consumers therefore throttle
//! themselves without stalling the shard or growing the heap.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

use crate::epoll::{EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Stop reading a connection whose write queue exceeds this many bytes.
pub const HIGH_WATER: usize = 256 * 1024;
/// Resume reading once the write queue drains below this many bytes.
pub const LOW_WATER: usize = 64 * 1024;

/// Either transport, unified behind `Read`/`Write`/`AsRawFd`.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    /// The transport label for metrics.
    #[must_use]
    pub fn transport(&self) -> &'static str {
        match self {
            Stream::Tcp(_) => "tcp",
            Stream::Unix(_) => "uds",
        }
    }
}

impl AsRawFd for Stream {
    fn as_raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

/// What one `fill` pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Bytes appended to the read buffer.
    pub bytes: usize,
    /// Whether the peer closed its write half (EOF).
    pub eof: bool,
}

/// One client connection owned by one shard.
#[derive(Debug)]
pub struct Connection {
    stream: Stream,
    /// Unparsed inbound bytes; frames are consumed from the front.
    pub read_buf: Vec<u8>,
    /// Outbound bytes not yet accepted by the kernel. `write_pos` marks
    /// the flushed prefix; the buffer compacts opportunistically instead
    /// of shifting on every write.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Set once the peer should be dropped after the queue drains
    /// (HTTP responses, unrecoverable framing errors).
    pub close_after_flush: bool,
    /// Whether this connection switched to the HTTP fallback.
    pub http: bool,
    /// Largest queue depth seen, for the peak gauge.
    pub peak_queue: usize,
    /// Throttle latch: set at [`HIGH_WATER`], cleared below [`LOW_WATER`]
    /// (hysteresis, so interest bits do not flap at the boundary).
    latched: bool,
}

impl Connection {
    /// Wraps an accepted nonblocking stream.
    #[must_use]
    pub fn new(stream: Stream) -> Connection {
        Connection {
            stream,
            read_buf: Vec::with_capacity(4096),
            write_buf: Vec::with_capacity(4096),
            write_pos: 0,
            close_after_flush: false,
            http: false,
            peak_queue: 0,
            latched: false,
        }
    }

    /// The raw fd, for epoll registration.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// The transport label for metrics.
    #[must_use]
    pub fn transport(&self) -> &'static str {
        self.stream.transport()
    }

    /// Bytes queued and not yet written to the kernel.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Whether the write queue is past [`HIGH_WATER`] (or still latched
    /// above [`LOW_WATER`]) — the shard should not read more requests
    /// from this peer.
    #[must_use]
    pub fn throttled(&self) -> bool {
        self.latched || self.queued() >= HIGH_WATER
    }

    /// Advances the throttle latch after queue/flush activity. Returns
    /// `true` exactly when the connection *newly* stalled (for the
    /// backpressure counter).
    pub fn update_throttle(&mut self) -> bool {
        if !self.latched && self.queued() >= HIGH_WATER {
            self.latched = true;
            return true;
        }
        if self.latched && self.queued() < LOW_WATER {
            self.latched = false;
        }
        false
    }

    /// The epoll interest bits matching the connection's state:
    /// `EPOLLOUT` iff bytes are queued, `EPOLLIN` unless throttled.
    #[must_use]
    pub fn interest(&self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if !self.throttled() {
            bits |= EPOLLIN;
        }
        if self.queued() > 0 {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Reads until the kernel has no more bytes (or the queue throttles
    /// the connection), appending to `read_buf`.
    ///
    /// # Errors
    ///
    /// Propagates real socket errors; `WouldBlock` ends the pass
    /// normally.
    pub fn fill(&mut self) -> io::Result<ReadOutcome> {
        let mut outcome = ReadOutcome {
            bytes: 0,
            eof: false,
        };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.throttled() {
                break; // stop consuming; interest() already drops EPOLLIN
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    outcome.eof = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    outcome.bytes += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(outcome)
    }

    /// Consumes `n` parsed bytes from the front of the read buffer.
    pub fn consume(&mut self, n: usize) {
        self.read_buf.drain(..n);
    }

    /// Queues reply bytes (bounded by the backpressure contract: callers
    /// stop *generating* replies once [`Connection::throttled`] trips,
    /// because the shard stops reading requests).
    pub fn queue(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
        self.peak_queue = self.peak_queue.max(self.queued());
    }

    /// Writes queued bytes until the kernel stops accepting them.
    /// Returns whether the queue fully drained.
    ///
    /// # Errors
    ///
    /// Propagates real socket errors; `WouldBlock` ends the pass
    /// normally.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Compact: drop the flushed prefix when it dominates the buffer
        // (amortized O(1) per byte), or reset entirely once drained.
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > 32 * 1024 {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        Ok(self.queued() == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Connection, UnixStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).expect("nonblocking");
        (Connection::new(Stream::Unix(a)), b)
    }

    #[test]
    fn fill_reads_until_would_block() {
        let (mut conn, mut peer) = pair();
        peer.write_all(b"hello frames").unwrap();
        let out = conn.fill().unwrap();
        assert_eq!(out.bytes, 12);
        assert!(!out.eof);
        assert_eq!(conn.read_buf, b"hello frames");
        conn.consume(6);
        assert_eq!(conn.read_buf, b"frames");
        drop(peer);
        assert!(conn.fill().unwrap().eof);
    }

    #[test]
    fn interest_tracks_queue_and_throttle() {
        let (mut conn, _peer) = pair();
        assert_eq!(conn.interest() & EPOLLIN, EPOLLIN);
        assert_eq!(conn.interest() & EPOLLOUT, 0);
        conn.queue(&[0u8; 10]);
        assert_eq!(conn.interest() & EPOLLOUT, EPOLLOUT);
        let big = vec![0u8; HIGH_WATER];
        conn.queue(&big);
        assert!(conn.throttled());
        assert_eq!(conn.interest() & EPOLLIN, 0, "throttled drops EPOLLIN");
        assert!(conn.peak_queue >= HIGH_WATER);
    }

    #[test]
    fn throttle_latch_has_hysteresis() {
        let (mut conn, _peer) = pair();
        let big = vec![0u8; HIGH_WATER];
        conn.queue(&big);
        assert!(conn.update_throttle(), "first trip counts as a stall");
        assert!(!conn.update_throttle(), "still stalled, not a new stall");
        // Drain to between LOW and HIGH water: still latched.
        conn.write_buf.truncate(LOW_WATER + 1);
        assert!(!conn.update_throttle());
        assert!(conn.throttled(), "latch holds above LOW_WATER");
        // Below LOW_WATER the latch releases.
        conn.write_buf.truncate(LOW_WATER - 1);
        assert!(!conn.update_throttle());
        assert!(!conn.throttled());
        assert_eq!(conn.interest() & EPOLLIN, EPOLLIN, "reading resumes");
    }

    #[test]
    fn flush_drains_into_peer() {
        let (mut conn, mut peer) = pair();
        peer.set_nonblocking(false).unwrap();
        conn.queue(b"abc");
        assert!(conn.flush().unwrap());
        let mut got = [0u8; 3];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"abc");
        assert_eq!(conn.queued(), 0);
    }

    #[test]
    fn bounded_queue_survives_slow_peer() {
        // Queue far more than the socket buffer holds: flush makes
        // partial progress, the rest stays queued (bounded by the
        // caller's backpressure), and draining the peer lets a second
        // flush finish.
        let (mut conn, mut peer) = pair();
        let payload = vec![7u8; 1024 * 1024];
        conn.queue(&payload);
        let drained = conn.flush().unwrap();
        assert!(!drained, "a 1 MiB burst cannot fit a socket buffer");
        assert!(conn.queued() > 0);
        peer.set_nonblocking(false).unwrap();
        let mut sink = vec![0u8; payload.len()];
        let mut got = 0;
        while got < sink.len() {
            let n = peer.read(&mut sink[got..]).unwrap();
            got += n;
            // Interleave flushes as the peer drains.
            conn.flush().unwrap();
        }
        assert!(sink.iter().all(|&b| b == 7));
    }
}
