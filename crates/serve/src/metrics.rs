//! The server-local metrics registry and latency SLOs.
//!
//! Every daemon instance owns a private [`Registry`] — it *is* the
//! payload of a `METRICS` request and of the HTTP `/metrics` fallback,
//! not optional instrumentation, so it exists on both feature legs.
//! Under the `obs` feature the counters are additionally mirrored into
//! the process-wide registry so the daemon shows up next to the
//! routing/topology hooks; mirroring touches no wire bytes (proven
//! byte-for-byte by `tests/observability.rs`).
//!
//! SLOs are defined from the existing histogram machinery: the measured
//! p50/p99 of the per-request service-time histograms are exported as
//! gauges (`scg_serve_route_p50_micros`, …) next to fixed target gauges
//! (`*_target_micros`), both refreshed at scrape time via
//! [`Histogram::quantile_x1000`]. A scrape is SLO-clean when measured ≤
//! target for every pair.

use std::sync::Arc;

use scg_obs::{Counter, Gauge, Histogram, Registry, Snapshot};

use crate::wire::ErrCode;

/// Service-time bucket bounds (µs): sub-µs to 1 s.
pub const MICROS_BOUNDS: [u64; 17] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    1_000_000,
];

/// Hop-count buckets, matching `scg-core`'s routing hooks.
pub const HOPS_BOUNDS: [u64; 10] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32];

/// Batch-size buckets (pairs per `ROUTE_BATCH`).
pub const PAIRS_BOUNDS: [u64; 8] = [1, 8, 32, 128, 512, 1_024, 2_048, 4_096];

/// SLO target: single-route p50 service time (µs, loopback).
pub const SLO_ROUTE_P50_MICROS: u64 = 500;
/// SLO target: single-route p99 service time (µs, loopback).
pub const SLO_ROUTE_P99_MICROS: u64 = 5_000;
/// SLO target: batch p50 service time (µs, loopback, ≤ 4096 pairs).
pub const SLO_BATCH_P50_MICROS: u64 = 10_000;
/// SLO target: batch p99 service time (µs, loopback, ≤ 4096 pairs).
pub const SLO_BATCH_P99_MICROS: u64 = 100_000;

/// Hot-path instruments, resolved once at server start so request
/// handling never does a registry lookup.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    /// Accepted connections, by transport.
    pub conns_uds: Arc<Counter>,
    /// Accepted connections, by transport.
    pub conns_tcp: Arc<Counter>,
    /// Currently open connections.
    pub open_conns: Arc<Gauge>,
    /// Requests by kind (route / batch / fault / metrics / http).
    pub req_route: Arc<Counter>,
    /// See [`ServeMetrics::req_route`].
    pub req_batch: Arc<Counter>,
    /// See [`ServeMetrics::req_route`].
    pub req_fault: Arc<Counter>,
    /// See [`ServeMetrics::req_route`].
    pub req_metrics: Arc<Counter>,
    /// HTTP fallback requests served.
    pub req_http: Arc<Counter>,
    /// Routed pairs (single + batched), successful only.
    pub routes: Arc<Counter>,
    /// Pairs refused with `NoRoute` (degraded mode).
    pub refused: Arc<Counter>,
    /// Routes that needed at least one detour.
    pub detoured: Arc<Counter>,
    /// Routes that needed the survivor-BFS fallback.
    pub fallback: Arc<Counter>,
    /// Hop counts of successful routes.
    pub hops: Arc<Histogram>,
    /// Pairs per batch frame.
    pub batch_pairs: Arc<Histogram>,
    /// Single-route service time (decode → reply queued), µs.
    pub route_micros: Arc<Histogram>,
    /// Batch service time (decode → reply queued), µs.
    pub batch_micros: Arc<Histogram>,
    /// Connections that tripped the high-water mark at least once.
    pub backpressure_stalls: Arc<Counter>,
    /// Largest per-connection write queue seen (bytes).
    pub queue_peak: Arc<Gauge>,
    /// Fault events that changed a fault set.
    pub fault_events: Arc<Counter>,
    slo_route_p50: Arc<Gauge>,
    slo_route_p99: Arc<Gauge>,
    slo_batch_p50: Arc<Gauge>,
    slo_batch_p99: Arc<Gauge>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// A fresh registry with every instrument registered.
    #[must_use]
    pub fn new() -> ServeMetrics {
        let r = Registry::new();
        // Fixed SLO targets, exported so scrapers can evaluate
        // measured-vs-target without configuration.
        r.gauge("scg_serve_slo_route_p50_target_micros", &[])
            .set(SLO_ROUTE_P50_MICROS as i64);
        r.gauge("scg_serve_slo_route_p99_target_micros", &[])
            .set(SLO_ROUTE_P99_MICROS as i64);
        r.gauge("scg_serve_slo_batch_p50_target_micros", &[])
            .set(SLO_BATCH_P50_MICROS as i64);
        r.gauge("scg_serve_slo_batch_p99_target_micros", &[])
            .set(SLO_BATCH_P99_MICROS as i64);
        let kind = |k: &str| r.counter("scg_serve_requests_total", &[("kind", k)]);
        ServeMetrics {
            conns_uds: r.counter("scg_serve_connections_total", &[("transport", "uds")]),
            conns_tcp: r.counter("scg_serve_connections_total", &[("transport", "tcp")]),
            open_conns: r.gauge("scg_serve_open_connections", &[]),
            req_route: kind("route"),
            req_batch: kind("route_batch"),
            req_fault: kind("fault_report"),
            req_metrics: kind("metrics"),
            req_http: kind("http"),
            routes: r.counter("scg_serve_routes_total", &[]),
            refused: r.counter("scg_serve_route_refused_total", &[]),
            detoured: r.counter("scg_serve_route_detoured_total", &[]),
            fallback: r.counter("scg_serve_route_fallback_total", &[]),
            hops: r.histogram("scg_serve_route_hops", &[], &HOPS_BOUNDS),
            batch_pairs: r.histogram("scg_serve_batch_pairs", &[], &PAIRS_BOUNDS),
            route_micros: r.histogram("scg_serve_route_micros", &[], &MICROS_BOUNDS),
            batch_micros: r.histogram("scg_serve_batch_micros", &[], &MICROS_BOUNDS),
            backpressure_stalls: r.counter("scg_serve_backpressure_stalls_total", &[]),
            queue_peak: r.gauge("scg_serve_write_queue_peak_bytes", &[]),
            fault_events: r.counter("scg_serve_fault_events_applied_total", &[]),
            slo_route_p50: r.gauge("scg_serve_route_p50_micros", &[]),
            slo_route_p99: r.gauge("scg_serve_route_p99_micros", &[]),
            slo_batch_p50: r.gauge("scg_serve_batch_p50_micros", &[]),
            slo_batch_p99: r.gauge("scg_serve_batch_p99_micros", &[]),
            registry: r,
        }
    }

    /// Typed-error counter for `code` (cold path; label resolved per
    /// call).
    pub fn inc_error(&self, code: ErrCode) {
        self.registry
            .counter("scg_serve_errors_total", &[("code", code.as_str())])
            .inc();
        #[cfg(feature = "obs")]
        Registry::global()
            .counter("scg_serve_errors_total", &[("code", code.as_str())])
            .inc();
    }

    /// The local registry (for tests and the snapshot path).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Refreshes the measured-SLO gauges from the latency histograms and
    /// snapshots the whole registry. This is what a `METRICS` request
    /// and `/metrics` scrape serve.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let set = |g: &Gauge, h: &Histogram, q: u64| {
            g.set(h.quantile_x1000(q).unwrap_or(0) as i64);
        };
        set(&self.slo_route_p50, &self.route_micros, 500);
        set(&self.slo_route_p99, &self.route_micros, 990);
        set(&self.slo_batch_p50, &self.batch_micros, 500);
        set(&self.slo_batch_p99, &self.batch_micros, 990);
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_slo_fields() {
        let m = ServeMetrics::new();
        for _ in 0..99 {
            m.route_micros.observe(3);
        }
        // Two outliers: rank ceil(101·0.99) = 100 lands on the first of
        // them, so the measured p99 reports their 500 µs bucket.
        m.route_micros.observe(400);
        m.route_micros.observe(400);
        let snap = m.snapshot();
        let text = snap.to_text();
        assert!(text.contains("scg_serve_route_p50_micros 5"));
        assert!(text.contains("scg_serve_route_p99_micros 500"));
        assert!(text.contains("scg_serve_slo_route_p99_target_micros 5000"));
        assert!(text.contains("scg_serve_slo_batch_p99_target_micros 100000"));
        assert_eq!(snap.quantile("scg_serve_route_micros", 500), Some(5));
    }

    #[test]
    fn error_counter_labels_by_code() {
        let m = ServeMetrics::new();
        m.inc_error(ErrCode::Malformed);
        m.inc_error(ErrCode::Malformed);
        m.inc_error(ErrCode::NoRoute);
        let text = m.snapshot().to_text();
        assert!(text.contains("scg_serve_errors_total{code=\"malformed\"} 2"));
        assert!(text.contains("scg_serve_errors_total{code=\"no_route\"} 1"));
    }
}
