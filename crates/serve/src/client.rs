//! A small blocking client for the daemon's binary protocol — used by
//! the loopback tests, the benchmark harness, and scriptable callers.
//!
//! One request/one reply by default ([`Client::request`]); the split
//! [`Client::send`] / [`Client::recv`] halves support pipelining many
//! frames before reading any reply (the benchmark's open-loop mode).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::wire::{decode_reply, encode_request, peek_frame, ErrCode, FrameStatus, Reply, Request};

/// Either transport, blocking.
#[derive(Debug)]
enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.write_all(buf),
            Transport::Unix(s) => s.write_all(buf),
        }
    }
}

/// A blocking connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    transport: Transport,
    /// Reply bytes read but not yet decoded (frames can straddle reads).
    buf: Vec<u8>,
}

impl Client {
    /// Connects over the Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect_uds(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            transport: Transport::Unix(UnixStream::connect(path)?),
            buf: Vec::new(),
        })
    }

    /// Connects over TCP (`set_nodelay` on, as the protocol is
    /// request/reply).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Ok(Client {
            transport: Transport::Tcp(s),
            buf: Vec::new(),
        })
    }

    /// Sends one request frame without waiting for the reply.
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.transport.write_all(&encode_request(req))
    }

    /// Sends pre-encoded bytes verbatim (malformed-frame testing).
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.transport.write_all(bytes)
    }

    /// Blocks until one complete reply frame arrives and decodes it.
    ///
    /// # Errors
    ///
    /// Socket errors, a server-side close mid-frame, or a reply that
    /// fails to decode (both mapped to [`io::ErrorKind::InvalidData`]).
    pub fn recv(&mut self) -> io::Result<Reply> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match peek_frame(&self.buf) {
                FrameStatus::Frame {
                    ver,
                    ftype,
                    start,
                    end,
                } => {
                    let reply =
                        decode_reply(ver, ftype, &self.buf[start..end]).map_err(invalid_data)?;
                    self.buf.drain(..end);
                    return Ok(reply);
                }
                FrameStatus::NeedMore => {
                    let n = self.transport.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed mid-frame",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                FrameStatus::BadLength(len) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("reply frame with unframeable length {len}"),
                    ));
                }
                FrameStatus::Http => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "HTTP bytes on a binary-protocol connection",
                    ));
                }
            }
        }
    }

    /// Blocks until one complete reply frame arrives and hands its raw
    /// type byte and payload to `visit` without decoding — the benchmark
    /// harness scans batch replies in place instead of materializing a
    /// `Vec<Generator>` per pair.
    ///
    /// # Errors
    ///
    /// Socket errors, a server-side close mid-frame, or unframeable
    /// bytes (mapped to [`io::ErrorKind::InvalidData`]).
    pub fn recv_with<R>(&mut self, visit: impl FnOnce(u8, &[u8]) -> R) -> io::Result<R> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match peek_frame(&self.buf) {
                FrameStatus::Frame {
                    ftype, start, end, ..
                } => {
                    let out = visit(ftype, &self.buf[start..end]);
                    self.buf.drain(..end);
                    return Ok(out);
                }
                FrameStatus::NeedMore => {
                    let n = self.transport.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed mid-frame",
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                FrameStatus::BadLength(len) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("reply frame with unframeable length {len}"),
                    ));
                }
                FrameStatus::Http => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "HTTP bytes on a binary-protocol connection",
                    ));
                }
            }
        }
    }

    /// One request, one reply.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] and [`Client::recv`].
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        self.send(req)?;
        self.recv()
    }

    /// Scrapes the server-local metrics registry.
    ///
    /// # Errors
    ///
    /// Transport errors, or a non-`METRICS_OK` reply.
    pub fn metrics(&mut self, json: bool) -> io::Result<String> {
        match self.request(&Request::Metrics { json })? {
            Reply::MetricsOk(body) => Ok(body),
            Reply::Error { code, detail } => Err(server_error(code, &detail)),
            other => Err(invalid_data_reply(&other)),
        }
    }
}

fn invalid_data(code: ErrCode) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("reply did not decode: {}", code.as_str()),
    )
}

fn server_error(code: ErrCode, detail: &str) -> io::Error {
    io::Error::other(format!("server error {}: {detail}", code.as_str()))
}

fn invalid_data_reply(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply kind: {reply:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{spawn, Config};
    use crate::wire::NetId;
    use scg_core::{apply_path, CayleyNetwork, ScgClass};
    use scg_perm::Perm;

    #[test]
    fn client_round_trips_and_pipelines() {
        let path =
            std::env::temp_dir().join(format!("scg-serve-client-{}.sock", std::process::id()));
        let server = spawn(Config {
            uds_path: path.clone(),
            tcp: false,
            shards: 1,
        })
        .expect("spawn");
        let net_id = NetId {
            class: ScgClass::MacroStar,
            levels: 2,
            box_size: 2,
        };
        let net = net_id.to_net().expect("MS(2,2)");
        let k = net.degree_k();
        let from = Perm::identity(k);
        let rev: Vec<u8> = (1..=k as u8).rev().collect();
        let to = Perm::from_symbols(&rev).expect("perm");

        let mut client = Client::connect_uds(&path).expect("connect");
        // Pipelined: three sends before any recv.
        let req = Request::Route {
            net: net_id,
            from,
            to,
        };
        for _ in 0..3 {
            client.send(&req).expect("send");
        }
        for _ in 0..3 {
            match client.recv().expect("recv") {
                Reply::RouteOk { hops, .. } => {
                    assert_eq!(apply_path(&from, &hops).expect("apply"), to);
                }
                other => panic!("expected RouteOk, got {other:?}"),
            }
        }
        let text = client.metrics(false).expect("metrics");
        assert!(text.contains("scg_serve_routes_total 3"));
        server.shutdown();
    }
}
