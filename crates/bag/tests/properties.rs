//! Randomized tests for the ball-arrangement game across all ten network
//! classes. Driven by the vendored deterministic PRNG (the workspace builds
//! offline, so `proptest` is not available).

use scg_bag::{BagConfig, BagGame};
use scg_core::{ScgClass, SuperCayleyGraph, SMALL_NET_CAP};
use scg_perm::{factorial, Perm, XorShift64};

fn game_for(class: ScgClass) -> BagGame {
    let net = if class == ScgClass::InsertionSelection {
        SuperCayleyGraph::insertion_selection(5).unwrap()
    } else {
        SuperCayleyGraph::new(class, 2, 2).unwrap()
    };
    BagGame::new(net)
}

#[test]
fn solver_always_sorts() {
    let mut rng = XorShift64::new(31);
    for class in ScgClass::ALL {
        let game = game_for(class);
        let legal: Vec<_> = game.moves().iter().map(|(g, _)| *g).collect();
        for _ in 0..4 {
            let steps = rng.gen_range(40);
            let c = game.scramble(steps, &mut rng);
            let sol = game.solve(&c).unwrap();
            assert!(game.replay(&c, &sol).unwrap().is_solved(), "{class:?}");
            // Every move in the solution is legal for these rules.
            for mv in &sol {
                assert!(legal.contains(mv), "{class:?}: illegal move {mv}");
            }
        }
    }
}

#[test]
fn optimal_never_longer_than_router() {
    let mut rng = XorShift64::new(32);
    for class in ScgClass::ALL {
        let game = game_for(class);
        let c = game.scramble(20, &mut rng);
        let router = game.solve(&c).unwrap();
        let optimal = game.solve_optimal(&c, 1_000_000).unwrap();
        assert!(optimal.len() <= router.len(), "{class:?}");
        assert!(
            optimal.len() as u32 <= game.gods_number(SMALL_NET_CAP).unwrap(),
            "{class:?}"
        );
    }
}

#[test]
fn any_configuration_is_reachable() {
    // §2: every class generates S_k, so every configuration solves.
    let mut rng = XorShift64::new(33);
    for class in ScgClass::ALL {
        let game = game_for(class);
        let k = game.num_balls();
        for _ in 0..4 {
            let c = BagConfig::from(Perm::from_rank(k, rng.gen_range_u64(factorial(k))).unwrap());
            let sol = game.solve(&c).unwrap();
            assert!(game.replay(&c, &sol).unwrap().is_solved(), "{class:?}");
        }
    }
}

#[test]
fn color_sorting_is_implied_by_solving() {
    for rank in 0u64..120 {
        let c = BagConfig::from(Perm::from_rank(5, rank).unwrap());
        if c.is_solved() {
            assert!(c.is_color_sorted(2));
        }
        // Color-sorted configurations have every ball in its home box.
        if c.is_color_sorted(2) {
            for (b, balls) in c.boxed(2).iter().enumerate() {
                for &s in balls {
                    assert_eq!(c.color_of(s, 2), b + 1);
                }
            }
        }
    }
}

#[test]
fn render_parse_roundtrip() {
    let mut rng = XorShift64::new(34);
    for _ in 0..64 {
        let c = BagConfig::from(Perm::from_rank(7, rng.gen_range_u64(5040)).unwrap());
        let parsed: BagConfig = c.to_string().parse().unwrap();
        assert_eq!(parsed, c);
        // The rendered box view contains exactly k ball tokens.
        let rendered = c.render(3);
        let balls = rendered
            .split(&[' ', '|'][..])
            .filter(|tok| !tok.is_empty())
            .count();
        assert_eq!(balls, 7);
    }
}
