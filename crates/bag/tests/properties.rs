//! Property-based tests for the ball-arrangement game.

use proptest::prelude::*;
use rand::SeedableRng;
use scg_bag::{BagConfig, BagGame};
use scg_core::{CayleyNetwork, ScgClass, SuperCayleyGraph};
use scg_perm::{factorial, Perm};

fn arb_game() -> impl Strategy<Value = BagGame> {
    (0usize..ScgClass::ALL.len()).prop_map(|i| {
        let class = ScgClass::ALL[i];
        let net = if class == ScgClass::InsertionSelection {
            SuperCayleyGraph::insertion_selection(5).unwrap()
        } else {
            SuperCayleyGraph::new(class, 2, 2).unwrap()
        };
        BagGame::new(net)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn solver_always_sorts(game in arb_game(), seed in any::<u64>(), steps in 0usize..40) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = game.scramble(steps, &mut rng);
        let sol = game.solve(&c).unwrap();
        prop_assert!(game.replay(&c, &sol).unwrap().is_solved());
        // Every move in the solution is legal for these rules.
        let legal: Vec<_> = game.moves().iter().map(|(g, _)| *g).collect();
        for mv in &sol {
            prop_assert!(legal.contains(mv));
        }
    }

    #[test]
    fn optimal_never_longer_than_router(game in arb_game(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let c = game.scramble(20, &mut rng);
        let router = game.solve(&c).unwrap();
        let optimal = game.solve_optimal(&c, 1_000_000).unwrap();
        prop_assert!(optimal.len() <= router.len());
        prop_assert!(optimal.len() as u32 <= game.gods_number(1_000).unwrap());
    }

    #[test]
    fn any_configuration_is_reachable(game in arb_game(), rank in 0u64..120) {
        // §2: every class generates S_k, so every configuration solves.
        let k = game.num_balls();
        let c = BagConfig::from(Perm::from_rank(k, rank % factorial(k)).unwrap());
        let sol = game.solve(&c).unwrap();
        prop_assert!(game.replay(&c, &sol).unwrap().is_solved());
    }

    #[test]
    fn color_sorting_is_implied_by_solving(rank in 0u64..120) {
        let c = BagConfig::from(Perm::from_rank(5, rank % 120).unwrap());
        if c.is_solved() {
            prop_assert!(c.is_color_sorted(2));
        }
        // Color-sorted configurations have every ball in its home box.
        if c.is_color_sorted(2) {
            for (b, balls) in c.boxed(2).iter().enumerate() {
                for &s in balls {
                    prop_assert_eq!(c.color_of(s, 2), b + 1);
                }
            }
        }
    }

    #[test]
    fn render_parse_roundtrip(rank in 0u64..5040) {
        let c = BagConfig::from(Perm::from_rank(7, rank % 5040).unwrap());
        let parsed: BagConfig = c.to_string().parse().unwrap();
        prop_assert_eq!(parsed, c);
        // The rendered box view contains exactly k ball tokens.
        let rendered = c.render(3);
        let balls = rendered
            .split(&[' ', '|'][..])
            .filter(|tok| !tok.is_empty())
            .count();
        prop_assert_eq!(balls, 7);
    }
}
