use std::fmt;
use std::str::FromStr;

use scg_perm::{Perm, PermError};

/// A configuration of the ball-arrangement game: which ball is outside and
/// how the rest are distributed over the boxes.
///
/// Internally a permutation of `1..=k`: position 1 is the outside ball,
/// positions `(i-1)n + 2 ..= i·n + 1` are box `i` read left to right. Ball 1
/// has color 0, ball `s >= 2` has color `⌈(s − 1) / n⌉`.
///
/// # Examples
///
/// ```
/// use scg_bag::BagConfig;
///
/// # fn main() -> Result<(), scg_perm::PermError> {
/// let c = BagConfig::from_symbols(&[7, 1, 2, 3, 4, 5, 6])?;
/// assert_eq!(c.outside_ball(), 7);
/// assert_eq!(c.boxed(3), vec![vec![1, 2, 3], vec![4, 5, 6]]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BagConfig(Perm);

impl BagConfig {
    /// The solved configuration with `k` balls (identity permutation).
    ///
    /// # Errors
    ///
    /// Returns a [`PermError`] for an invalid degree.
    pub fn solved(k: usize) -> Result<Self, PermError> {
        if !(1..=scg_perm::MAX_DEGREE).contains(&k) {
            return Err(PermError::DegreeOutOfRange { degree: k });
        }
        Ok(BagConfig(Perm::identity(k)))
    }

    /// Builds a configuration from an explicit ball sequence (outside ball
    /// first, then boxes left to right).
    ///
    /// # Errors
    ///
    /// Returns a [`PermError`] if the sequence is not a permutation.
    pub fn from_symbols(symbols: &[u8]) -> Result<Self, PermError> {
        Perm::from_symbols(symbols).map(BagConfig)
    }

    /// The underlying node label of the corresponding super Cayley graph.
    #[must_use]
    pub fn as_perm(&self) -> &Perm {
        &self.0
    }

    /// Consumes the configuration, returning the label.
    #[must_use]
    pub fn into_perm(self) -> Perm {
        self.0
    }

    /// Number of balls `k`.
    #[must_use]
    pub fn num_balls(&self) -> usize {
        self.0.degree()
    }

    /// The ball currently outside the boxes.
    #[must_use]
    pub fn outside_ball(&self) -> u8 {
        self.0.symbol_at(1)
    }

    /// The box contents for box size `n`, as `l` rows of `n` balls.
    ///
    /// # Panics
    ///
    /// Panics if `k − 1` is not a multiple of `n`.
    #[must_use]
    pub fn boxed(&self, n: usize) -> Vec<Vec<u8>> {
        let k = self.num_balls();
        assert!(
            n >= 1 && (k - 1).is_multiple_of(n),
            "k - 1 must be a multiple of n"
        );
        self.0.symbols()[1..]
            .chunks(n)
            .map(<[u8]>::to_vec)
            .collect()
    }

    /// The color of ball `s` (0 for ball 1, else the box it belongs to).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a ball of this game or `n` does not divide
    /// `k − 1`.
    #[must_use]
    pub fn color_of(&self, s: u8, n: usize) -> usize {
        let k = self.num_balls();
        assert!(s >= 1 && (s as usize) <= k, "no such ball");
        assert!(
            n >= 1 && (k - 1).is_multiple_of(n),
            "k - 1 must be a multiple of n"
        );
        if s == 1 {
            0
        } else {
            (s as usize - 2) / n + 1
        }
    }

    /// Whether the game is won: every ball in its home position.
    #[must_use]
    pub fn is_solved(&self) -> bool {
        self.0.is_identity()
    }

    /// Whether each box contains only balls of its own color (the order
    /// inside boxes may still be wrong) and ball 1 is outside. This is the
    /// coset-level "color sorted" relaxation of the win condition.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not divide `k − 1`.
    #[must_use]
    pub fn is_color_sorted(&self, n: usize) -> bool {
        if self.outside_ball() != 1 {
            return false;
        }
        self.boxed(n)
            .iter()
            .enumerate()
            .all(|(b, balls)| balls.iter().all(|&s| self.color_of(s, n) == b + 1))
    }

    /// Renders the configuration with box boundaries for box size `n`, e.g.
    /// `1 | 2 3 | 4 5 | 6 7`.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not divide `k − 1`.
    #[must_use]
    pub fn render(&self, n: usize) -> String {
        let mut out = self.outside_ball().to_string();
        for chunk in self.boxed(n) {
            out.push_str(" |");
            for ball in chunk {
                out.push(' ');
                out.push_str(&ball.to_string());
            }
        }
        out
    }
}

impl fmt::Display for BagConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for BagConfig {
    type Err = PermError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<Perm>().map(BagConfig)
    }
}

impl From<Perm> for BagConfig {
    fn from(p: Perm) -> Self {
        BagConfig(p)
    }
}

impl From<BagConfig> for Perm {
    fn from(c: BagConfig) -> Self {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solved_is_identity() {
        let c = BagConfig::solved(7).unwrap();
        assert!(c.is_solved());
        assert!(c.is_color_sorted(2));
        assert!(c.is_color_sorted(3));
        assert_eq!(c.outside_ball(), 1);
    }

    #[test]
    fn colors_partition_balls() {
        let c = BagConfig::solved(7).unwrap();
        // n = 3: balls 2,3,4 are color 1; 5,6,7 color 2.
        assert_eq!(c.color_of(1, 3), 0);
        assert_eq!(c.color_of(2, 3), 1);
        assert_eq!(c.color_of(4, 3), 1);
        assert_eq!(c.color_of(5, 3), 2);
        assert_eq!(c.color_of(7, 3), 2);
    }

    #[test]
    fn color_sorted_but_not_solved() {
        // Boxes hold the right colors but box 1 is internally reversed.
        let c = BagConfig::from_symbols(&[1, 4, 3, 2, 5, 6, 7]).unwrap();
        assert!(!c.is_solved());
        assert!(c.is_color_sorted(3));
        assert!(!c.is_color_sorted(2));
    }

    #[test]
    fn render_shows_boxes() {
        let c = BagConfig::from_symbols(&[7, 1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(c.render(3), "7 | 1 2 3 | 4 5 6");
        assert_eq!(c.render(2), "7 | 1 2 | 3 4 | 5 6");
    }

    #[test]
    fn parse_roundtrip() {
        let c: BagConfig = "3 1 2".parse().unwrap();
        assert_eq!(c.to_string(), "3 1 2");
        assert_eq!(c.num_balls(), 3);
    }
}
