use std::fmt;

use scg_core::{
    apply_path, bfs_route, materialize, scg_route, CayleyNetwork, CoreError, Generator,
    SuperCayleyGraph,
};
use scg_perm::XorShift64;

use crate::config::BagConfig;

/// The game-semantic classification of a move (the paper's two action
/// types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveKind {
    /// Action (1): rearrange the order of the leftmost `n + 1` balls.
    RearrangeLeftmost,
    /// Action (2): rearrange the order of boxes.
    RearrangeBoxes,
}

impl fmt::Display for MoveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveKind::RearrangeLeftmost => write!(f, "rearrange leftmost balls"),
            MoveKind::RearrangeBoxes => write!(f, "rearrange boxes"),
        }
    }
}

/// A ball-arrangement game instance: `l` boxes of `n` balls, with the legal
/// moves of one super Cayley graph class.
///
/// Solving the game from configuration `c` is routing from node `c` to the
/// identity node in the network — [`BagGame::solve`] literally calls the
/// network router, making the §2 correspondence executable (and testable:
/// the minimal number of moves equals the graph distance).
///
/// # Examples
///
/// ```
/// use scg_bag::{BagConfig, BagGame};
/// use scg_core::SuperCayleyGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let game = BagGame::new(SuperCayleyGraph::insertion_selection(5)?);
/// let start = BagConfig::from_symbols(&[5, 4, 3, 2, 1])?;
/// let moves = game.solve(&start)?;
/// assert!(game.replay(&start, &moves)?.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BagGame {
    net: SuperCayleyGraph,
}

impl BagGame {
    /// Creates a game following the move rules of `net`.
    #[must_use]
    pub fn new(net: SuperCayleyGraph) -> Self {
        BagGame { net }
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &SuperCayleyGraph {
        &self.net
    }

    /// Number of balls `k = nl + 1`.
    #[must_use]
    pub fn num_balls(&self) -> usize {
        self.net.degree_k()
    }

    /// The legal moves, as generators paired with their game semantics.
    #[must_use]
    pub fn moves(&self) -> Vec<(Generator, MoveKind)> {
        self.net
            .generators()
            .iter()
            .map(|&g| {
                let kind = if g.is_nucleus() {
                    MoveKind::RearrangeLeftmost
                } else {
                    MoveKind::RearrangeBoxes
                };
                (g, kind)
            })
            .collect()
    }

    /// Applies one move.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Perm`] if `mv` is not applicable to this game's
    /// ball count (it need not be one of the class's legal moves — use
    /// [`BagGame::moves`] to enumerate those).
    pub fn apply(&self, c: &BagConfig, mv: Generator) -> Result<BagConfig, CoreError> {
        Ok(BagConfig::from(mv.apply(c.as_perm())?))
    }

    /// Replays a move sequence from `c`.
    ///
    /// # Errors
    ///
    /// Propagates the first inapplicable move.
    pub fn replay(&self, c: &BagConfig, moves: &[Generator]) -> Result<BagConfig, CoreError> {
        Ok(BagConfig::from(apply_path(c.as_perm(), moves)?))
    }

    /// Solves the game: a legal move sequence from `c` to the sorted
    /// configuration.
    ///
    /// Uses the network's emulation router (constant-factor optimal). For
    /// the insertion-only rotator classes, falls back to exact BFS, capped
    /// at one million expanded configurations.
    ///
    /// # Errors
    ///
    /// * [`CoreError::DegreeMismatch`] — wrong ball count;
    /// * [`CoreError::TooLarge`] — BFS fallback exceeded its cap.
    pub fn solve(&self, c: &BagConfig) -> Result<Vec<Generator>, CoreError> {
        let target = scg_perm::Perm::identity(self.num_balls());
        match scg_route(&self.net, c.as_perm(), &target) {
            Ok(path) => Ok(path),
            Err(CoreError::NoRoute) => bfs_route(&self.net, c.as_perm(), &target, 1_000_000),
            Err(e) => Err(e),
        }
    }

    /// Solves optimally (minimum move count = graph distance) by BFS.
    ///
    /// # Errors
    ///
    /// * [`CoreError::TooLarge`] — more than `cap` configurations expanded.
    pub fn solve_optimal(&self, c: &BagConfig, cap: u64) -> Result<Vec<Generator>, CoreError> {
        let target = scg_perm::Perm::identity(self.num_balls());
        bfs_route(&self.net, c.as_perm(), &target, cap)
    }

    /// The game's *God's number*: the largest number of moves an optimal
    /// solution ever needs — by the §2 correspondence, exactly the diameter
    /// of the underlying super Cayley graph.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TooLarge`] if the network exceeds `cap` nodes.
    pub fn gods_number(&self, cap: u64) -> Result<u32, CoreError> {
        let mat = materialize(&self.net, cap)?;
        // Vertex transitivity: eccentricity of the identity is the diameter.
        // For the directed classes the relevant distance is config → solved,
        // i.e. BFS on the reverse graph from the identity.
        let dist = mat.graph().reversed().bfs_distances(0);
        Ok(dist
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0))
    }

    /// Scrambles the solved configuration with `steps` random legal moves.
    pub fn scramble(&self, steps: usize, rng: &mut XorShift64) -> BagConfig {
        let gens = self.net.generators();
        let mut cur = scg_perm::Perm::identity(self.num_balls());
        for _ in 0..steps {
            let g = gens[rng.gen_range(gens.len())];
            cur = g.apply(&cur).expect("legal move applies"); // scg-allow(SCG001): generators come from the validated network of this game
        }
        BagConfig::from(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scg_core::SMALL_NET_CAP;

    fn ms_game() -> BagGame {
        BagGame::new(SuperCayleyGraph::macro_star(3, 2).unwrap())
    }

    #[test]
    fn moves_are_classified() {
        let game = ms_game();
        let moves = game.moves();
        let nucleus = moves
            .iter()
            .filter(|(_, k)| *k == MoveKind::RearrangeLeftmost)
            .count();
        let boxes = moves
            .iter()
            .filter(|(_, k)| *k == MoveKind::RearrangeBoxes)
            .count();
        assert_eq!(nucleus, 2); // T2, T3
        assert_eq!(boxes, 2); // S2, S3
    }

    #[test]
    fn solve_sorts_scrambles() {
        let game = ms_game();
        let mut rng = XorShift64::new(42);
        for steps in [1, 5, 20] {
            let c = game.scramble(steps, &mut rng);
            let sol = game.solve(&c).unwrap();
            assert!(game.replay(&c, &sol).unwrap().is_solved());
        }
    }

    #[test]
    fn optimal_solution_matches_graph_distance() {
        let game = BagGame::new(SuperCayleyGraph::macro_star(2, 2).unwrap());
        let g = game.network().to_graph(SMALL_NET_CAP).unwrap();
        let dists = g.bfs_distances(0);
        let mut rng = XorShift64::new(9);
        for _ in 0..10 {
            let c = game.scramble(12, &mut rng);
            let sol = game.solve_optimal(&c, 1_000_000).unwrap();
            // Distance from c to identity: star-class hosts are undirected,
            // so BFS distance from identity to c equals it.
            assert_eq!(sol.len() as u32, dists[c.as_perm().rank() as usize]);
        }
    }

    #[test]
    fn rotator_game_solves_via_bfs() {
        let game = BagGame::new(SuperCayleyGraph::macro_rotator(2, 2).unwrap());
        let mut rng = XorShift64::new(4);
        let c = game.scramble(6, &mut rng);
        let sol = game.solve(&c).unwrap();
        assert!(game.replay(&c, &sol).unwrap().is_solved());
    }

    #[test]
    fn gods_number_equals_diameter() {
        let game = BagGame::new(SuperCayleyGraph::macro_star(2, 2).unwrap());
        assert_eq!(game.gods_number(SMALL_NET_CAP).unwrap(), 8); // measured MS(2,2) diameter
                                                                 // Directed rotator: the worst configuration still solves within the
                                                                 // God's number, and some configuration attains it.
        let mr = BagGame::new(SuperCayleyGraph::macro_rotator(2, 2).unwrap());
        let g = mr.gods_number(SMALL_NET_CAP).unwrap();
        let mut rng = XorShift64::new(2);
        for _ in 0..20 {
            let c = mr.scramble(30, &mut rng);
            assert!(mr.solve_optimal(&c, 1_000_000).unwrap().len() as u32 <= g);
        }
    }

    #[test]
    fn apply_rejects_wrong_degree_moves() {
        let game = ms_game();
        let c = BagConfig::solved(7).unwrap();
        assert!(game.apply(&c, Generator::transposition(9)).is_err());
    }
}
