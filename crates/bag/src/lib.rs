//! The ball-arrangement game (BAG) of §2.
//!
//! The game: `l` boxes and `k = nl + 1` distinct balls — one ball of color 0
//! and `n` balls of color `i` for each `i = 1..=l`. One ball sits outside;
//! each box holds `n` balls. Per step the player may (1) rearrange the
//! leftmost `n + 1` balls (the outside ball plus the leftmost box) with a
//! *nucleus* move, or (2) rearrange boxes with a *super* move. The goal is
//! the sorted configuration: ball 1 outside, balls of color `i` in box `i`,
//! in order.
//!
//! The state-transition graph of the game **is** the corresponding super
//! Cayley graph: configurations are permutations, legal moves are
//! generators, solving the game is routing to the identity, and the game's
//! "God's number" is the network diameter. [`BagGame`] makes the
//! correspondence executable: it wraps a [`SuperCayleyGraph`] and exposes
//! play, solving, and scrambling in game vocabulary.
//!
//! [`SuperCayleyGraph`]: scg_core::SuperCayleyGraph
//!
//! # Examples
//!
//! ```
//! use scg_bag::{BagConfig, BagGame};
//! use scg_core::SuperCayleyGraph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Macro-star rules: 3 boxes of 2 balls.
//! let game = BagGame::new(SuperCayleyGraph::macro_star(3, 2)?);
//! let start = BagConfig::from_symbols(&[3, 2, 1, 4, 5, 6, 7])?;
//! let solution = game.solve(&start)?;
//! assert_eq!(game.replay(&start, &solution)?, BagConfig::solved(7)?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod config;
mod game;

pub use config::BagConfig;
pub use game::{BagGame, MoveKind};
