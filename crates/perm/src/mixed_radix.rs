//! Mixed-radix counters (factorial number system and friends).
//!
//! The `2 × 3 × ⋯ × k` mesh of Corollary 7 indexes its nodes by mixed-radix
//! tuples `(a_2, …, a_k)` with `a_i ∈ 0..i`; this module provides the counter
//! arithmetic those embeddings need.

use std::fmt;

/// A little-endian mixed-radix counter: digit `i` ranges over `0..radix[i]`.
///
/// # Examples
///
/// ```
/// use scg_perm::MixedRadix;
///
/// let mr = MixedRadix::new(vec![2, 3]);
/// assert_eq!(mr.capacity(), 6);
/// assert_eq!(mr.to_index(&[1, 2]), Some(5));
/// assert_eq!(mr.digits(5), vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedRadix {
    radices: Vec<u64>,
}

impl MixedRadix {
    /// Creates a counter with the given per-digit radices (all must be >= 1).
    ///
    /// # Panics
    ///
    /// Panics if any radix is zero or the total capacity overflows `u64`.
    #[must_use]
    pub fn new(radices: Vec<u64>) -> Self {
        assert!(radices.iter().all(|&r| r >= 1), "radices must be >= 1");
        let mut cap: u64 = 1;
        for &r in &radices {
            cap = cap
                .checked_mul(r)
                // scg-allow(SCG001): documented panic — capacity overflow is a caller bug, per the doc comment
                .expect("mixed-radix capacity overflows u64");
        }
        MixedRadix { radices }
    }

    /// The factorial number system with digits `a_2 … a_k` (`a_i ∈ 0..i`),
    /// matching the `2 × 3 × ⋯ × k` mesh of the paper's Corollary 7.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > 20`.
    #[must_use]
    pub fn factorial_system(k: usize) -> Self {
        assert!((2..=20).contains(&k), "factorial system needs 2 <= k <= 20");
        MixedRadix::new((2..=k as u64).collect())
    }

    /// The per-digit radices.
    #[must_use]
    pub fn radices(&self) -> &[u64] {
        &self.radices
    }

    /// Number of digits.
    #[must_use]
    pub fn num_digits(&self) -> usize {
        self.radices.len()
    }

    /// Total number of representable tuples.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.radices.iter().product()
    }

    /// Decodes a linear index into digits (little-endian: digit 0 varies
    /// fastest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    #[must_use]
    pub fn digits(&self, index: u64) -> Vec<u64> {
        assert!(index < self.capacity(), "index out of range");
        let mut rem = index;
        let mut out = Vec::with_capacity(self.radices.len());
        for &r in &self.radices {
            out.push(rem % r);
            rem /= r;
        }
        out
    }

    /// Encodes digits into a linear index; `None` if any digit is out of
    /// range or the length mismatches.
    #[must_use]
    pub fn to_index(&self, digits: &[u64]) -> Option<u64> {
        if digits.len() != self.radices.len() {
            return None;
        }
        let mut index = 0u64;
        let mut weight = 1u64;
        for (&d, &r) in digits.iter().zip(&self.radices) {
            if d >= r {
                return None;
            }
            index += d * weight;
            weight *= r;
        }
        Some(index)
    }

    /// Iterates all tuples in index order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<u64>> + '_ {
        (0..self.capacity()).map(move |i| self.digits(i))
    }

    /// Decodes a linear index into *reflected Gray* digits: consecutive
    /// indices yield tuples differing in exactly one digit, by exactly
    /// `±1`. (The mixed-radix generalization of the binary reflected Gray
    /// code; this is what makes snake-order mesh embeddings single-step.)
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity()`.
    #[must_use]
    pub fn gray_digits(&self, index: u64) -> Vec<u64> {
        assert!(index < self.capacity(), "index out of range");
        let mut rem = index;
        let mut out = Vec::with_capacity(self.radices.len());
        for &r in &self.radices {
            let q = rem / r;
            let d = rem % r;
            out.push(if q.is_multiple_of(2) { d } else { r - 1 - d });
            rem = q;
        }
        out
    }
}

impl fmt::Display for MixedRadix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MixedRadix[")?;
        for (i, r) in self.radices.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_system_capacity_is_factorial() {
        let mr = MixedRadix::factorial_system(5);
        assert_eq!(mr.capacity(), 120);
        assert_eq!(mr.radices(), &[2, 3, 4, 5]);
    }

    #[test]
    fn roundtrip_all_indices() {
        let mr = MixedRadix::new(vec![2, 3, 4]);
        for i in 0..mr.capacity() {
            let d = mr.digits(i);
            assert_eq!(mr.to_index(&d), Some(i));
        }
    }

    #[test]
    fn to_index_rejects_bad_digits() {
        let mr = MixedRadix::new(vec![2, 3]);
        assert_eq!(mr.to_index(&[2, 0]), None);
        assert_eq!(mr.to_index(&[0]), None);
    }

    #[test]
    fn gray_digits_change_one_digit_by_one() {
        let mr = MixedRadix::new(vec![2, 3, 4, 5]);
        let mut prev = mr.gray_digits(0);
        assert_eq!(prev, vec![0, 0, 0, 0]);
        for i in 1..mr.capacity() {
            let cur = mr.gray_digits(i);
            let diffs: Vec<usize> = (0..cur.len()).filter(|&j| cur[j] != prev[j]).collect();
            assert_eq!(diffs.len(), 1, "index {i}");
            let j = diffs[0];
            assert_eq!(cur[j].abs_diff(prev[j]), 1, "index {i}");
            prev = cur;
        }
    }

    #[test]
    fn gray_digits_are_a_bijection() {
        let mr = MixedRadix::new(vec![3, 2, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..mr.capacity() {
            assert!(seen.insert(mr.gray_digits(i)));
        }
        assert_eq!(seen.len() as u64, mr.capacity());
    }

    #[test]
    fn iter_visits_every_tuple_once() {
        let mr = MixedRadix::new(vec![3, 2]);
        let tuples: Vec<_> = mr.iter().collect();
        assert_eq!(tuples.len(), 6);
        assert_eq!(tuples[0], vec![0, 0]);
        assert_eq!(tuples[5], vec![2, 1]);
    }
}
