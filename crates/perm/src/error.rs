use std::error::Error;
use std::fmt;

/// Error produced when constructing or manipulating a [`Perm`](crate::Perm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PermError {
    /// The requested degree is zero or exceeds [`MAX_DEGREE`](crate::MAX_DEGREE).
    DegreeOutOfRange {
        /// The offending degree.
        degree: usize,
    },
    /// The symbol sequence is not a permutation of `1..=k` (duplicate,
    /// missing, or out-of-range symbol).
    NotAPermutation {
        /// The first offending symbol encountered.
        symbol: u8,
    },
    /// A lexicographic rank was `>= k!`.
    RankOutOfRange {
        /// The offending rank.
        rank: u64,
        /// The degree whose factorial bounds valid ranks.
        degree: usize,
    },
    /// A 1-based position index was outside `1..=k`.
    PositionOutOfRange {
        /// The offending position.
        position: usize,
        /// The permutation degree.
        degree: usize,
    },
    /// A degree exceeds the packed-kernel capacity
    /// [`MAX_PACKED_DEGREE`](crate::MAX_PACKED_DEGREE) (16 symbols at
    /// 4 bits each fill the `u64` word exactly).
    PackedDegreeOutOfRange {
        /// The offending degree.
        degree: usize,
    },
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PermError::DegreeOutOfRange { degree } => {
                write!(f, "degree {degree} is outside 1..={}", crate::MAX_DEGREE)
            }
            PermError::NotAPermutation { symbol } => {
                write!(
                    f,
                    "symbol sequence is not a permutation (offending symbol {symbol})"
                )
            }
            PermError::RankOutOfRange { rank, degree } => {
                write!(f, "rank {rank} is not below {degree}!")
            }
            PermError::PositionOutOfRange { position, degree } => {
                write!(f, "position {position} is outside 1..={degree}")
            }
            PermError::PackedDegreeOutOfRange { degree } => {
                write!(
                    f,
                    "degree {degree} exceeds the packed-kernel limit {}",
                    crate::MAX_PACKED_DEGREE
                )
            }
        }
    }
}

impl Error for PermError {}
