use std::fmt;
use std::str::FromStr;

use crate::cast::sym_u8;
use crate::error::PermError;
use crate::rank;
use crate::rng::XorShift64;

/// Maximum supported permutation degree.
///
/// `20! < 2^64`, so every permutation of degree at most `MAX_DEGREE` has a
/// lexicographic rank representable in a `u64`.
pub const MAX_DEGREE: usize = 20;

/// A permutation of the symbols `1..=k` for some degree `k <= MAX_DEGREE`.
///
/// A `Perm` doubles as (a) the label of a node in a (super) Cayley graph and
/// (b) an element of the symmetric group acting on *positions*. Positions are
/// 1-based to match the paper's notation `U = u_1 u_2 … u_k`.
///
/// The type is `Copy` (21 bytes), so it is freely passed by value.
///
/// # Examples
///
/// ```
/// use scg_perm::Perm;
///
/// # fn main() -> Result<(), scg_perm::PermError> {
/// let id = Perm::identity(5);
/// let u = id.swapped(1, 3)?; // the transposition T_3 applied to the identity
/// assert_eq!(u.symbols(), &[3, 2, 1, 4, 5]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Perm {
    symbols: [u8; MAX_DEGREE],
    degree: u8,
}

impl Perm {
    /// The identity permutation `1 2 … k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`MAX_DEGREE`] (a programming error,
    /// not an input error: degrees are fixed small constants chosen by the
    /// caller).
    #[must_use]
    pub fn identity(k: usize) -> Self {
        assert!(
            (1..=MAX_DEGREE).contains(&k),
            "degree {k} outside 1..={MAX_DEGREE}"
        );
        let mut symbols = [0u8; MAX_DEGREE];
        for (i, s) in symbols.iter_mut().enumerate().take(k) {
            *s = sym_u8(i + 1);
        }
        Perm {
            symbols,
            degree: sym_u8(k),
        }
    }

    /// Builds a permutation from an explicit symbol sequence `u_1 … u_k`.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::DegreeOutOfRange`] if `symbols` is empty or longer
    /// than [`MAX_DEGREE`], and [`PermError::NotAPermutation`] if the sequence
    /// is not a rearrangement of `1..=k`.
    pub fn from_symbols(symbols: &[u8]) -> Result<Self, PermError> {
        let k = symbols.len();
        if !(1..=MAX_DEGREE).contains(&k) {
            return Err(PermError::DegreeOutOfRange { degree: k });
        }
        let mut seen = [false; MAX_DEGREE + 1];
        let mut buf = [0u8; MAX_DEGREE];
        for (i, &s) in symbols.iter().enumerate() {
            if s == 0 || s as usize > k || seen[s as usize] {
                return Err(PermError::NotAPermutation { symbol: s });
            }
            seen[s as usize] = true;
            buf[i] = s;
        }
        Ok(Perm {
            symbols: buf,
            degree: sym_u8(k),
        })
    }

    /// A uniformly random permutation of degree `k` (Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`MAX_DEGREE`].
    #[must_use]
    pub fn random(k: usize, rng: &mut XorShift64) -> Self {
        let mut p = Perm::identity(k);
        rng.shuffle(&mut p.symbols[..k]);
        p
    }

    /// The degree `k` (number of symbols).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree as usize
    }

    /// The symbol sequence `u_1 … u_k` as a slice.
    #[must_use]
    pub fn symbols(&self) -> &[u8] {
        &self.symbols[..self.degree as usize]
    }

    /// The symbol at 1-based position `pos` (`u_pos`).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside `1..=k`.
    #[must_use]
    pub fn symbol_at(&self, pos: usize) -> u8 {
        assert!(
            (1..=self.degree as usize).contains(&pos),
            "position {pos} outside 1..={}",
            self.degree
        );
        self.symbols[pos - 1]
    }

    /// The 1-based position holding `symbol` (the inverse image).
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside `1..=k`.
    #[must_use]
    pub fn position_of(&self, symbol: u8) -> usize {
        assert!(
            symbol >= 1 && symbol <= self.degree,
            "symbol {symbol} outside 1..={}",
            self.degree
        );
        // Degrees are at most 20; a linear scan beats any index structure.
        self.symbols()
            .iter()
            .position(|&s| s == symbol)
            // scg-allow(SCG001): symbol is asserted in 1..=k above, and a valid Perm contains every such symbol
            .expect("valid Perm contains every symbol")
            + 1
    }

    /// Functional composition `self ∘ other`: the permutation mapping
    /// `i ↦ self(other(i))`.
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ.
    #[must_use]
    pub fn compose(&self, other: &Perm) -> Perm {
        assert_eq!(self.degree, other.degree, "degree mismatch in compose");
        let k = self.degree as usize;
        let mut out = *self;
        for i in 0..k {
            out.symbols[i] = self.symbols[other.symbols[i] as usize - 1];
        }
        out
    }

    /// [`compose`](Perm::compose) writing the result into `out` instead of
    /// returning a fresh permutation — the hot-loop form for callers that
    /// reuse one scratch slot across many compositions.
    ///
    /// Equivalent to `*out = self.compose(other)` for every input.
    ///
    /// # Panics
    ///
    /// Panics if the degrees differ.
    pub fn compose_into(&self, other: &Perm, out: &mut Perm) {
        assert_eq!(self.degree, other.degree, "degree mismatch in compose_into");
        // Copy first so out's trailing bytes match self's (always zero in a
        // valid Perm) — derived equality and hashing see the whole array.
        *out = *self;
        let k = self.degree as usize;
        for i in 0..k {
            out.symbols[i] = self.symbols[other.symbols[i] as usize - 1];
        }
    }

    /// The group inverse: `self.inverse().compose(&self)` is the identity.
    #[must_use]
    pub fn inverse(&self) -> Perm {
        let k = self.degree as usize;
        let mut out = *self;
        for i in 0..k {
            out.symbols[self.symbols[i] as usize - 1] = sym_u8(i + 1);
        }
        out
    }

    /// Whether this is the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.symbols()
            .iter()
            .enumerate()
            .all(|(i, &s)| s as usize == i + 1)
    }

    /// Number of inversions: pairs `i < j` with `u_i > u_j`.
    ///
    /// This equals the distance to the identity in the bubble-sort graph.
    #[must_use]
    pub fn inversions(&self) -> usize {
        let s = self.symbols();
        let mut count = 0;
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                if s[i] > s[j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// Whether the permutation is even (expressible as an even number of
    /// transpositions).
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.inversions().is_multiple_of(2)
    }

    /// The cycle decomposition of the map `position ↦ symbol`, omitting
    /// fixed points. Each cycle lists positions; `cycle[j+1]` holds the
    /// symbol that belongs at `cycle[j]`.
    ///
    /// Cycles are returned smallest-leader-first and each cycle starts at its
    /// smallest position, so the output is canonical.
    #[must_use]
    pub fn cycles(&self) -> Vec<Vec<u8>> {
        let k = self.degree as usize;
        let mut seen = [false; MAX_DEGREE + 1];
        let mut out = Vec::new();
        for start in 1..=k {
            if seen[start] || self.symbols[start - 1] as usize == start {
                continue;
            }
            let mut cycle = Vec::new();
            let mut pos = start;
            while !seen[pos] {
                seen[pos] = true;
                cycle.push(sym_u8(pos));
                pos = self.symbols[pos - 1] as usize;
            }
            out.push(cycle);
        }
        out
    }

    /// The order of the permutation as a group element: the least `m >= 1`
    /// with `p^m = identity` (the lcm of its cycle lengths).
    #[must_use]
    pub fn order(&self) -> u64 {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.cycles()
            .iter()
            .map(|c| c.len() as u64)
            .fold(1u64, |acc, len| acc / gcd(acc, len) * len)
    }

    /// The conjugate `q ∘ self ∘ q^{-1}` — the same cycle structure with
    /// symbols relabelled through `q`.
    ///
    /// # Panics
    ///
    /// Panics if degrees differ.
    #[must_use]
    pub fn conjugated_by(&self, q: &Perm) -> Perm {
        q.compose(self).compose(&q.inverse())
    }

    /// Number of symbols not in their home position.
    #[must_use]
    pub fn misplaced(&self) -> usize {
        self.symbols()
            .iter()
            .enumerate()
            .filter(|&(i, &s)| s as usize != i + 1)
            .count()
    }

    // ----- primitive rearrangements used by the paper's generators -----

    /// Returns a copy with the symbols at 1-based positions `i` and `j`
    /// exchanged. `swapped(1, i)` is the star-graph transposition generator
    /// `T_i`; `swapped(i, j)` is the transposition-network generator `T_{i,j}`.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PositionOutOfRange`] if either position is
    /// outside `1..=k`.
    pub fn swapped(&self, i: usize, j: usize) -> Result<Perm, PermError> {
        let k = self.degree as usize;
        for pos in [i, j] {
            if !(1..=k).contains(&pos) {
                return Err(PermError::PositionOutOfRange {
                    position: pos,
                    degree: k,
                });
            }
        }
        let mut out = *self;
        out.symbols.swap(i - 1, j - 1);
        Ok(out)
    }

    /// The insertion generator `I_i`: cyclically shifts the leftmost `i`
    /// symbols one position to the left, i.e.
    /// `u_1 u_2 … u_i … ↦ u_2 … u_i u_1 …`.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PositionOutOfRange`] if `i` is outside `2..=k`.
    pub fn prefix_rotated_left(&self, i: usize) -> Result<Perm, PermError> {
        let k = self.degree as usize;
        if !(2..=k).contains(&i) {
            return Err(PermError::PositionOutOfRange {
                position: i,
                degree: k,
            });
        }
        let mut out = *self;
        out.symbols[..i].rotate_left(1);
        Ok(out)
    }

    /// The selection generator `I_i^{-1}`: cyclically shifts the leftmost `i`
    /// symbols one position to the right, i.e.
    /// `u_1 … u_{i-1} u_i … ↦ u_i u_1 … u_{i-1} …`.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PositionOutOfRange`] if `i` is outside `2..=k`.
    pub fn prefix_rotated_right(&self, i: usize) -> Result<Perm, PermError> {
        let k = self.degree as usize;
        if !(2..=k).contains(&i) {
            return Err(PermError::PositionOutOfRange {
                position: i,
                degree: k,
            });
        }
        let mut out = *self;
        out.symbols[..i].rotate_right(1);
        Ok(out)
    }

    /// The rotation generator `R^i_n`: cyclically shifts the rightmost `k-1`
    /// symbols `u_2 … u_k` to the **right** by `n·i` positions, leaving `u_1`
    /// fixed. With `k = nl + 1` this moves every length-`n` super-symbol
    /// (box) `i` places toward the tail, wrapping around.
    ///
    /// `amount` is taken modulo `k - 1`, so any integer multiple works.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    #[must_use]
    pub fn suffix_rotated_right(&self, amount: usize) -> Perm {
        let k = self.degree as usize;
        assert!(k >= 2, "suffix rotation needs degree >= 2");
        let m = amount % (k - 1);
        let mut out = *self;
        out.symbols[1..k].rotate_right(m);
        out
    }

    /// The swap generator `S_{n,i}`: exchanges super-symbol 1 (positions
    /// `2..=n+1`) with super-symbol `i` (positions `(i-1)n+2 ..= i·n+1`),
    /// preserving the order of symbols inside each block. Requires
    /// `k = n·l + 1` with `2 <= i <= l`.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PositionOutOfRange`] if the degree is not of the
    /// form `n·l + 1`, or `i` does not address a box other than the first.
    pub fn blocks_swapped(&self, n: usize, i: usize) -> Result<Perm, PermError> {
        let k = self.degree as usize;
        if n == 0 || !(k - 1).is_multiple_of(n) {
            return Err(PermError::PositionOutOfRange {
                position: n,
                degree: k,
            });
        }
        let l = (k - 1) / n;
        if !(2..=l).contains(&i) {
            return Err(PermError::PositionOutOfRange {
                position: i,
                degree: k,
            });
        }
        let mut out = *self;
        let (a, b) = (1, (i - 1) * n + 1); // 0-based starts of boxes 1 and i
        for off in 0..n {
            out.symbols.swap(a + off, b + off);
        }
        Ok(out)
    }

    /// Interprets `self` as an element of the symmetric group acting on
    /// positions and applies it to the node label `label`, yielding the label
    /// `v` with `v_i = label_{self(i)}`.
    ///
    /// This is the right action used by Cayley graphs: traversing the link of
    /// generator `g` from node `U` leads to the node labelled
    /// `g.act_on_label(U)` (see `scg-core` for the generator types).
    ///
    /// # Panics
    ///
    /// Panics if degrees differ.
    #[must_use]
    pub fn act_on_label(&self, label: &Perm) -> Perm {
        label.compose(self)
    }
}

impl fmt::Debug for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perm({self})")
    }
}

impl fmt::Display for Perm {
    /// Formats as the paper writes labels: the symbol sequence separated by
    /// spaces, e.g. `3 1 4 2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.symbols().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for Perm {
    type Err = PermError;

    /// Parses a whitespace-separated symbol sequence, e.g. `"3 1 4 2"`.
    ///
    /// # Errors
    ///
    /// Any token that fails to parse as a `u8` yields
    /// [`PermError::NotAPermutation`]; structural violations are reported as
    /// by [`Perm::from_symbols`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let symbols: Vec<u8> = s
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u8>()
                    .map_err(|_| PermError::NotAPermutation { symbol: 0 })
            })
            .collect::<Result<_, _>>()?;
        Perm::from_symbols(&symbols)
    }
}

impl TryFrom<&[u8]> for Perm {
    type Error = PermError;

    fn try_from(value: &[u8]) -> Result<Self, Self::Error> {
        Perm::from_symbols(value)
    }
}

impl AsRef<[u8]> for Perm {
    fn as_ref(&self) -> &[u8] {
        self.symbols()
    }
}

/// Lexicographic ranking methods (Lehmer code based); see also
/// [`factorial`](crate::factorial).
impl Perm {
    /// The lexicographic rank of this permutation among all `k!` permutations
    /// of degree `k` (the identity has rank 0).
    #[must_use]
    pub fn rank(&self) -> u64 {
        rank::rank(self)
    }

    /// The permutation of degree `k` with lexicographic rank `r`.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::DegreeOutOfRange`] for a bad degree and
    /// [`PermError::RankOutOfRange`] if `r >= k!`.
    pub fn from_rank(k: usize, r: u64) -> Result<Self, PermError> {
        rank::unrank(k, r)
    }

    /// The Lehmer code: digit `i` (0-based) counts the symbols to the right
    /// of position `i+1` that are smaller than `u_{i+1}`.
    #[must_use]
    pub fn lehmer(&self) -> Vec<u8> {
        rank::lehmer(self)
    }

    /// Rebuilds a permutation from its Lehmer code.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::DegreeOutOfRange`] for a bad length and
    /// [`PermError::NotAPermutation`] if any digit `d_i` exceeds `k - 1 - i`.
    pub fn from_lehmer(code: &[u8]) -> Result<Self, PermError> {
        rank::from_lehmer(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        for k in 1..=MAX_DEGREE {
            let id = Perm::identity(k);
            assert!(id.is_identity());
            assert_eq!(id.degree(), k);
            assert_eq!(id.inverse(), id);
            assert_eq!(id.rank(), 0);
        }
    }

    #[test]
    fn from_symbols_validates() {
        assert!(Perm::from_symbols(&[]).is_err());
        assert!(Perm::from_symbols(&[1, 1]).is_err());
        assert!(Perm::from_symbols(&[0, 1]).is_err());
        assert!(Perm::from_symbols(&[1, 3]).is_err());
        assert!(Perm::from_symbols(&[2, 1, 3]).is_ok());
    }

    #[test]
    fn compose_and_inverse() {
        let a = Perm::from_symbols(&[2, 3, 1, 4]).unwrap();
        let b = Perm::from_symbols(&[4, 1, 2, 3]).unwrap();
        let ab = a.compose(&b);
        // (a∘b)(1) = a(b(1)) = a(4) = 4
        assert_eq!(ab.symbol_at(1), 4);
        assert_eq!(a.inverse().compose(&a), Perm::identity(4));
        assert_eq!(a.compose(&a.inverse()), Perm::identity(4));
    }

    #[test]
    fn compose_into_matches_compose_exhaustively() {
        // Byte-for-byte agreement (trailing array bytes included, since
        // equality and hashing are derived on the whole symbol array),
        // over all of S_4 × S_4 — and the scratch slot is safely reusable.
        let mut out = Perm::identity(4);
        for a in crate::Permutations::lexicographic(4) {
            for b in crate::Permutations::lexicographic(4) {
                a.compose_into(&b, &mut out);
                assert_eq!(out, a.compose(&b), "{a} ∘ {b}");
            }
        }
    }

    #[test]
    fn position_of_is_inverse_image() {
        let p = Perm::from_symbols(&[3, 1, 4, 2]).unwrap();
        for s in 1..=4u8 {
            assert_eq!(p.symbol_at(p.position_of(s)), s);
        }
    }

    #[test]
    fn swapped_is_involution() {
        let p = Perm::from_symbols(&[5, 4, 3, 2, 1]).unwrap();
        let q = p.swapped(1, 4).unwrap();
        assert_eq!(q.swapped(1, 4).unwrap(), p);
        assert!(p.swapped(0, 2).is_err());
        assert!(p.swapped(1, 6).is_err());
    }

    #[test]
    fn prefix_rotations_invert_each_other() {
        let p = Perm::from_symbols(&[3, 1, 4, 2, 5]).unwrap();
        for i in 2..=5 {
            let left = p.prefix_rotated_left(i).unwrap();
            assert_eq!(left.prefix_rotated_right(i).unwrap(), p);
        }
        assert!(p.prefix_rotated_left(1).is_err());
        assert!(p.prefix_rotated_left(6).is_err());
    }

    #[test]
    fn insertion_matches_paper_definition() {
        // I_i(U) = u_2 … u_i u_1 u_{i+1} … u_k  (Definition 1)
        let u = Perm::from_symbols(&[6, 1, 2, 3, 4, 5]).unwrap();
        let v = u.prefix_rotated_left(4).unwrap();
        assert_eq!(v.symbols(), &[1, 2, 3, 6, 4, 5]);
        // I_i^{-1}(U) = u_i u_1 … u_{i-1} u_{i+1} … u_k  (Definition 2)
        let w = u.prefix_rotated_right(4).unwrap();
        assert_eq!(w.symbols(), &[3, 6, 1, 2, 4, 5]);
    }

    #[test]
    fn suffix_rotation_matches_paper_definition() {
        // R^i(u_{1:k}) = u_1 u_{k-in+1:k} u_{2:k-in}  (Definition 3), n=2, k=7.
        let u = Perm::from_symbols(&[7, 1, 2, 3, 4, 5, 6]).unwrap();
        let v = u.suffix_rotated_right(2); // i = 1, n = 2
        assert_eq!(v.symbols(), &[7, 5, 6, 1, 2, 3, 4]);
        // R^l = identity rotation (amount = k-1)
        assert_eq!(u.suffix_rotated_right(6), u);
    }

    #[test]
    fn block_swap_matches_paper_definition() {
        // k = 7 = 2*3 + 1, boxes of size n=3: positions 2-4 and 5-7.
        let u = Perm::from_symbols(&[7, 1, 2, 3, 4, 5, 6]).unwrap();
        let v = u.blocks_swapped(3, 2).unwrap();
        assert_eq!(v.symbols(), &[7, 4, 5, 6, 1, 2, 3]);
        assert_eq!(v.blocks_swapped(3, 2).unwrap(), u);
        assert!(u.blocks_swapped(3, 3).is_err());
        assert!(u.blocks_swapped(4, 2).is_err());
    }

    #[test]
    fn order_is_lcm_of_cycle_lengths() {
        assert_eq!(Perm::identity(5).order(), 1);
        // One 2-cycle and one 3-cycle → order 6.
        let p = Perm::from_symbols(&[2, 1, 4, 5, 3]).unwrap();
        assert_eq!(p.order(), 6);
        // p^order = identity.
        let mut q = Perm::identity(5);
        for _ in 0..p.order() {
            q = q.compose(&p);
        }
        assert!(q.is_identity());
    }

    #[test]
    fn conjugation_preserves_cycle_structure() {
        let p = Perm::from_symbols(&[2, 1, 4, 5, 3]).unwrap();
        let q = Perm::from_symbols(&[3, 5, 1, 2, 4]).unwrap();
        let c = p.conjugated_by(&q);
        let mut lens: Vec<usize> = p.cycles().iter().map(Vec::len).collect();
        let mut clens: Vec<usize> = c.cycles().iter().map(Vec::len).collect();
        lens.sort_unstable();
        clens.sort_unstable();
        assert_eq!(lens, clens);
        assert_eq!(c.order(), p.order());
    }

    #[test]
    fn cycles_are_canonical() {
        let p = Perm::from_symbols(&[2, 1, 3, 5, 4]).unwrap();
        assert_eq!(p.cycles(), vec![vec![1, 2], vec![4, 5]]);
        assert_eq!(Perm::identity(5).cycles(), Vec::<Vec<u8>>::new());
        assert_eq!(p.misplaced(), 4);
    }

    #[test]
    fn parity_matches_inversions() {
        let p = Perm::from_symbols(&[2, 1, 3]).unwrap();
        assert!(!p.is_even());
        assert_eq!(p.inversions(), 1);
        let q = Perm::from_symbols(&[2, 3, 1]).unwrap();
        assert!(q.is_even());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let p = Perm::from_symbols(&[3, 1, 4, 2]).unwrap();
        let s = p.to_string();
        assert_eq!(s, "3 1 4 2");
        assert_eq!(s.parse::<Perm>().unwrap(), p);
        assert!("1 2 x".parse::<Perm>().is_err());
    }

    #[test]
    fn random_is_valid() {
        let mut rng = XorShift64::new(0xDECAF);
        for _ in 0..50 {
            let p = Perm::random(9, &mut rng);
            assert!(Perm::from_symbols(p.symbols()).is_ok());
        }
    }
}
