//! Enumeration of the symmetric group in lexicographic order.

use crate::perm::Perm;

/// Iterator over all `k!` permutations of degree `k` in lexicographic order.
///
/// # Examples
///
/// ```
/// use scg_perm::{factorial, Permutations};
///
/// let count = Permutations::lexicographic(4).count();
/// assert_eq!(count as u64, factorial(4));
/// ```
#[derive(Debug, Clone)]
pub struct Permutations {
    next: Option<Perm>,
}

impl Permutations {
    /// Iterates the symmetric group `S_k` in lexicographic order, starting at
    /// the identity.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`MAX_DEGREE`](crate::MAX_DEGREE).
    #[must_use]
    pub fn lexicographic(k: usize) -> Self {
        Permutations {
            next: Some(Perm::identity(k)),
        }
    }

    /// Iterates the tail of the lexicographic order beginning at the
    /// permutation of rank `start` — the chunked parallel sweeps of the
    /// rank-transition tables start one of these per thread.
    ///
    /// # Errors
    ///
    /// Returns a [`PermError`](crate::PermError) if `k` is out of range or
    /// `start >= k!`.
    pub fn starting_at_rank(k: usize, start: u64) -> Result<Self, crate::PermError> {
        Ok(Permutations {
            next: Some(Perm::from_rank(k, start)?),
        })
    }
}

impl Iterator for Permutations {
    type Item = Perm;

    fn next(&mut self) -> Option<Perm> {
        let current = self.next?;
        self.next = next_permutation(&current);
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Remaining = k! − rank of the next permutation (exact).
        let remaining = self.next.as_ref().map_or(0, |p| {
            (crate::rank::factorial(p.degree()) - p.rank()) as usize
        });
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Permutations {}

impl std::iter::FusedIterator for Permutations {}

/// The lexicographic successor of `p`, or `None` for the final permutation.
fn next_permutation(p: &Perm) -> Option<Perm> {
    let mut s: Vec<u8> = p.symbols().to_vec();
    let k = s.len();
    if k < 2 {
        return None;
    }
    // Standard next_permutation: find the longest non-increasing suffix.
    let mut i = k - 1;
    while i > 0 && s[i - 1] >= s[i] {
        i -= 1;
    }
    if i == 0 {
        return None;
    }
    let pivot = i - 1;
    let mut j = k - 1;
    while s[j] <= s[pivot] {
        j -= 1;
    }
    s.swap(pivot, j);
    s[i..].reverse();
    // scg-allow(SCG001): the pivot/suffix rearrangement of a valid permutation stays a permutation
    Some(Perm::from_symbols(&s).expect("successor of a valid permutation is valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::factorial;

    #[test]
    fn enumerates_in_rank_order() {
        for k in 1..=6 {
            let mut expected_rank = 0u64;
            for p in Permutations::lexicographic(k) {
                assert_eq!(p.rank(), expected_rank);
                expected_rank += 1;
            }
            assert_eq!(expected_rank, factorial(k));
        }
    }

    #[test]
    fn degree_one_has_single_element() {
        let all: Vec<_> = Permutations::lexicographic(1).collect();
        assert_eq!(all, vec![Perm::identity(1)]);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = Permutations::lexicographic(4);
        assert_eq!(it.len(), 24);
        it.next();
        it.next();
        assert_eq!(it.len(), 22);
        assert_eq!(it.by_ref().count(), 22);
        assert_eq!(it.len(), 0);
        assert_eq!(it.next(), None); // fused
        assert_eq!(it.next(), None);
    }
}
