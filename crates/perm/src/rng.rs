//! A minimal vendored PRNG.
//!
//! The workspace builds with no network access, so it cannot depend on the
//! `rand` crate. Scrambling, benchmarking, and randomized tests only need a
//! small, fast, seedable generator — an xorshift64* stepped from a
//! SplitMix64-scrambled seed is more than enough and keeps the dependency
//! graph empty.

/// A seedable xorshift64* pseudo-random generator.
///
/// Deterministic for a given seed, `Copy`-cheap, and good enough for
/// scrambles, shuffles, and randomized test inputs. **Not** cryptographic.
///
/// # Examples
///
/// ```
/// use scg_perm::XorShift64;
///
/// let mut rng = XorShift64::new(42);
/// let a = rng.gen_range(10);
/// assert!(a < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid:
    /// the seed is scrambled through SplitMix64 so similar seeds do not
    /// produce correlated streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // SplitMix64 finalizer; never yields 0 for the xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A pseudo-random value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift mapping; bias is negligible for the small ranges
        // (≤ 20!) used in this workspace.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// A pseudo-random `u64` below `n` (`n > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelated() {
        let mut a = XorShift64::new(0);
        let mut b = XorShift64::new(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = XorShift64::new(3);
        for n in 1..50 {
            for _ in 0..20 {
                assert!(rng.gen_range(n) < n);
                assert!(rng.gen_range_u64(n as u64) < n as u64);
            }
        }
    }

    #[test]
    fn range_values_cover_small_domains() {
        let mut rng = XorShift64::new(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = XorShift64::new(9);
        let mut xs: Vec<u8> = (0..10).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u8>>());
    }
}
