//! The bit-packed permutation kernel: a whole permutation in one `u64`.
//!
//! For `k ≤ 16` a permutation of `1..=k` fits a single machine word at
//! 4 bits per symbol, and the group operations the routing hot path bottoms
//! out in — compose, inverse, generator application — become short
//! branch-free sequences of shifts and masks over that word. This module is
//! the kernel ROADMAP item 2 asks for; `scg_core`'s route planner sits on
//! it whenever the network degree allows and falls back to the `[u8]`
//! scan path above [`MAX_PACKED_DEGREE`].
//!
//! # Bit layout
//!
//! Nibble `i` (bits `4i .. 4i+4`) holds the **0-based** symbol at 1-based
//! position `i + 1`, i.e. `u_{i+1} − 1`:
//!
//! ```text
//!   u64:  [nib15][nib14] … [nib2][nib1][nib0]
//!          pos16  pos15      pos3  pos2  pos1
//! ```
//!
//! Positions above the degree are padded with the **identity** (`nib_i =
//! i`), so every operation is degree-agnostic: composing or inverting the
//! full 16 nibbles preserves the padding, and no `PackedPerm` needs to
//! carry its degree. The identity permutation of any degree is the single
//! word [`PACKED_IDENTITY`] = `0xFEDC_BA98_7654_3210`.
//!
//! # Examples
//!
//! ```
//! use scg_perm::{PackedPerm, Perm};
//!
//! # fn main() -> Result<(), scg_perm::PermError> {
//! let u: Perm = "3 1 4 2".parse()?;
//! let v: Perm = "2 4 1 3".parse()?;
//! let (pu, pv) = (PackedPerm::pack(&u)?, PackedPerm::pack(&v)?);
//! assert_eq!(pu.compose(pv), PackedPerm::pack(&u.compose(&v))?);
//! assert_eq!(pu.inverse().unpack(4)?, u.inverse());
//! assert_eq!(pu.rank(4)?, u.rank());
//! # Ok(())
//! # }
//! ```

use crate::cast::nib_u8;
use crate::error::PermError;
use crate::perm::Perm;
use crate::rank::factorial;

/// Maximum degree a [`PackedPerm`] can hold: 16 nibbles fill the `u64`.
pub const MAX_PACKED_DEGREE: usize = 16;

/// The packed identity permutation of every degree `k ≤ 16`: nibble `i`
/// holds `i`.
pub const PACKED_IDENTITY: u64 = 0xFEDC_BA98_7654_3210;

/// A permutation of `1..=k`, `k ≤ 16`, packed 4 bits per symbol into one
/// `u64` (see the [module docs](self) for the layout).
///
/// The type is deliberately a bare word: it is `Copy`, 8 bytes, and every
/// group operation is straight-line integer arithmetic. Degrees are not
/// stored — unused nibbles carry the identity padding, which all
/// operations preserve — so the degree reappears only at the [`Perm`]
/// bridges ([`pack`](PackedPerm::pack) / [`unpack`](PackedPerm::unpack))
/// and the Lehmer rank/unrank pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedPerm(u64);

impl PackedPerm {
    /// The identity permutation (of every degree up to 16).
    #[must_use]
    pub fn identity() -> Self {
        PackedPerm(PACKED_IDENTITY)
    }

    /// Packs a [`Perm`] into the word representation.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PackedDegreeOutOfRange`] if the degree exceeds
    /// [`MAX_PACKED_DEGREE`].
    pub fn pack(p: &Perm) -> Result<Self, PermError> {
        let k = p.degree();
        if k > MAX_PACKED_DEGREE {
            return Err(PermError::PackedDegreeOutOfRange { degree: k });
        }
        // Identity padding above the degree, symbols below it.
        let mut w = if k < MAX_PACKED_DEGREE {
            PACKED_IDENTITY & !((1u64 << (4 * k)) - 1)
        } else {
            0
        };
        for (i, &s) in p.symbols().iter().enumerate() {
            w |= u64::from(s - 1) << (4 * i);
        }
        Ok(PackedPerm(w))
    }

    /// Unpacks the first `k` nibbles into a [`Perm`] of degree `k`.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PackedDegreeOutOfRange`] if `k` is zero or
    /// exceeds [`MAX_PACKED_DEGREE`], and [`PermError::NotAPermutation`]
    /// if the first `k` nibbles are not a permutation of `0..k` (possible
    /// only for words built from raw input, not from
    /// [`pack`](PackedPerm::pack)ed values of the same degree).
    pub fn unpack(self, k: usize) -> Result<Perm, PermError> {
        if !(1..=MAX_PACKED_DEGREE).contains(&k) {
            return Err(PermError::PackedDegreeOutOfRange { degree: k });
        }
        let mut symbols = [0u8; MAX_PACKED_DEGREE];
        for (i, slot) in symbols.iter_mut().enumerate().take(k) {
            *slot = nib_u8((self.0 >> (4 * i)) & 0xF) + 1;
        }
        Perm::from_symbols(&symbols[..k])
    }

    /// The raw packed word.
    #[must_use]
    pub fn word(self) -> u64 {
        self.0
    }

    /// Wraps a raw word without validation beyond a debug-build check
    /// that every nibble value appears exactly once.
    ///
    /// Intended for words produced by packed arithmetic (e.g. carried
    /// through structure-of-arrays batch lanes); arbitrary input should go
    /// through [`pack`](PackedPerm::pack) / [`unpack`](PackedPerm::unpack)
    /// instead.
    #[must_use]
    pub fn from_word(w: u64) -> Self {
        debug_assert!(
            Self::word_is_permutation(w),
            "word {w:#018x} is not a packed permutation"
        );
        PackedPerm(w)
    }

    /// Whether every nibble value `0..16` appears exactly once in `w`.
    fn word_is_permutation(mut w: u64) -> bool {
        let mut seen = 0u32;
        for _ in 0..MAX_PACKED_DEGREE {
            seen |= 1u32 << (w & 0xF);
            w >>= 4;
        }
        seen == 0xFFFF
    }

    /// The 1-based symbol at 1-based position `pos` (`u_pos`), matching
    /// [`Perm::symbol_at`].
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside `1..=16`.
    #[must_use]
    pub fn symbol_at(self, pos: usize) -> u8 {
        assert!(
            (1..=MAX_PACKED_DEGREE).contains(&pos),
            "position {pos} outside 1..={MAX_PACKED_DEGREE}"
        );
        nib_u8((self.0 >> (4 * (pos - 1))) & 0xF) + 1
    }

    /// Whether this is the identity permutation.
    #[must_use]
    pub fn is_identity(self) -> bool {
        self.0 == PACKED_IDENTITY
    }

    /// Functional composition `self ∘ other` (`i ↦ self(other(i))`),
    /// bit-identical to [`Perm::compose`] through the pack bridge.
    ///
    /// Identity padding is preserved, so the result is valid at whatever
    /// degree the operands were packed at (equal degrees, as with
    /// [`Perm::compose`]; mixed degrees have no group meaning but stay
    /// valid words).
    ///
    /// With the `simd` feature enabled on an x86-64 with SSSE3, the
    /// sixteen nibble gathers run as a single `pshufb` shuffle (see
    /// [`simd`](self) notes on [`compose_scalar`](PackedPerm::compose_scalar));
    /// otherwise — no feature, non-x86, or an SSSE3-less CPU at runtime —
    /// the scalar nibble-gather runs. Both legs return bit-identical
    /// words (differentially tested over all of `S_7` and seeded sweeps
    /// to `k = 16`).
    #[must_use]
    pub fn compose(self, other: PackedPerm) -> PackedPerm {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd::ssse3_available() {
            // SAFETY: guarded by runtime SSSE3 detection on this exact
            // code path.
            return unsafe { simd::compose_ssse3(self, other) };
        }
        self.compose_scalar(other)
    }

    /// The scalar leg of [`compose`](PackedPerm::compose): sixteen nibble
    /// gathers — each one shift-mask-shift, no branches, no memory
    /// traffic.
    ///
    /// Always available; it is the reference the `simd` leg is
    /// differentially tested against, and what `compose` runs when the
    /// feature is off or the CPU lacks SSSE3.
    #[must_use]
    pub fn compose_scalar(self, other: PackedPerm) -> PackedPerm {
        let a = self.0;
        let mut t = other.0;
        let mut out = 0u64;
        let mut sh = 0u64;
        while sh < 64 {
            out |= ((a >> ((t & 0xF) * 4)) & 0xF) << sh;
            t >>= 4;
            sh += 4;
        }
        PackedPerm(out)
    }

    /// The group inverse: `self.inverse().compose(self)` is the identity.
    ///
    /// Sixteen nibble scatters, branch-free.
    #[must_use]
    pub fn inverse(self) -> PackedPerm {
        let mut t = self.0;
        let mut out = 0u64;
        for i in 0..MAX_PACKED_DEGREE as u64 {
            out |= i << ((t & 0xF) * 4);
            t >>= 4;
        }
        PackedPerm(out)
    }

    /// Traverses the Cayley-graph link of a generator whose packed image
    /// on the identity is `g`: the neighbor of node `self` along that
    /// link.
    ///
    /// Generator application is pure position rearrangement, so it is
    /// right multiplication: `g.apply(u) = u ∘ g.apply(id)` (see
    /// `Generator::apply` in `scg-core` and [`Perm::act_on_label`]). This
    /// is that right action on the packed form — an alias of
    /// [`compose`](PackedPerm::compose) with the arguments in link order.
    #[must_use]
    pub fn apply_generator(self, g: PackedPerm) -> PackedPerm {
        self.compose(g)
    }

    /// The lexicographic Lehmer rank among all `k!` permutations of
    /// degree `k`, matching [`Perm::rank`] (identity ↦ 0).
    ///
    /// Runs entirely on the packed word: each Lehmer digit is a masked
    /// nibble-comparison count, folded Horner-style in the factorial
    /// number system.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PackedDegreeOutOfRange`] if `k` is zero or
    /// exceeds [`MAX_PACKED_DEGREE`].
    pub fn rank(self, k: usize) -> Result<u64, PermError> {
        if !(1..=MAX_PACKED_DEGREE).contains(&k) {
            return Err(PermError::PackedDegreeOutOfRange { degree: k });
        }
        let mut r = 0u64;
        for i in 0..k {
            let vi = (self.0 >> (4 * i)) & 0xF;
            let mut smaller = 0u64;
            for j in i + 1..k {
                smaller += u64::from((self.0 >> (4 * j)) & 0xF < vi);
            }
            r = r * (k - i) as u64 + smaller;
        }
        Ok(r)
    }

    /// The packed permutation of degree `k` with lexicographic rank `r`,
    /// matching [`Perm::from_rank`] through the pack bridge.
    ///
    /// The symbol pool lives in a second packed word; selecting and
    /// removing the Lehmer-indexed symbol is a shift/mask splice, so the
    /// whole unrank is allocation-free word arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::PackedDegreeOutOfRange`] for a bad degree and
    /// [`PermError::RankOutOfRange`] if `r >= k!`.
    pub fn from_rank(k: usize, r: u64) -> Result<Self, PermError> {
        if !(1..=MAX_PACKED_DEGREE).contains(&k) {
            return Err(PermError::PackedDegreeOutOfRange { degree: k });
        }
        if r >= factorial(k) {
            return Err(PermError::RankOutOfRange { rank: r, degree: k });
        }
        let mut pool = PACKED_IDENTITY; // remaining symbols, ascending
        let mut out = 0u64;
        let mut rem = r;
        for i in 0..k {
            let f = factorial(k - 1 - i);
            let d = rem / f; // Lehmer digit: index into the pool
            rem %= f;
            let sh = d * 4;
            out |= ((pool >> sh) & 0xF) << (4 * i);
            // Splice nibble `d` out of the pool: entries below `d` stay,
            // entries above it slide down one lane.
            let low = (1u64 << sh) - 1;
            pool = (pool & low) | ((pool >> 4) & !low);
        }
        // The unpicked tail of the pool is exactly the identity padding.
        if k < MAX_PACKED_DEGREE {
            out |= pool << (4 * k);
        }
        Ok(PackedPerm(out))
    }
}

/// The `pshufb` leg of [`PackedPerm::compose`], compiled only under the
/// opt-in `simd` feature on x86-64.
///
/// A nibble gather `out[i] = a[t[i]]` is exactly what `pshufb`
/// (`_mm_shuffle_epi8`) computes over bytes, so the kernel is: spread
/// both words' 16 nibbles into 16 bytes of an XMM register, shuffle,
/// and repack the gathered bytes into nibbles. SSSE3 is not part of the
/// x86-64 baseline, so dispatch is guarded by runtime detection — CPUs
/// without it silently keep the scalar path.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    use super::PackedPerm;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_cvtsi128_si64, _mm_cvtsi64_si128, _mm_maddubs_epi16,
        _mm_packus_epi16, _mm_set1_epi16, _mm_set1_epi8, _mm_shuffle_epi8, _mm_srli_epi64,
        _mm_unpacklo_epi8,
    };

    /// Whether the running CPU supports SSSE3 (`pshufb`).
    #[inline]
    #[must_use]
    pub fn ssse3_available() -> bool {
        std::arch::is_x86_feature_detected!("ssse3")
    }

    /// Spreads the 16 packed nibbles of `w` into the 16 bytes of an XMM
    /// register, lane `i` = nibble `i`.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (x86-64 baseline) — callers are inside an SSSE3
    /// `target_feature` region, which implies it.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn spread_nibbles(w: u64) -> __m128i {
        let v = _mm_cvtsi64_si128(w as i64);
        let lo_mask = _mm_set1_epi8(0x0F);
        // Even lanes from the low nibble of each byte, odd lanes from the
        // high nibble; interleaving restores packed-nibble order.
        let even = _mm_and_si128(v, lo_mask);
        let odd = _mm_and_si128(_mm_srli_epi64::<4>(v), lo_mask);
        _mm_unpacklo_epi8(even, odd)
    }

    /// `a ∘ t` over packed words via one `pshufb`: byte lane `i` of the
    /// shuffle output is `a_bytes[t_bytes[i]]`, the nibble gather of the
    /// scalar loop. High bits of every `t` byte are clear (nibbles < 16),
    /// so `pshufb`'s sign-bit zeroing rule never fires.
    ///
    /// # Safety
    ///
    /// The caller must ensure the running CPU supports SSSE3 (e.g. via
    /// [`ssse3_available`]); `PackedPerm::compose` does exactly that.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn compose_ssse3(a: PackedPerm, t: PackedPerm) -> PackedPerm {
        let a_bytes = spread_nibbles(a.0);
        let t_bytes = spread_nibbles(t.0);
        let gathered = _mm_shuffle_epi8(a_bytes, t_bytes);
        // Repack 16 bytes (each < 16) into 16 nibbles: per 16-bit lane
        // compute lo + 16·hi with a multiply-add against [1, 16], then
        // narrow the eight u16 results (< 256, saturation never fires)
        // back to bytes.
        let packed16 = _mm_maddubs_epi16(gathered, _mm_set1_epi16(0x1001));
        let packed8 = _mm_packus_epi16(packed16, packed16);
        PackedPerm(_mm_cvtsi128_si64(packed8) as u64)
    }
}

impl std::fmt::Debug for PackedPerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PackedPerm({:#018x})", self.0)
    }
}

impl std::fmt::Display for PackedPerm {
    /// Formats all sixteen lanes as 1-based symbols, position 1 first,
    /// e.g. `3 1 4 2 5 6 …` — the paper's label notation padded with the
    /// identity tail.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for pos in 1..=MAX_PACKED_DEGREE {
            if pos > 1 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.symbol_at(pos))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift64;
    use crate::Permutations;

    #[test]
    fn identity_is_identity() {
        assert!(PackedPerm::identity().is_identity());
        for k in 1..=MAX_PACKED_DEGREE {
            assert_eq!(
                PackedPerm::pack(&Perm::identity(k)).unwrap(),
                PackedPerm::identity(),
                "degree {k} identity packs to the shared identity word"
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrip_random() {
        let mut rng = XorShift64::new(0xBEEF);
        for k in 1..=MAX_PACKED_DEGREE {
            for _ in 0..50 {
                let p = Perm::random(k, &mut rng);
                let packed = PackedPerm::pack(&p).unwrap();
                assert_eq!(packed.unpack(k).unwrap(), p);
                assert_eq!(PackedPerm::from_word(packed.word()), packed);
            }
        }
    }

    #[test]
    fn degree_limit_is_enforced() {
        let p = Perm::identity(17);
        assert_eq!(
            PackedPerm::pack(&p).unwrap_err(),
            PermError::PackedDegreeOutOfRange { degree: 17 }
        );
        assert!(PackedPerm::identity().unpack(0).is_err());
        assert!(PackedPerm::identity().unpack(17).is_err());
        assert!(PackedPerm::identity().rank(17).is_err());
        assert!(PackedPerm::from_rank(17, 0).is_err());
        assert!(PackedPerm::from_rank(5, 120).is_err());
    }

    #[test]
    fn compose_matches_perm_exhaustive_s5() {
        let perms: Vec<Perm> = Permutations::lexicographic(5).collect();
        let packed: Vec<PackedPerm> = perms.iter().map(|p| PackedPerm::pack(p).unwrap()).collect();
        for (a, pa) in perms.iter().zip(&packed) {
            for (b, pb) in perms.iter().zip(&packed) {
                assert_eq!(
                    pa.compose(*pb),
                    PackedPerm::pack(&a.compose(b)).unwrap(),
                    "{a} ∘ {b}"
                );
            }
        }
    }

    #[test]
    fn compose_dispatch_matches_scalar_leg() {
        // `compose` (whatever leg dispatch picks — SSSE3 under the `simd`
        // feature on a capable CPU, scalar otherwise) must be
        // bit-identical to `compose_scalar`. The root-level
        // `tests/packed_perm.rs` harness widens this to all of S_7 and
        // seeded sweeps to k = 16.
        let mut rng = XorShift64::new(0x51D);
        for k in 1..=MAX_PACKED_DEGREE {
            for _ in 0..200 {
                let a = PackedPerm::pack(&Perm::random(k, &mut rng)).unwrap();
                let b = PackedPerm::pack(&Perm::random(k, &mut rng)).unwrap();
                assert_eq!(a.compose(b), a.compose_scalar(b), "k={k} {a} ∘ {b}");
            }
        }
    }

    #[test]
    fn inverse_and_rank_match_perm_exhaustive_s6() {
        for p in Permutations::lexicographic(6) {
            let packed = PackedPerm::pack(&p).unwrap();
            assert_eq!(packed.inverse(), PackedPerm::pack(&p.inverse()).unwrap());
            assert_eq!(packed.rank(6).unwrap(), p.rank());
            assert_eq!(PackedPerm::from_rank(6, p.rank()).unwrap(), packed);
        }
    }

    #[test]
    fn apply_generator_is_the_right_action() {
        // T_i on the star graph: g = identity with positions 1 and i
        // swapped; traversing the link from u swaps u's symbols 1 and i.
        let mut rng = XorShift64::new(0x5AFE);
        for k in [5usize, 9, 16] {
            let u = Perm::random(k, &mut rng);
            let pu = PackedPerm::pack(&u).unwrap();
            for i in 2..=k {
                let g = Perm::identity(k).swapped(1, i).unwrap();
                let pg = PackedPerm::pack(&g).unwrap();
                assert_eq!(
                    pu.apply_generator(pg),
                    PackedPerm::pack(&u.swapped(1, i).unwrap()).unwrap()
                );
            }
        }
    }

    #[test]
    fn display_and_debug_render() {
        let p = PackedPerm::pack(&"3 1 4 2".parse::<Perm>().unwrap()).unwrap();
        let s = p.to_string();
        assert!(s.starts_with("3 1 4 2 5 6"), "{s}");
        assert!(format!("{p:?}").starts_with("PackedPerm(0x"));
    }
}
