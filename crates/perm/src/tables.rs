//! Precomputed rank-transition tables.
//!
//! Materializing a Cayley graph over `S_k` repeatedly needs the map
//! `rank(u) → rank(g·u)` for each generator `g`. Computing it on demand
//! costs an unrank/apply/rank round trip (`Θ(k²)` per query); this module
//! builds the whole table in one lexicographic sweep — each table is a
//! `Vec<u32>` of length `k!` indexed by rank — so neighbor expansion
//! becomes a single array load. Tables are what the `scg-core` topology
//! engine caches and shares across the routing, communication, embedding,
//! and emulation layers.
//!
//! Construction is chunked over scoped OS threads: the rank space `0..k!`
//! is split into contiguous ranges, each thread unranks its range start
//! once and then walks lexicographic successors, so the per-node cost is
//! the generator applications plus one `rank()` per generator.

use crate::cast::rank_u32;
use crate::enumerate::Permutations;
use crate::perm::Perm;
use crate::rank::factorial;

/// An action on permutations used to fill a transition table: maps a node
/// label to the neighbor label reached through one generator.
pub type PermAction<'a> = &'a (dyn Fn(&Perm) -> Perm + Sync);

/// Largest degree whose rank fits a `u32` table entry: `12! < 2^32 ≤ 13!`.
pub const MAX_TABLE_DEGREE: usize = 12;

/// Builds the rank-transition table of a single action over `S_k`:
/// `table[rank(u)] = rank(f(u))` for every permutation `u` of degree `k`.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds [`MAX_TABLE_DEGREE`], or if `f`
/// changes the degree of its argument.
#[must_use]
pub fn rank_transition_table(k: usize, f: PermAction<'_>) -> Vec<u32> {
    rank_transition_tables(k, &[f])
        .pop()
        // scg-allow(SCG001): rank_transition_tables returns exactly one table per action
        .expect("one table per action")
}

/// Builds the rank-transition tables of several actions in one sweep of
/// `S_k` (one table per action, in order). The sweep is parallelized over
/// scoped threads; the result is identical to the sequential computation.
///
/// # Panics
///
/// As [`rank_transition_table`].
#[must_use]
pub fn rank_transition_tables(k: usize, fs: &[PermAction<'_>]) -> Vec<Vec<u32>> {
    assert!(
        (1..=MAX_TABLE_DEGREE).contains(&k),
        "degree {k} outside 1..={MAX_TABLE_DEGREE} for u32 rank tables"
    );
    let n = factorial(k) as usize;
    let d = fs.len();
    let mut tables: Vec<Vec<u32>> = (0..d).map(|_| vec![0u32; n]).collect();
    if d == 0 || n == 0 {
        return tables;
    }
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(n);
    let chunk = n.div_ceil(threads);

    // Split every table into per-chunk windows so each thread owns the
    // rows of its rank range across all tables.
    let mut windows: Vec<Vec<&mut [u32]>> = (0..threads.min(n.div_ceil(chunk)))
        .map(|_| Vec::with_capacity(d))
        .collect();
    for table in &mut tables {
        for (ci, piece) in table.chunks_mut(chunk).enumerate() {
            windows[ci].push(piece);
        }
    }

    std::thread::scope(|scope| {
        for (ci, mut window) in windows.into_iter().enumerate() {
            let start = ci * chunk;
            scope.spawn(move || {
                let perms = Permutations::starting_at_rank(k, start as u64)
                    // scg-allow(SCG001): chunk starts are produced from ranks 0..k! by construction
                    .expect("chunk start below k!");
                let len = window[0].len();
                for (off, u) in perms.take(len).enumerate() {
                    for (fi, f) in fs.iter().enumerate() {
                        let v = f(&u);
                        assert_eq!(v.degree(), k, "action changed the degree");
                        window[fi][off] = rank_u32(v.rank());
                    }
                }
            });
        }
    });
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_unrank_apply_rank() {
        let k = 6;
        let act = |p: &Perm| p.swapped(1, 3).unwrap();
        let table = rank_transition_table(k, &act);
        assert_eq!(table.len() as u64, factorial(k));
        for r in 0..factorial(k) {
            let u = Perm::from_rank(k, r).unwrap();
            assert_eq!(u64::from(table[r as usize]), act(&u).rank(), "rank {r}");
        }
    }

    #[test]
    fn involution_tables_are_self_inverse() {
        let table = rank_transition_table(5, &|p: &Perm| p.swapped(1, 4).unwrap());
        for (r, &s) in table.iter().enumerate() {
            assert_eq!(table[s as usize] as usize, r);
        }
    }

    #[test]
    fn multi_action_sweep_matches_single() {
        let k = 5;
        let a = |p: &Perm| p.prefix_rotated_left(3).unwrap();
        let b = |p: &Perm| p.suffix_rotated_right(2);
        let both = rank_transition_tables(k, &[&a, &b]);
        assert_eq!(both[0], rank_transition_table(k, &a));
        assert_eq!(both[1], rank_transition_table(k, &b));
    }

    #[test]
    fn identity_action_is_identity_table() {
        let table = rank_transition_table(4, &|p: &Perm| *p);
        for (r, &s) in table.iter().enumerate() {
            assert_eq!(r as u32, s);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn degree_13_rejected() {
        let _ = rank_transition_table(13, &|p: &Perm| *p);
    }
}
