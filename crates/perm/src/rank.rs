//! Lexicographic ranking and unranking of permutations via Lehmer codes.

use crate::cast::sym_u8;
use crate::error::PermError;
use crate::perm::{Perm, MAX_DEGREE};

/// `k!` as a `u64`.
///
/// # Panics
///
/// Panics if `k > 20` (whose factorial overflows `u64`).
#[must_use]
pub fn factorial(k: usize) -> u64 {
    assert!(k <= 20, "{k}! overflows u64");
    (1..=k as u64).product()
}

/// The Lehmer code of `p`.
pub(crate) fn lehmer(p: &Perm) -> Vec<u8> {
    let s = p.symbols();
    let k = s.len();
    let mut code = vec![0u8; k];
    for i in 0..k {
        code[i] = sym_u8(s[i + 1..].iter().filter(|&&x| x < s[i]).count());
    }
    code
}

/// Rebuilds a permutation from a Lehmer code.
pub(crate) fn from_lehmer(code: &[u8]) -> Result<Perm, PermError> {
    let k = code.len();
    if !(1..=MAX_DEGREE).contains(&k) {
        return Err(PermError::DegreeOutOfRange { degree: k });
    }
    let mut pool: Vec<u8> = (1..=sym_u8(k)).collect();
    let mut symbols = Vec::with_capacity(k);
    for (i, &d) in code.iter().enumerate() {
        let d = d as usize;
        if d >= pool.len() {
            return Err(PermError::NotAPermutation { symbol: code[i] });
        }
        symbols.push(pool.remove(d));
    }
    Perm::from_symbols(&symbols)
}

/// Lexicographic rank (identity ↦ 0).
pub(crate) fn rank(p: &Perm) -> u64 {
    let k = p.degree();
    let code = lehmer(p);
    let mut r = 0u64;
    for (i, &d) in code.iter().enumerate() {
        r += u64::from(d) * factorial(k - 1 - i);
    }
    r
}

/// Permutation of degree `k` with lexicographic rank `r`.
pub(crate) fn unrank(k: usize, r: u64) -> Result<Perm, PermError> {
    if !(1..=MAX_DEGREE).contains(&k) {
        return Err(PermError::DegreeOutOfRange { degree: k });
    }
    if r >= factorial(k) {
        return Err(PermError::RankOutOfRange { rank: r, degree: k });
    }
    let mut code = vec![0u8; k];
    let mut rem = r;
    for (i, digit) in code.iter_mut().enumerate() {
        let f = factorial(k - 1 - i);
        *digit = sym_u8((rem / f) as usize);
        rem %= f;
    }
    from_lehmer(&code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(13), 6_227_020_800);
        assert_eq!(factorial(20), 2_432_902_008_176_640_000);
    }

    #[test]
    fn rank_is_lexicographic() {
        // All 3! permutations in lexicographic order have ranks 0..6.
        let perms = [
            [1u8, 2, 3],
            [1, 3, 2],
            [2, 1, 3],
            [2, 3, 1],
            [3, 1, 2],
            [3, 2, 1],
        ];
        for (i, p) in perms.iter().enumerate() {
            let perm = Perm::from_symbols(p).unwrap();
            assert_eq!(perm.rank(), i as u64);
            assert_eq!(Perm::from_rank(3, i as u64).unwrap(), perm);
        }
    }

    #[test]
    fn roundtrip_exhaustive_k5() {
        for r in 0..factorial(5) {
            let p = Perm::from_rank(5, r).unwrap();
            assert_eq!(p.rank(), r);
            assert_eq!(Perm::from_lehmer(&p.lehmer()).unwrap(), p);
        }
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        assert!(Perm::from_rank(3, 6).is_err());
        assert!(Perm::from_rank(0, 0).is_err());
        assert!(Perm::from_rank(21, 0).is_err());
    }

    #[test]
    fn lehmer_rejects_bad_digit() {
        assert!(Perm::from_lehmer(&[3, 0, 0]).is_err());
        assert!(Perm::from_lehmer(&[]).is_err());
    }
}
