//! Permutation substrate for super Cayley graph networks.
//!
//! Every node of a super Cayley graph (Yeh, Varvarigos & Lee, PaCT 1999) is
//! labelled by a permutation of `k` distinct symbols, where `k = nl + 1` is
//! the number of balls in the underlying ball-arrangement game. This crate
//! provides the permutation machinery everything else is built on:
//!
//! * [`Perm`] — a fixed-capacity permutation of the symbols `1..=k`
//!   (positions are 1-based throughout, matching the paper's notation
//!   `U = u_1 u_2 … u_k`);
//! * [`PackedPerm`] — the same permutation packed 4 bits/symbol into one
//!   `u64` for `k ≤ 16`, with branch-free word-level compose, inverse,
//!   generator application, and Lehmer rank/unrank (the routing kernel);
//! * composition, inversion, parity, cycle structure;
//! * lexicographic ranking/unranking via Lehmer codes ([`Perm::rank`],
//!   [`Perm::from_rank`]) so permutations double as dense node indices;
//! * enumeration of the whole symmetric group ([`Permutations`]);
//! * mixed-radix counters ([`MixedRadix`]) for the factorial number system
//!   used by mesh embeddings.
//!
//! # Examples
//!
//! ```
//! use scg_perm::Perm;
//!
//! # fn main() -> Result<(), scg_perm::PermError> {
//! let u = Perm::from_symbols(&[3, 1, 4, 2])?;
//! assert_eq!(u.symbol_at(1), 3);
//! assert_eq!(u.inverse().compose(&u), Perm::identity(4));
//! assert_eq!(Perm::from_rank(4, u.rank())?, u);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cast;
mod enumerate;
mod error;
mod group;
mod mixed_radix;
mod packed;
mod perm;
mod rank;
mod rng;
mod tables;

pub use enumerate::Permutations;
pub use error::PermError;
pub use group::{group_order, StabilizerChain};
pub use mixed_radix::MixedRadix;
pub use packed::{PackedPerm, MAX_PACKED_DEGREE, PACKED_IDENTITY};
pub use perm::{Perm, MAX_DEGREE};
pub use rank::factorial;
pub use rng::XorShift64;
pub use tables::{rank_transition_table, rank_transition_tables, PermAction, MAX_TABLE_DEGREE};
