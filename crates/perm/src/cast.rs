//! Checked narrowing for symbol and rank arithmetic.
//!
//! The paper's symbol alphabet is exactly `k = nl + 1` symbols with
//! `k ≤ MAX_DEGREE = 20` (§2.1), and rank-transition tables store `u32`
//! ranks, so every narrowing in the workspace is *provably* in range — but
//! a bare `as` cast would truncate silently the day an invariant slips.
//! These helpers are the blessed narrowing points the `SCG003` lint steers
//! call sites toward: each is a real range check, and each carries the one
//! audited panic site for its domain.

use crate::perm::MAX_DEGREE;

/// Narrows a symbol, 1-based position, or degree to the `u8` symbol type.
///
/// # Panics
///
/// Panics if `x > MAX_DEGREE` — by construction every symbol/position of a
/// validated [`Perm`](crate::Perm) is within `1..=MAX_DEGREE`, so a panic
/// here is a caller bug, never an input error.
#[inline]
#[must_use]
pub fn sym_u8(x: usize) -> u8 {
    // scg-allow(SCG008): decode paths validate every symbol against the degree before narrowing
    assert!(x <= MAX_DEGREE, "symbol/position {x} exceeds MAX_DEGREE");
    x as u8 // scg-allow(SCG003): asserted ≤ MAX_DEGREE = 20 on the line above
}

/// Narrows a permutation rank to the `u32` table/node-id domain.
///
/// # Panics
///
/// Panics if `r` does not fit `u32`; materialized networks are capped at
/// `MAX_TABLE_DEGREE`, whose factorial fits `u32`, so a panic is a caller
/// bug.
#[inline]
#[must_use]
pub fn rank_u32(r: u64) -> u32 {
    u32::try_from(r).expect("rank exceeds the u32 table domain") // scg-allow(SCG001): the checked helper is the one audited narrowing point
}

/// Narrows a length/count (path lengths, arena offsets, inversion counts)
/// to `u32`.
///
/// # Panics
///
/// Panics if `x` does not fit `u32` — route and arena sizes are bounded far
/// below `u32::MAX` by the materialization caps.
#[inline]
#[must_use]
pub fn len_u32(x: usize) -> u32 {
    u32::try_from(x).expect("length exceeds u32") // scg-allow(SCG001): the checked helper is the one audited narrowing point
}

/// Narrows a 4-bit nibble (one packed-permutation symbol lane) to `u8`.
///
/// This is the blessed narrowing point for
/// [`PackedPerm`](crate::PackedPerm) nibble extraction: callers mask with
/// `& 0xF` before narrowing, so the value is provably below 16.
///
/// # Panics
///
/// Panics if `x > 0xF` — a masked nibble can never trip this, so a panic
/// is a caller bug, never an input error.
#[inline]
#[must_use]
pub fn nib_u8(x: u64) -> u8 {
    assert!(x <= 0xF, "nibble {x} exceeds 4 bits");
    x as u8 // scg-allow(SCG003): asserted ≤ 0xF on the line above
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(sym_u8(20), 20);
        assert_eq!(rank_u32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(len_u32(7), 7);
        assert_eq!(nib_u8(0xF), 15);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_DEGREE")]
    fn sym_u8_rejects_out_of_range() {
        let _ = sym_u8(MAX_DEGREE + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds 4 bits")]
    fn nib_u8_rejects_out_of_range() {
        let _ = nib_u8(0x10);
    }

    #[test]
    #[should_panic(expected = "u32 table domain")]
    fn rank_u32_rejects_out_of_range() {
        let _ = rank_u32(u64::MAX);
    }
}
