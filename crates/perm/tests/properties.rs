//! Property-based tests for the permutation substrate.

use proptest::prelude::*;
use scg_perm::{factorial, Perm, MAX_DEGREE};

/// Strategy producing an arbitrary valid permutation of degree 1..=12.
fn arb_perm() -> impl Strategy<Value = Perm> {
    (1usize..=12).prop_flat_map(|k| {
        (0..factorial(k)).prop_map(move |r| Perm::from_rank(k, r).expect("rank in range"))
    })
}

/// Two same-degree permutations.
fn arb_perm_pair() -> impl Strategy<Value = (Perm, Perm)> {
    (1usize..=10).prop_flat_map(|k| {
        let f = factorial(k);
        ((0..f), (0..f)).prop_map(move |(a, b)| {
            (
                Perm::from_rank(k, a).expect("rank in range"),
                Perm::from_rank(k, b).expect("rank in range"),
            )
        })
    })
}

proptest! {
    #[test]
    fn rank_unrank_roundtrip(p in arb_perm()) {
        let r = p.rank();
        prop_assert!(r < factorial(p.degree()));
        prop_assert_eq!(Perm::from_rank(p.degree(), r).unwrap(), p);
    }

    #[test]
    fn lehmer_roundtrip(p in arb_perm()) {
        prop_assert_eq!(Perm::from_lehmer(&p.lehmer()).unwrap(), p);
    }

    #[test]
    fn inverse_is_involution(p in arb_perm()) {
        prop_assert_eq!(p.inverse().inverse(), p);
        prop_assert!(p.inverse().compose(&p).is_identity());
        prop_assert!(p.compose(&p.inverse()).is_identity());
    }

    #[test]
    fn compose_is_associative((a, b) in arb_perm_pair(), seed in 0u64..1_000_000) {
        let k = a.degree();
        let c = Perm::from_rank(k, seed % factorial(k)).unwrap();
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn parity_is_a_homomorphism((a, b) in arb_perm_pair()) {
        let ab = a.compose(&b);
        prop_assert_eq!(ab.is_even(), a.is_even() == b.is_even());
    }

    #[test]
    fn cycles_reconstruct_permutation(p in arb_perm()) {
        // Rebuild the position→symbol map from the cycle decomposition.
        let mut symbols: Vec<u8> = (1..=p.degree() as u8).collect();
        for cycle in p.cycles() {
            for w in 0..cycle.len() {
                let pos = cycle[w] as usize;
                let next = cycle[(w + 1) % cycle.len()];
                symbols[pos - 1] = next;
            }
        }
        // cycles() follows pos → symbol-at-pos, so walking each cycle
        // reproduces the permutation exactly.
        prop_assert_eq!(Perm::from_symbols(&symbols).unwrap(), p);
    }

    #[test]
    fn misplaced_matches_cycles(p in arb_perm()) {
        let by_cycles: usize = p.cycles().iter().map(Vec::len).sum();
        prop_assert_eq!(p.misplaced(), by_cycles);
    }

    #[test]
    fn swap_generators_are_involutions(p in arb_perm(), i in 1usize..=12, j in 1usize..=12) {
        let k = p.degree();
        if i <= k && j <= k {
            let q = p.swapped(i, j).unwrap();
            prop_assert_eq!(q.swapped(i, j).unwrap(), p);
            if i == j {
                prop_assert_eq!(q, p);
            }
        }
    }

    #[test]
    fn prefix_rotations_compose_to_identity(p in arb_perm(), i in 2usize..=12) {
        if i <= p.degree() {
            let q = p.prefix_rotated_left(i).unwrap().prefix_rotated_right(i).unwrap();
            prop_assert_eq!(q, p);
        }
    }

    #[test]
    fn suffix_rotation_order_divides_k_minus_1(p in arb_perm(), amount in 0usize..40) {
        if p.degree() >= 2 {
            let m = amount % (p.degree() - 1);
            let mut q = p.suffix_rotated_right(m);
            // Undo by rotating the complementary amount.
            q = q.suffix_rotated_right(p.degree() - 1 - m);
            prop_assert_eq!(q, p);
        }
    }

    #[test]
    fn inversions_bounded(p in arb_perm()) {
        let k = p.degree();
        prop_assert!(p.inversions() <= k * (k - 1) / 2);
    }
}

#[test]
fn max_degree_is_ranked_safely() {
    let id = Perm::identity(MAX_DEGREE);
    assert_eq!(id.rank(), 0);
    let last = Perm::from_rank(MAX_DEGREE, factorial(MAX_DEGREE) - 1).unwrap();
    let rev: Vec<u8> = (1..=MAX_DEGREE as u8).rev().collect();
    assert_eq!(last.symbols(), rev.as_slice());
}
