//! Randomized property tests for the permutation substrate, driven by the
//! vendored deterministic PRNG (the workspace builds offline, so `proptest`
//! is not available).

use scg_perm::{factorial, Perm, XorShift64, MAX_DEGREE};

const CASES: usize = 256;

/// An arbitrary valid permutation of degree 1..=12.
fn arb_perm(rng: &mut XorShift64) -> Perm {
    let k = 1 + rng.gen_range(12);
    Perm::from_rank(k, rng.gen_range_u64(factorial(k))).expect("rank in range")
}

/// Two same-degree permutations of degree 1..=10.
fn arb_perm_pair(rng: &mut XorShift64) -> (Perm, Perm) {
    let k = 1 + rng.gen_range(10);
    let f = factorial(k);
    (
        Perm::from_rank(k, rng.gen_range_u64(f)).expect("rank in range"),
        Perm::from_rank(k, rng.gen_range_u64(f)).expect("rank in range"),
    )
}

#[test]
fn rank_unrank_roundtrip() {
    let mut rng = XorShift64::new(1);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        let r = p.rank();
        assert!(r < factorial(p.degree()));
        assert_eq!(Perm::from_rank(p.degree(), r).unwrap(), p);
    }
}

#[test]
fn lehmer_roundtrip() {
    let mut rng = XorShift64::new(2);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        assert_eq!(Perm::from_lehmer(&p.lehmer()).unwrap(), p);
    }
}

#[test]
fn inverse_is_involution() {
    let mut rng = XorShift64::new(3);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        assert_eq!(p.inverse().inverse(), p);
        assert!(p.inverse().compose(&p).is_identity());
        assert!(p.compose(&p.inverse()).is_identity());
    }
}

#[test]
fn compose_is_associative() {
    let mut rng = XorShift64::new(4);
    for _ in 0..CASES {
        let (a, b) = arb_perm_pair(&mut rng);
        let k = a.degree();
        let c = Perm::from_rank(k, rng.gen_range_u64(factorial(k))).unwrap();
        assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }
}

#[test]
fn parity_is_a_homomorphism() {
    let mut rng = XorShift64::new(5);
    for _ in 0..CASES {
        let (a, b) = arb_perm_pair(&mut rng);
        let ab = a.compose(&b);
        assert_eq!(ab.is_even(), a.is_even() == b.is_even());
    }
}

#[test]
fn cycles_reconstruct_permutation() {
    let mut rng = XorShift64::new(6);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        // Rebuild the position→symbol map from the cycle decomposition.
        let mut symbols: Vec<u8> = (1..=p.degree() as u8).collect();
        for cycle in p.cycles() {
            for w in 0..cycle.len() {
                let pos = cycle[w] as usize;
                let next = cycle[(w + 1) % cycle.len()];
                symbols[pos - 1] = next;
            }
        }
        // cycles() follows pos → symbol-at-pos, so walking each cycle
        // reproduces the permutation exactly.
        assert_eq!(Perm::from_symbols(&symbols).unwrap(), p);
    }
}

#[test]
fn misplaced_matches_cycles() {
    let mut rng = XorShift64::new(7);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        let by_cycles: usize = p.cycles().iter().map(Vec::len).sum();
        assert_eq!(p.misplaced(), by_cycles);
    }
}

#[test]
fn swap_generators_are_involutions() {
    let mut rng = XorShift64::new(8);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        let k = p.degree();
        let i = 1 + rng.gen_range(12);
        let j = 1 + rng.gen_range(12);
        if i <= k && j <= k {
            let q = p.swapped(i, j).unwrap();
            assert_eq!(q.swapped(i, j).unwrap(), p);
            if i == j {
                assert_eq!(q, p);
            }
        }
    }
}

#[test]
fn prefix_rotations_compose_to_identity() {
    let mut rng = XorShift64::new(9);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        let i = 2 + rng.gen_range(11);
        if i <= p.degree() {
            let q = p
                .prefix_rotated_left(i)
                .unwrap()
                .prefix_rotated_right(i)
                .unwrap();
            assert_eq!(q, p);
        }
    }
}

#[test]
fn suffix_rotation_order_divides_k_minus_1() {
    let mut rng = XorShift64::new(10);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        if p.degree() >= 2 {
            let m = rng.gen_range(40) % (p.degree() - 1);
            let mut q = p.suffix_rotated_right(m);
            // Undo by rotating the complementary amount.
            q = q.suffix_rotated_right(p.degree() - 1 - m);
            assert_eq!(q, p);
        }
    }
}

#[test]
fn inversions_bounded() {
    let mut rng = XorShift64::new(11);
    for _ in 0..CASES {
        let p = arb_perm(&mut rng);
        let k = p.degree();
        assert!(p.inversions() <= k * (k - 1) / 2);
    }
}

#[test]
fn max_degree_is_ranked_safely() {
    let id = Perm::identity(MAX_DEGREE);
    assert_eq!(id.rank(), 0);
    let last = Perm::from_rank(MAX_DEGREE, factorial(MAX_DEGREE) - 1).unwrap();
    let rev: Vec<u8> = (1..=MAX_DEGREE as u8).rev().collect();
    assert_eq!(last.symbols(), rev.as_slice());
}

#[test]
fn transition_tables_agree_with_enumeration() {
    // The chunked parallel sweep agrees with the direct unrank/apply/rank
    // round trip on a non-trivial action.
    let k = 7;
    let act = |p: &Perm| p.prefix_rotated_left(4).unwrap().suffix_rotated_right(2);
    let table = scg_perm::rank_transition_table(k, &act);
    let mut rng = XorShift64::new(12);
    for _ in 0..CASES {
        let r = rng.gen_range_u64(factorial(k));
        let u = Perm::from_rank(k, r).unwrap();
        assert_eq!(u64::from(table[r as usize]), act(&u).rank());
    }
}
