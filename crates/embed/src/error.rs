use std::error::Error;
use std::fmt;

use scg_core::CoreError;
use scg_graph::GraphError;

/// Error produced by embedding constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// A node map entry or path endpoint is out of range.
    InvalidMap {
        /// Explanation of the violated invariant.
        reason: &'static str,
    },
    /// An edge path is not a walk in the host (consecutive nodes not
    /// adjacent), or does not connect the mapped endpoints.
    InvalidPath {
        /// Guest edge index (CSR order) of the offending path.
        guest_edge: usize,
    },
    /// The requested construction does not apply to these parameters.
    Unsupported {
        /// Explanation.
        reason: String,
    },
    /// The host network would materialize more nodes than the cap allows —
    /// raised before any permutation table is built, so oversized requests
    /// fail fast with the offending numbers attached.
    HostTooLarge {
        /// The guest family asking for the host (e.g. `"linear array"`).
        guest: &'static str,
        /// The requested symbol count `k`.
        k: usize,
        /// The node count `k!` the host would need.
        num_nodes: u64,
        /// The materialization cap that was exceeded.
        cap: u64,
    },
    /// A fault hit a host node that carries a program node; re-embedding
    /// keeps the node map fixed, so it cannot recover from this.
    MappedNodeFailed {
        /// The program (guest) node whose image died.
        program_node: usize,
        /// The failed host node.
        host_node: u32,
    },
    /// Rebalancing re-embedding failed: a program node's host died and no
    /// live host remains to remap it onto.
    NoLiveHost {
        /// The program (guest) node that lost its host.
        program_node: usize,
    },
    /// Re-embedding failed: the survivors no longer connect the mapped
    /// endpoints of this guest edge.
    ReembedDisconnected {
        /// Guest edge index (CSR order) whose hyperpath cannot be
        /// re-routed.
        guest_edge: usize,
    },
    /// An underlying network error.
    Core(CoreError),
    /// An underlying graph error.
    Graph(GraphError),
    /// A search-based construction was inconclusive within its budget.
    SearchInconclusive,
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::InvalidMap { reason } => write!(f, "invalid node map: {reason}"),
            EmbedError::InvalidPath { guest_edge } => {
                write!(f, "invalid routing path for guest edge {guest_edge}")
            }
            EmbedError::Unsupported { reason } => write!(f, "unsupported construction: {reason}"),
            EmbedError::HostTooLarge {
                guest,
                k,
                num_nodes,
                cap,
            } => write!(
                f,
                "{guest} embedding needs the {k}-symbol host materialized \
                 ({num_nodes} nodes) but the cap is {cap} nodes"
            ),
            EmbedError::MappedNodeFailed {
                program_node,
                host_node,
            } => write!(
                f,
                "cannot re-embed: host node {host_node} carrying guest node \
                 {program_node} has failed"
            ),
            EmbedError::NoLiveHost { program_node } => write!(
                f,
                "cannot rebalance: no live host left for guest node {program_node}"
            ),
            EmbedError::ReembedDisconnected { guest_edge } => write!(
                f,
                "cannot re-embed guest edge {guest_edge}: survivors disconnect its endpoints"
            ),
            EmbedError::Core(e) => write!(f, "network error: {e}"),
            EmbedError::Graph(e) => write!(f, "graph error: {e}"),
            EmbedError::SearchInconclusive => write!(f, "search budget exhausted"),
        }
    }
}

impl Error for EmbedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmbedError::Core(e) => Some(e),
            EmbedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EmbedError {
    fn from(e: CoreError) -> Self {
        EmbedError::Core(e)
    }
}

impl From<GraphError> for EmbedError {
    fn from(e: GraphError) -> Self {
        EmbedError::Graph(e)
    }
}
