use std::error::Error;
use std::fmt;

use scg_core::CoreError;
use scg_graph::GraphError;

/// Error produced by embedding constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbedError {
    /// A node map entry or path endpoint is out of range.
    InvalidMap {
        /// Explanation of the violated invariant.
        reason: &'static str,
    },
    /// An edge path is not a walk in the host (consecutive nodes not
    /// adjacent), or does not connect the mapped endpoints.
    InvalidPath {
        /// Guest edge index (CSR order) of the offending path.
        guest_edge: usize,
    },
    /// The requested construction does not apply to these parameters.
    Unsupported {
        /// Explanation.
        reason: String,
    },
    /// An underlying network error.
    Core(CoreError),
    /// An underlying graph error.
    Graph(GraphError),
    /// A search-based construction was inconclusive within its budget.
    SearchInconclusive,
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::InvalidMap { reason } => write!(f, "invalid node map: {reason}"),
            EmbedError::InvalidPath { guest_edge } => {
                write!(f, "invalid routing path for guest edge {guest_edge}")
            }
            EmbedError::Unsupported { reason } => write!(f, "unsupported construction: {reason}"),
            EmbedError::Core(e) => write!(f, "network error: {e}"),
            EmbedError::Graph(e) => write!(f, "graph error: {e}"),
            EmbedError::SearchInconclusive => write!(f, "search budget exhausted"),
        }
    }
}

impl Error for EmbedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmbedError::Core(e) => Some(e),
            EmbedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EmbedError {
    fn from(e: CoreError) -> Self {
        EmbedError::Core(e)
    }
}

impl From<GraphError> for EmbedError {
    fn from(e: GraphError) -> Self {
        EmbedError::Graph(e)
    }
}
